//! A telemetry pipeline on the parallel executor.
//!
//! Sixteen sensors publish readings every tick; most readings repeat the
//! previous value (quantized sensors are noisy but slow), so their stores
//! are silent. Two aggregation tthreads — a per-zone maximum and a global
//! histogram — run on worker threads as soon as a reading really changes,
//! overlapping the main loop's I/O work.
//!
//! Run with: `cargo run --example sensor_pipeline`

use dtt::core::{Config, JoinOutcome, Runtime};
use dtt::obs::ObsReport;

const SENSORS: usize = 16;
const ZONES: usize = 4;
const TICKS: usize = 200;

/// Untracked pipeline outputs.
#[derive(Default)]
struct Dashboards {
    zone_max: [i64; ZONES],
    histogram: [u32; 8],
}

fn main() -> Result<(), dtt::core::Error> {
    let cfg = Config::default()
        .with_workers(2)
        .with_queue_capacity(8)
        .with_observability(true);
    let mut rt = Runtime::new(cfg, Dashboards::default());
    let readings = rt.alloc_array::<i64>(SENSORS)?;

    // One tthread per zone: maximum over that zone's sensors.
    let per_zone = SENSORS / ZONES;
    let mut zone_tts = Vec::new();
    for z in 0..ZONES {
        let tt = rt.register(&format!("zone_max_{z}"), move |ctx| {
            let mut max = i64::MIN;
            for i in z * per_zone..(z + 1) * per_zone {
                max = max.max(ctx.read(readings, i));
            }
            ctx.user_mut().zone_max[z] = max;
        });
        rt.watch(tt, readings.range_of(z * per_zone, (z + 1) * per_zone))?;
        zone_tts.push(tt);
    }

    // A global histogram tthread watching everything.
    let histo = rt.register("histogram", move |ctx| {
        let mut bins = [0u32; 8];
        for i in 0..SENSORS {
            let v = ctx.read(readings, i).clamp(0, 79) as usize;
            bins[v / 10] += 1;
        }
        ctx.user_mut().histogram = bins;
    });
    rt.watch(histo, readings.range())?;

    // Simulated sensor feed: a deterministic pseudo-random walk that mostly
    // produces repeated (quantized) values.
    let mut state = 0x5eed_5eed_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut current = [40i64; SENSORS];
    let mut outcomes = [0usize; 3]; // skipped, overlapped, other

    for _tick in 0..TICKS {
        rt.with(|ctx| {
            for (s, cur) in current.iter_mut().enumerate() {
                // 80% of reads re-publish the same quantized value.
                if rnd() % 10 < 2 {
                    *cur = (*cur + (rnd() % 21) as i64 - 10).clamp(0, 79);
                }
                ctx.write(readings, s, *cur);
            }
        });

        // Pretend to do main-thread work (formatting, I/O) that the
        // aggregation overlaps with.
        std::hint::black_box((0..500).sum::<u64>());

        for &tt in &zone_tts {
            match rt.join(tt)? {
                JoinOutcome::Skipped => outcomes[0] += 1,
                JoinOutcome::Overlapped => outcomes[1] += 1,
                _ => outcomes[2] += 1,
            }
        }
        rt.join(histo)?;
    }

    println!("after {TICKS} ticks:");
    rt.with(|ctx| {
        let d = ctx.user();
        println!("  zone maxima: {:?}", d.zone_max);
        println!("  histogram:   {:?}", d.histogram);
    });
    println!(
        "  zone joins:  {} skipped, {} overlapped, {} other",
        outcomes[0], outcomes[1], outcomes[2]
    );
    let report = ObsReport::from_recording(&rt.obs_drain());
    println!("\n{}", report.summary_line());

    assert!(outcomes[0] > 0, "quantized sensors must produce skips");
    Ok(())
}
