//! Quickstart: the data-triggered-threads programming model in 60 lines.
//!
//! Run with: `cargo run --example quickstart`

use dtt::core::{Config, JoinOutcome, Runtime};

fn main() -> Result<(), dtt::core::Error> {
    // User state: the published aggregate the tthread maintains.
    let mut rt = Runtime::new(Config::default(), 0i64);

    // 1. Trigger data lives in tracked memory.
    let prices = rt.alloc_array::<i64>(8)?;

    // 2. A tthread: recompute the portfolio total whenever a price changes.
    let total = rt.register("portfolio_total", move |ctx| {
        let sum: i64 = (0..prices.len()).map(|i| ctx.read(prices, i)).sum();
        *ctx.user_mut() = sum;
    });

    // 3. Watch the price array.
    rt.watch(total, prices.range())?;

    // 4. Mutate tracked data; join at every consumption point.
    rt.with(|ctx| {
        for i in 0..8 {
            ctx.write(prices, i, 100 + i as i64);
        }
    });
    assert_eq!(rt.join(total)?, JoinOutcome::RanInline);
    println!("total after initial prices: {}", rt.with(|ctx| *ctx.user()));

    // A market tick that changes nothing: every store is silent, the
    // recomputation is skipped entirely.
    rt.with(|ctx| {
        for i in 0..8 {
            ctx.write(prices, i, 100 + i as i64);
        }
    });
    let outcome = rt.join(total)?;
    assert_eq!(outcome, JoinOutcome::Skipped);
    println!("unchanged tick -> join outcome: {outcome:?} (no recomputation)");

    // One real change: exactly one recomputation.
    rt.write(prices.at(3), 250);
    assert_eq!(rt.join(total)?, JoinOutcome::RanInline);
    println!("total after one change:     {}", rt.with(|ctx| *ctx.user()));

    let stats = rt.stats();
    println!("\nruntime statistics:\n{stats}");
    Ok(())
}
