//! End-to-end tour of the reproduction toolchain on the flagship workload.
//!
//! Takes the `mcf` kernel (the paper's 5.9× case) through all four tools:
//!
//! 1. run the baseline and the DTT version, checking they agree;
//! 2. profile the annotated trace for redundant loads;
//! 3. measure the redundant computation the regions expose;
//! 4. replay the trace on the simulated baseline and DTT machines.
//!
//! Run with: `cargo run --release --example mcf_pipeline`

use dtt::core::Config;
use dtt::profile::{LoadProfiler, RedundancyProfiler};
use dtt::sim::{simulate, MachineConfig, SimMode};
use dtt::workloads::{Mcf, Scale, Workload};

fn main() {
    let mcf = Mcf::new(Scale::Train);
    println!(
        "mcf instance: {} nodes, {} arcs, {} pivot attempts\n",
        mcf.nodes(),
        mcf.arcs(),
        mcf.iterations()
    );

    // 1. Semantics: the DTT refactoring changes nothing observable.
    let base_digest = mcf.run_baseline();
    let run = mcf.run_dtt(Config::default());
    assert_eq!(base_digest, run.digest, "DTT must preserve results");
    let tt = &run.tthreads[0];
    println!(
        "software runtime: {} executed {} times, skipped {} times ({} triggers)",
        tt.name, tt.executions, tt.skips, tt.triggers
    );
    println!(
        "silent stores: {:.1}% of tracked stores\n",
        100.0 * run.stats.silent_store_fraction()
    );

    // 2. Redundant loads (the paper's 78% characterization).
    let trace = mcf.trace();
    let loads = LoadProfiler::profile(&trace);
    println!("redundant loads: {loads}");

    // 3. Redundant computation.
    let redundancy = RedundancyProfiler::profile(&trace);
    println!("redundant computation: {redundancy}\n");

    // 4. Timing simulation: baseline vs DTT machine.
    let cfg = MachineConfig::default();
    let base = simulate(&cfg, &trace, SimMode::Baseline);
    let dtt = simulate(&cfg, &trace, SimMode::Dtt);
    println!("simulated baseline machine:\n{base}\n");
    println!("simulated DTT machine:\n{dtt}\n");
    println!(
        "speedup: {:.2}x (paper reports 5.9x for mcf)",
        base.speedup_over(&dtt)
    );
}
