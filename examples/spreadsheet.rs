//! An incremental spreadsheet built on data-triggered threads.
//!
//! Formula cells are tthreads watching their input cells; editing a cell
//! triggers exactly the dependent formulas, and formulas writing their
//! results trigger formulas that depend on *them* (a cascade). Re-entering
//! the same value in a cell is a silent store: nothing recomputes.
//!
//! Layout:
//! ```text
//!   A1..A4  (inputs)        B1 = sum(A1..A4)
//!   C1..C4  (inputs)        B2 = sum(C1..C4)
//!                           D1 = B1 * B2      (depends on formula outputs)
//! ```
//!
//! Run with: `cargo run --example spreadsheet`

use dtt::core::{Config, JoinOutcome, Runtime};
use dtt::obs::ObsReport;

fn main() -> Result<(), dtt::core::Error> {
    let mut rt = Runtime::new(Config::default().with_observability(true), ());

    let col_a = rt.alloc_array::<i64>(4)?;
    let col_c = rt.alloc_array::<i64>(4)?;
    let b1 = rt.alloc(0i64)?;
    let b2 = rt.alloc(0i64)?;
    let d1 = rt.alloc(0i64)?;

    // B1 = sum(A); writes its result into tracked memory, so D1 can watch it.
    let f_b1 = rt.register("B1=sum(A)", move |ctx| {
        let s: i64 = (0..4).map(|i| ctx.read(col_a, i)).sum();
        ctx.set(b1, s);
    });
    rt.watch(f_b1, col_a.range())?;

    let f_b2 = rt.register("B2=sum(C)", move |ctx| {
        let s: i64 = (0..4).map(|i| ctx.read(col_c, i)).sum();
        ctx.set(b2, s);
    });
    rt.watch(f_b2, col_c.range())?;

    let f_d1 = rt.register("D1=B1*B2", move |ctx| {
        let v = ctx.get(b1) * ctx.get(b2);
        ctx.set(d1, v);
    });
    rt.watch(f_d1, b1.range())?;
    rt.watch(f_d1, b2.range())?;

    let recalc = |rt: &mut Runtime<()>, label: &str| {
        // Joining in dependency order settles the cascade.
        let o1 = rt.join(f_b1).unwrap();
        let o2 = rt.join(f_b2).unwrap();
        let o3 = rt.join(f_d1).unwrap();
        println!(
            "{label:28} B1={:<6} B2={:<6} D1={:<8} (B1 {:?}, B2 {:?}, D1 {:?})",
            rt.read(b1),
            rt.read(b2),
            rt.read(d1),
            o1,
            o2,
            o3
        );
        (o1, o2, o3)
    };

    rt.with(|ctx| {
        for i in 0..4 {
            ctx.write(col_a, i, (i as i64 + 1) * 10); // 10 20 30 40
            ctx.write(col_c, i, i as i64 + 1); // 1 2 3 4
        }
    });
    recalc(&mut rt, "initial fill");

    // Edit one cell in column A: B1 and (via B1's write) D1 recompute; B2
    // is untouched and skips.
    rt.write(col_a.at(0), 15);
    let (o1, o2, _) = recalc(&mut rt, "edit A1 = 15");
    assert_eq!(o1, JoinOutcome::RanInline);
    assert_eq!(o2, JoinOutcome::Skipped);

    // Re-enter the same value: silent store, the whole sheet skips.
    rt.write(col_a.at(0), 15);
    let (o1, o2, o3) = recalc(&mut rt, "re-enter A1 = 15");
    assert_eq!(
        (o1, o2, o3),
        (
            JoinOutcome::Skipped,
            JoinOutcome::Skipped,
            JoinOutcome::Skipped
        )
    );

    // A formula whose new result equals the old one also stops the cascade:
    // swap two values in C, the sum is unchanged, so B2 recomputes but its
    // silent write leaves D1 clean.
    rt.with(|ctx| {
        ctx.write(col_c, 0, 2);
        ctx.write(col_c, 1, 1);
    });
    let (o1, o2, o3) = recalc(&mut rt, "swap C1 and C2");
    assert_eq!(o1, JoinOutcome::Skipped);
    assert_eq!(o2, JoinOutcome::RanInline);
    assert_eq!(
        o3,
        JoinOutcome::Skipped,
        "B2's result was unchanged: no cascade"
    );

    let report = ObsReport::from_recording(&rt.obs_drain());
    println!("\n{}", report.summary_line());
    Ok(())
}
