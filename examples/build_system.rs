//! An incremental build system on data-triggered threads.
//!
//! Source-file fingerprints live in tracked memory; each build target is a
//! tthread watching the fingerprints of its inputs. "Saving" a file with
//! unchanged contents is a silent store — nothing rebuilds (the classic
//! `touch` vs real edit distinction, for free). Editing one source
//! rebuilds exactly the affected targets, and a target whose output
//! fingerprint comes out unchanged stops the cascade.
//!
//! Dependency graph:
//! ```text
//!   parser.c  ─┐
//!   lexer.c   ─┼→ libfrontend ─┐
//!   ast.c     ─┘               ├→ compiler ─→ testsuite
//!   codegen.c ──→ libbackend  ─┘
//! ```
//!
//! Run with: `cargo run -p dtt --example build_system`

use dtt::core::{Config, JoinOutcome, Runtime};
use dtt::obs::ObsReport;

/// Build log collected by the target tthreads.
#[derive(Default)]
struct BuildLog {
    lines: Vec<String>,
}

fn fingerprint(inputs: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in inputs {
        h ^= v;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

fn main() -> Result<(), dtt::core::Error> {
    let mut rt = Runtime::new(
        Config::default().with_observability(true),
        BuildLog::default(),
    );

    // Source fingerprints (tracked): parser.c lexer.c ast.c codegen.c
    let sources = rt.alloc_array::<u64>(4)?;
    // Artifact fingerprints (tracked, written by targets).
    let libfrontend = rt.alloc(0u64)?;
    let libbackend = rt.alloc(0u64)?;
    let compiler = rt.alloc(0u64)?;
    let testsuite = rt.alloc(0u64)?;

    // Each target reads its inputs, "builds", and publishes its output
    // fingerprint (a silent publish stops the downstream cascade).
    let t_frontend = rt.register("libfrontend", move |ctx| {
        let inputs = [
            ctx.read(sources, 0),
            ctx.read(sources, 1),
            ctx.read(sources, 2),
        ];
        let out = fingerprint(&inputs);
        ctx.user_mut()
            .lines
            .push(format!("  CC libfrontend <- {inputs:x?}"));
        ctx.set(libfrontend, out);
    });
    rt.watch(t_frontend, sources.range_of(0, 3))?;

    let t_backend = rt.register("libbackend", move |ctx| {
        let input = ctx.read(sources, 3);
        let out = fingerprint(&[input]);
        ctx.user_mut()
            .lines
            .push(format!("  CC libbackend  <- [{input:x}]"));
        ctx.set(libbackend, out);
    });
    rt.watch(t_backend, sources.range_of(3, 4))?;

    let t_compiler = rt.register("compiler", move |ctx| {
        let inputs = [ctx.get(libfrontend), ctx.get(libbackend)];
        let out = fingerprint(&inputs);
        ctx.user_mut()
            .lines
            .push("  LD compiler    <- libfrontend libbackend".into());
        ctx.set(compiler, out);
    });
    rt.watch(t_compiler, libfrontend.range())?;
    rt.watch(t_compiler, libbackend.range())?;

    let t_tests = rt.register("testsuite", move |ctx| {
        let input = ctx.get(compiler);
        ctx.user_mut()
            .lines
            .push("  TEST testsuite <- compiler".into());
        ctx.set(testsuite, fingerprint(&[input]));
    });
    rt.watch(t_tests, compiler.range())?;

    let targets = [t_frontend, t_backend, t_compiler, t_tests];
    let build = |rt: &mut Runtime<BuildLog>, label: &str| -> Vec<JoinOutcome> {
        let outcomes: Vec<JoinOutcome> = targets
            .iter()
            .map(|&t| rt.join(t).expect("registered target"))
            .collect();
        let lines = rt.with(|ctx| std::mem::take(&mut ctx.user_mut().lines));
        let rebuilt = lines.len();
        println!("$ make   # {label}");
        for line in lines {
            println!("{line}");
        }
        if rebuilt == 0 {
            println!("  nothing to do");
        }
        println!();
        outcomes
    };

    // Initial checkout: everything builds.
    rt.with(|ctx| {
        for (i, fp) in [0xaaaa_u64, 0xbbbb, 0xcccc, 0xdddd].iter().enumerate() {
            ctx.write(sources, i, *fp);
        }
    });
    let outcomes = build(&mut rt, "fresh checkout");
    assert!(outcomes.iter().all(|o| *o == JoinOutcome::RanInline));

    // Rebuild without edits: everything skips.
    let outcomes = build(&mut rt, "no changes");
    assert!(outcomes.iter().all(|o| *o == JoinOutcome::Skipped));

    // `touch parser.c` (same fingerprint): still nothing to do.
    rt.with(|ctx| ctx.write(sources, 0, 0xaaaa));
    let outcomes = build(&mut rt, "touch parser.c");
    assert!(outcomes.iter().all(|o| *o == JoinOutcome::Skipped));

    // Edit codegen.c: libbackend, compiler, testsuite rebuild; libfrontend
    // skips.
    rt.with(|ctx| ctx.write(sources, 3, 0xeeee));
    let outcomes = build(&mut rt, "edit codegen.c");
    assert_eq!(outcomes[0], JoinOutcome::Skipped);
    assert_eq!(outcomes[1], JoinOutcome::RanInline);
    assert_eq!(outcomes[2], JoinOutcome::RanInline);
    assert_eq!(outcomes[3], JoinOutcome::RanInline);

    let report = ObsReport::from_recording(&rt.obs_drain());
    println!("{}", report.summary_line());
    Ok(())
}
