//! Trace serialization round-trip over real workload traces: a trace
//! written to bytes and read back must profile and simulate identically.

use dtt::profile::{LoadProfiler, RedundancyProfiler, StoreProfiler};
use dtt::sim::{simulate, MachineConfig, SimMode};
use dtt::trace::{read_trace, write_trace};
use dtt::workloads::{suite, Scale};

#[test]
fn round_trip_preserves_profiles_and_timing() {
    for w in suite(Scale::Test) {
        let original = w.trace();
        let mut bytes = Vec::new();
        write_trace(&original, &mut bytes).expect("in-memory write cannot fail");
        let decoded = read_trace(bytes.as_slice()).expect("round trip decodes");

        assert_eq!(original.events(), decoded.events(), "{}", w.name());
        assert_eq!(original.watches(), decoded.watches(), "{}", w.name());
        assert_eq!(
            LoadProfiler::profile(&original),
            LoadProfiler::profile(&decoded),
            "{}",
            w.name()
        );
        assert_eq!(
            RedundancyProfiler::profile(&original),
            RedundancyProfiler::profile(&decoded),
            "{}",
            w.name()
        );
        assert_eq!(
            StoreProfiler::profile(&original),
            StoreProfiler::profile(&decoded),
            "{}",
            w.name()
        );

        let cfg = MachineConfig::default();
        for mode in [SimMode::Baseline, SimMode::Dtt] {
            assert_eq!(
                simulate(&cfg, &original, mode),
                simulate(&cfg, &decoded, mode),
                "{} ({mode})",
                w.name()
            );
        }
    }
}

#[test]
fn serialized_traces_are_compact() {
    // Sanity: the binary encoding should be well under 40 bytes/event
    // (events are at most 1 + 24 bytes plus the small header).
    let w = &suite(Scale::Test)[0];
    let trace = w.trace();
    let mut bytes = Vec::new();
    write_trace(&trace, &mut bytes).unwrap();
    let per_event = bytes.len() as f64 / trace.events().len() as f64;
    assert!(
        per_event < 40.0,
        "encoding too fat: {per_event:.1} bytes/event over {} events",
        trace.events().len()
    );
}
