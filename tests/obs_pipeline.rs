//! End-to-end observability pipeline: run a real workload with the
//! recorder on, then drive the drained events through every consumer —
//! collector, Prometheus exposition, Chrome trace export + validation —
//! and check the pieces agree with each other and with the runtime's own
//! counters.

use dtt::core::Config;
use dtt::obs::chrome;
use dtt::obs::{validate_chrome_trace, Json, ObsReport};
use dtt::workloads::{suite, Scale};

fn parser_run() -> (dtt::core::ObsRecording, dtt::workloads::DttRun) {
    let w = suite(Scale::Test)
        .into_iter()
        .find(|w| w.name() == "parser")
        .expect("parser is in the suite");
    let run = w.run_dtt(Config::default().with_observability(true));
    assert_eq!(run.digest, w.run_baseline(), "obs must not change results");
    let rec = run.obs.clone().expect("observability was enabled");
    (rec, run)
}

#[test]
fn recording_is_present_and_balanced() {
    let (rec, run) = parser_run();
    assert!(!rec.events.is_empty(), "an instrumented run records events");
    assert!(rec.accounting_balances(), "issued != delivered + dropped");
    // Sequence numbers are unique and ascending in the merged stream.
    assert!(rec.events.windows(2).all(|w| w[0].seq < w[1].seq));
    // A run without observability records nothing and reports None.
    let w = suite(Scale::Test)
        .into_iter()
        .find(|w| w.name() == "parser")
        .unwrap();
    let off = w.run_dtt(Config::default());
    assert!(off.obs.is_none());
    assert_eq!(off.digest, run.digest);
}

#[test]
fn collector_agrees_with_runtime_counters() {
    let (rec, run) = parser_run();
    let report = ObsReport::from_recording(&rec);
    assert_eq!(report.events, rec.events.len() as u64);
    let counters = run.stats.counters();
    // With no drops, every lifecycle event of these kinds matches the
    // runtime's own counters exactly; with drops the events are a subset.
    let fired = report.count(dtt::core::EventKind::TriggerFired);
    if rec.dropped == 0 {
        assert_eq!(fired, counters.triggers_fired);
        assert_eq!(
            report.count(dtt::core::EventKind::BodyEnd),
            counters.executions
        );
    } else {
        assert!(fired <= counters.triggers_fired);
    }
    assert!(!report.regions.is_empty(), "parser touches tracked memory");
    assert!(report.span_ns > 0);
    assert!(report.summary_line().starts_with("obs:"));
}

#[test]
fn prometheus_exposition_matches_the_snapshot() {
    let (rec, run) = parser_run();
    let report = ObsReport::from_recording(&rec);
    let text = dtt::obs::prometheus::render(&run.stats, Some(&report));
    // Spot-check a counter value against the snapshot it was rendered from.
    let expected = format!(
        "dtt_triggers_fired_total {}",
        run.stats.counters().triggers_fired
    );
    assert!(text.contains(&expected), "missing `{expected}`");
    assert!(text.contains("# TYPE dtt_obs_body_seconds histogram"));
    let events_line = format!("dtt_obs_events {}", report.events);
    assert!(text.contains(&events_line));
}

#[test]
fn chrome_trace_validates_and_shows_tthread_tracks() {
    let (rec, run) = parser_run();
    let names: Vec<String> = run.tthreads.iter().map(|t| t.name.clone()).collect();
    let text = chrome::render(&rec, &names);
    let n = validate_chrome_trace(&text).expect("trace must validate");
    assert!(n > 10, "only {n} trace events");
    // The trace names the tthread tracks after the registered tthreads.
    let doc = chrome::parse_json(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(track_names.contains(&"main (stores)"));
    assert!(
        names
            .iter()
            .all(|n| track_names.iter().any(|t| t.contains(n.as_str()))),
        "every registered tthread gets a named track: {track_names:?}"
    );
    // Instant store events live on the main track (tid 0).
    assert!(events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("store.changed")
            && e.get("tid").and_then(Json::as_num) == Some(0.0)
    }));
}

#[test]
fn parallel_timeline_shows_bodies_inside_the_store_stream() {
    let w = suite(Scale::Test)
        .into_iter()
        .find(|w| w.name() == "parser")
        .unwrap();
    let run = w.run_dtt(Config::default().with_observability(true).with_workers(2));
    assert_eq!(run.digest, w.run_baseline());
    let rec = run.obs.expect("observability was enabled");
    let text = chrome::render(&rec, &[]);
    validate_chrome_trace(&text).expect("parallel trace validates");
    let doc = chrome::parse_json(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    // Body slices land on tthread tracks (tid > 0) whether the body ran
    // detached on a worker or was stolen by the joiner.
    let bodies: Vec<(f64, f64)> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("body"))
        .map(|e| {
            let ts = e.get("ts").unwrap().as_num().unwrap();
            let dur = e.get("dur").unwrap().as_num().unwrap();
            assert!(e.get("tid").unwrap().as_num().unwrap() > 0.0);
            (ts, ts + dur)
        })
        .collect();
    assert!(!bodies.is_empty());
    // The maintenance stream keeps storing after bodies start executing:
    // some body must begin before the main thread's last store. (Literal
    // store-instant-inside-body-span overlap additionally needs a
    // multi-core host; body begin-before-last-store holds regardless.)
    let last_store = events
        .iter()
        .filter(|e| {
            e.get("tid").and_then(Json::as_num) == Some(0.0)
                && e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("store."))
        })
        .filter_map(|e| e.get("ts").and_then(Json::as_num))
        .fold(0.0f64, f64::max);
    assert!(
        bodies.iter().any(|&(start, _)| start < last_store),
        "no tthread body started inside the main thread's store stream"
    );
}
