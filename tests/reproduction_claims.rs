//! Shape guards for the paper's headline claims, at test scale: if a
//! refactoring breaks the reproduction (mcf no longer wins, suppression no
//! longer load-bearing, granularity no longer costs twolf), these fail.

/// Tiny local harness so this test does not depend on dtt-bench.
mod bench_support {
    use dtt::sim::{simulate, MachineConfig, SimMode};
    use dtt::workloads::{suite, Scale};

    pub fn speedups(cfg: &MachineConfig) -> Vec<(String, f64)> {
        suite(Scale::Test)
            .into_iter()
            .map(|w| {
                let trace = w.trace();
                let base = simulate(cfg, &trace, SimMode::Baseline);
                let dtt = simulate(cfg, &trace, SimMode::Dtt);
                (w.name().to_string(), base.speedup_over(&dtt))
            })
            .collect()
    }

    pub fn speedup_of(cfg: &MachineConfig, name: &str) -> f64 {
        let w = suite(Scale::Test)
            .into_iter()
            .find(|w| w.name() == name)
            .expect("workload exists");
        let trace = w.trace();
        let base = simulate(cfg, &trace, SimMode::Baseline);
        let dtt = simulate(cfg, &trace, SimMode::Dtt);
        base.speedup_over(&dtt)
    }
}
use dtt::sim::MachineConfig;

#[test]
fn every_benchmark_speeds_up_on_the_default_machine() {
    for (name, s) in bench_support::speedups(&MachineConfig::default()) {
        assert!(s >= 1.0, "{name} regressed below baseline: {s:.2}x");
    }
}

/// The flagship claim, at the scale the experiments run at: mcf's
/// potential refresh is overwhelmingly redundant and the simulated
/// speedup is a multiple, not a percentage. (Train scale: this is the
/// slowest test in the suite, a few seconds in debug builds.)
#[test]
fn mcf_flagship_speedup_holds_at_train_scale() {
    use dtt::sim::{simulate, SimMode};
    use dtt::workloads::{Mcf, Scale, Workload};
    let mcf = Mcf::new(Scale::Train);
    let trace = mcf.trace();
    let cfg = MachineConfig::default();
    let base = simulate(&cfg, &trace, SimMode::Baseline);
    let dtt = simulate(&cfg, &trace, SimMode::Dtt);
    let speedup = base.speedup_over(&dtt);
    assert!(
        speedup > 4.0,
        "mcf must stay a multiple-x speedup (paper: 5.9x), got {speedup:.2}x"
    );
    assert!(
        dtt.skip_rate() > 0.9,
        "mcf's refresh must be >90% skippable, got {:.1}%",
        100.0 * dtt.skip_rate()
    );
}

#[test]
fn silent_store_suppression_is_load_bearing() {
    let on = bench_support::speedup_of(&MachineConfig::default(), "mcf");
    let off = bench_support::speedup_of(
        &MachineConfig::default().with_silent_store_suppression(false),
        "mcf",
    );
    // Without suppression the benefit over baseline must largely vanish
    // (it can even go negative: triggers fire on every watched store).
    assert!(
        off - 1.0 < 0.5 * (on - 1.0),
        "mcf without suppression should lose most of its benefit: on={on:.2} off={off:.2}"
    );
}

#[test]
fn huge_spawn_overhead_erases_gains_somewhere() {
    let cheap = bench_support::speedups(&MachineConfig::default().with_spawn_overhead(0));
    let dear = bench_support::speedups(&MachineConfig::default().with_spawn_overhead(100_000));
    let hurt = cheap
        .iter()
        .zip(&dear)
        .filter(|((_, c), (_, d))| d < c)
        .count();
    assert!(
        hurt >= cheap.len() / 2,
        "100k-cycle spawns should hurt most benchmarks: {hurt}/{}",
        cheap.len()
    );
    assert!(
        dear.iter().any(|(_, d)| *d < 1.0),
        "some benchmark should drop below baseline under extreme spawn cost"
    );
}

#[test]
fn line_granularity_never_helps() {
    let precise = bench_support::speedups(&MachineConfig::default().with_granularity_bytes(1));
    let coarse = bench_support::speedups(&MachineConfig::default().with_granularity_bytes(64));
    for ((name, p), (_, c)) in precise.iter().zip(&coarse) {
        assert!(
            *c <= *p * 1.01 + 1e-9,
            "{name}: coarse granularity should never beat precise (p={p:.3}, c={c:.3})"
        );
    }
}

#[test]
fn tiny_tst_degrades_multi_tthread_benchmarks() {
    let full = bench_support::speedup_of(&MachineConfig::default(), "bzip2");
    let tiny = bench_support::speedup_of(&MachineConfig::default().with_tst_capacity(1), "bzip2");
    assert!(
        tiny < full,
        "bzip2 (8 tthreads at test scale) must lose benefit with a 1-entry TST: {tiny:.2} !< {full:.2}"
    );
}
