//! Cross-crate integration: every workload's DTT implementation must be
//! semantics-preserving under every runtime configuration, and the traced
//! kernel must agree with the baseline.

use dtt::core::{Config, Granularity, OverflowPolicy};
use dtt::workloads::{suite, Scale};

#[test]
fn dtt_preserves_results_deferred() {
    for w in suite(Scale::Test) {
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default()).digest,
            "{} diverged on the deferred executor",
            w.name()
        );
    }
}

#[test]
fn dtt_preserves_results_parallel() {
    for workers in [1, 2, 4] {
        for w in suite(Scale::Test) {
            assert_eq!(
                w.run_baseline(),
                w.run_dtt(Config::default().with_workers(workers)).digest,
                "{} diverged with {workers} workers",
                w.name()
            );
        }
    }
}

#[test]
fn dtt_preserves_results_under_coarse_granularity() {
    // Coarser triggering over-approximates: more recomputation, same
    // results.
    for g in [Granularity::Word, Granularity::Line] {
        for w in suite(Scale::Test) {
            assert_eq!(
                w.run_baseline(),
                w.run_dtt(Config::default().with_granularity(g)).digest,
                "{} diverged at {g} granularity",
                w.name()
            );
        }
    }
}

#[test]
fn dtt_preserves_results_without_silent_store_suppression() {
    // Without suppression every watched store triggers: maximum
    // recomputation, still the same results.
    for w in suite(Scale::Test) {
        let cfg = Config::default().with_silent_store_suppression(false);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(cfg).digest,
            "{} diverged without suppression",
            w.name()
        );
    }
}

#[test]
fn dtt_preserves_results_under_queue_pressure() {
    for policy in [OverflowPolicy::ExecuteInline, OverflowPolicy::DeferToJoin] {
        for w in suite(Scale::Test) {
            let cfg = Config::default()
                .with_workers(2)
                .with_queue_capacity(1)
                .with_coalescing(false)
                .with_overflow(policy);
            assert_eq!(
                w.run_baseline(),
                w.run_dtt(cfg).digest,
                "{} diverged under queue pressure ({policy:?})",
                w.name()
            );
        }
    }
}

#[test]
fn suppression_off_never_skips_watched_recomputation() {
    for w in suite(Scale::Test) {
        let on = w.run_dtt(Config::default());
        let off = w.run_dtt(Config::default().with_silent_store_suppression(false));
        let execs_on: u64 = on.tthreads.iter().map(|t| t.executions).sum();
        let execs_off: u64 = off.tthreads.iter().map(|t| t.executions).sum();
        assert!(
            execs_off >= execs_on,
            "{}: suppression off should never execute less ({execs_off} < {execs_on})",
            w.name()
        );
    }
}

#[test]
fn coarse_granularity_never_executes_less() {
    for w in suite(Scale::Test) {
        let exact = w.run_dtt(Config::default());
        let line = w.run_dtt(Config::default().with_granularity(Granularity::Line));
        let execs_exact: u64 = exact.tthreads.iter().map(|t| t.executions).sum();
        let execs_line: u64 = line.tthreads.iter().map(|t| t.executions).sum();
        assert!(
            execs_line >= execs_exact,
            "{}: line granularity executed less ({execs_line} < {execs_exact})",
            w.name()
        );
    }
}

#[test]
fn every_workload_skips_something_at_test_scale() {
    for w in suite(Scale::Test) {
        let run = w.run_dtt(Config::default());
        let skips: u64 = run.tthreads.iter().map(|t| t.skips).sum();
        assert!(
            skips > 0,
            "{} never skipped — no redundancy exposed",
            w.name()
        );
    }
}
