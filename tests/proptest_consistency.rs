//! Property test: for arbitrary store/checkpoint schedules, the software
//! runtime (`dtt-core`) and the timing simulator (`dtt-sim`) make identical
//! skip decisions — they are two implementations of the same trigger
//! semantics.

use dtt::core::stats::Counters;
use dtt::core::{Config, JoinOutcome, Runtime, TthreadStatus};
use dtt::sim::{simulate, MachineConfig, SimMode};
use dtt::trace::TraceBuilder;
use proptest::prelude::*;

const CELLS: usize = 16;
const TTHREADS: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    /// Store `value` into cell `index`.
    Store { index: usize, value: u64 },
    /// A checkpoint: every tthread's output is consumed (joined).
    Checkpoint,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0usize..CELLS, 0u64..4).prop_map(|(index, value)| Op::Store { index, value }),
            1 => Just(Op::Checkpoint),
        ],
        1..120,
    )
}

/// Each tthread `t` watches cells `[4t, 4t+4)`.
fn watch_range(t: usize) -> (usize, usize) {
    (4 * t, 4 * (t + 1))
}

/// Drives the real runtime; returns per-tthread execution counts.
fn run_runtime(schedule: &[Op]) -> Vec<u64> {
    let mut rt = Runtime::new(Config::default(), ());
    let cells = rt.alloc_array::<u64>(CELLS).unwrap();
    let tts: Vec<_> = (0..TTHREADS)
        .map(|t| {
            let tt = rt.register(&format!("t{t}"), |_| {});
            let (a, b) = watch_range(t);
            rt.watch(tt, cells.range_of(a, b)).unwrap();
            rt.mark_dirty(tt).unwrap();
            tt
        })
        .collect();
    for op in schedule {
        match *op {
            Op::Store { index, value } => rt.with(|ctx| ctx.write(cells, index, value)),
            Op::Checkpoint => {
                for &tt in &tts {
                    rt.join(tt).unwrap();
                }
            }
        }
    }
    // Final checkpoint so trailing triggers are consumed in both worlds.
    for &tt in &tts {
        rt.join(tt).unwrap();
    }
    rt.tthread_counters()
        .into_iter()
        .map(|(_, e, _, _)| e)
        .collect()
}

/// Builds the equivalent annotated trace and simulates it; returns
/// per-tthread executed (non-skipped) instance counts.
fn run_simulator(schedule: &[Op]) -> Vec<u64> {
    let mut b = TraceBuilder::new();
    let tts: Vec<u32> = (0..TTHREADS)
        .map(|t| {
            let tt = b.declare_tthread(&format!("t{t}"));
            let (a, bb) = watch_range(t);
            b.declare_watch(tt, 8 * a as u64, 8 * (bb - a) as u64);
            tt
        })
        .collect();
    // Initialization: the runtime's alloc_array zeroes tracked memory.
    let mut shadow = [0u64; CELLS];
    for (i, &v) in shadow.iter().enumerate() {
        b.store_event(0, 8 * i as u64, 8, v);
    }
    let emit_checkpoint = |b: &mut TraceBuilder| {
        for &tt in &tts {
            b.region_begin_checked(tt).unwrap();
            b.compute_event(10);
            b.region_end_checked(tt).unwrap();
            b.join_event(tt);
        }
    };
    for op in schedule {
        match *op {
            Op::Store { index, value } => {
                shadow[index] = value;
                b.store_event(1, 8 * index as u64, 8, value);
            }
            Op::Checkpoint => emit_checkpoint(&mut b),
        }
    }
    emit_checkpoint(&mut b);
    let trace = b.finish().unwrap();
    let cfg = MachineConfig::default().with_granularity_bytes(1);
    let result = simulate(&cfg, &trace, SimMode::Dtt);
    result
        .tthreads
        .iter()
        .map(|t| t.instances - t.skips)
        .collect()
}

/// A dispatch schedule for the lockfree-vs-locked equivalence property:
/// stores, targeted joins/forces (the steal paths), and full checkpoints.
#[derive(Debug, Clone)]
enum DispatchOp {
    Store { index: usize, value: u64 },
    Join { t: usize },
    Force { t: usize },
    Checkpoint,
}

fn dispatch_ops() -> impl Strategy<Value = Vec<DispatchOp>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0usize..CELLS, 0u64..4).prop_map(|(index, value)| DispatchOp::Store { index, value }),
            2 => (0usize..TTHREADS).prop_map(|t| DispatchOp::Join { t }),
            1 => (0usize..TTHREADS).prop_map(|t| DispatchOp::Force { t }),
            1 => Just(DispatchOp::Checkpoint),
        ],
        1..100,
    )
}

/// Everything externally observable about one dispatch run: per-tthread
/// execution counts, the join-outcome sequence, the pre-checkpoint status
/// of every tthread, and the counter block.
type DispatchObservation = (Vec<u64>, Vec<JoinOutcome>, Vec<TthreadStatus>, Counters);

/// Drives one runtime through `schedule` and records what a program could
/// see. With `workers = 0` the deferred executor handles every trigger at
/// the join point, so both dispatch modes are fully deterministic and the
/// Clean/Triggered/Running arcs of the status machine are compared.
fn run_deferred_mode(
    schedule: &[DispatchOp],
    lockfree: bool,
    coalesce: bool,
) -> DispatchObservation {
    let cfg = Config::default()
        .with_workers(0)
        .with_lockfree_dispatch(lockfree)
        .with_coalescing(coalesce);
    let mut rt = Runtime::new(cfg, ());
    let cells = rt.alloc_array::<u64>(CELLS).unwrap();
    let tts: Vec<_> = (0..TTHREADS)
        .map(|t| {
            let tt = rt.register(&format!("t{t}"), |_| {});
            let (a, b) = watch_range(t);
            rt.watch(tt, cells.range_of(a, b)).unwrap();
            rt.mark_dirty(tt).unwrap();
            tt
        })
        .collect();
    let mut outcomes = Vec::new();
    for op in schedule {
        match *op {
            DispatchOp::Store { index, value } => rt.with(|ctx| ctx.write(cells, index, value)),
            DispatchOp::Join { t } => outcomes.push(rt.join(tts[t]).unwrap()),
            DispatchOp::Force { t } => rt.force(tts[t]).unwrap(),
            DispatchOp::Checkpoint => {
                for &tt in &tts {
                    outcomes.push(rt.join(tt).unwrap());
                }
            }
        }
    }
    let statuses = tts.iter().map(|&tt| rt.status(tt).unwrap()).collect();
    let execs = rt
        .tthread_counters()
        .into_iter()
        .map(|(_, e, _, _)| e)
        .collect();
    let counters = rt.stats().counters().clone();
    (execs, outcomes, statuses, counters)
}

/// Same idea with a real worker — but the worker spends the whole schedule
/// pinned inside a barrier-parked tthread, so the Queued arcs (enqueue,
/// coalesce/rerun-flag absorb, join steal, stale queue entries) are
/// exercised deterministically from the main thread alone. The queue is
/// big enough that lazy (token-based) vs eager entry removal can't change
/// when it fills. Parks/wakes are timing-dependent and zeroed out before
/// the comparison; everything else must match.
fn run_pinned_worker_mode(
    schedule: &[DispatchOp],
    lockfree: bool,
    coalesce: bool,
) -> DispatchObservation {
    let gate = std::sync::Arc::new(std::sync::Barrier::new(2));
    let cfg = Config::default()
        .with_workers(1)
        .with_queue_capacity(4096)
        .with_lockfree_dispatch(lockfree)
        .with_coalescing(coalesce);
    let mut rt = Runtime::new(cfg, ());
    let g = std::sync::Arc::clone(&gate);
    let blocker = rt.register("blocker", move |_| {
        g.wait();
    });
    let cells = rt.alloc_array::<u64>(CELLS).unwrap();
    let tts: Vec<_> = (0..TTHREADS)
        .map(|t| {
            let tt = rt.register(&format!("t{t}"), |_| {});
            let (a, b) = watch_range(t);
            rt.watch(tt, cells.range_of(a, b)).unwrap();
            tt
        })
        .collect();
    rt.mark_dirty(blocker).unwrap();
    let start = std::time::Instant::now();
    while rt.status(blocker).unwrap() != TthreadStatus::Running {
        assert!(start.elapsed() < std::time::Duration::from_secs(10));
        std::thread::yield_now();
    }

    let mut outcomes = Vec::new();
    for op in schedule {
        match *op {
            DispatchOp::Store { index, value } => rt.with(|ctx| ctx.write(cells, index, value)),
            DispatchOp::Join { t } => outcomes.push(rt.join(tts[t]).unwrap()),
            DispatchOp::Force { t } => rt.force(tts[t]).unwrap(),
            DispatchOp::Checkpoint => {
                for &tt in &tts {
                    outcomes.push(rt.join(tt).unwrap());
                }
            }
        }
    }
    let statuses: Vec<_> = tts.iter().map(|&tt| rt.status(tt).unwrap()).collect();
    // Drain every pending trigger deterministically (steals) while the
    // worker is still pinned, so the execution counts below can't race
    // the worker's own drain after release.
    for &tt in &tts {
        outcomes.push(rt.join(tt).unwrap());
    }
    let execs = rt
        .tthread_counters()
        .into_iter()
        .map(|(_, e, _, _)| e)
        .collect();
    let mut counters = rt.stats().counters().clone();
    counters.worker_wakes = 0;
    counters.worker_parks = 0;
    // Timing-dependent like parks: the worker may time out of a park in
    // the window before it gets pinned. Steals stay *unzeroed* — with a
    // single worker every shard is local, so both modes must report zero.
    counters.park_timeouts = 0;
    gate.wait();
    rt.join_all().unwrap();
    (execs, outcomes, statuses, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runtime_and_simulator_agree_on_executions(schedule in ops()) {
        let rt_execs = run_runtime(&schedule);
        let sim_execs = run_simulator(&schedule);
        prop_assert_eq!(rt_execs, sim_execs);
    }

    /// The baseline simulator executes every instance regardless of the
    /// schedule; the DTT machine never executes more.
    #[test]
    fn dtt_never_executes_more_instances_than_baseline(schedule in ops()) {
        let sim_execs = run_simulator(&schedule);
        let checkpoints = schedule
            .iter()
            .filter(|op| matches!(op, Op::Checkpoint))
            .count() as u64
            + 1;
        for execs in sim_execs {
            prop_assert!(execs <= checkpoints);
            prop_assert!(execs >= 1); // the initial dirty instance always runs
        }
    }

    /// The lock-free status machine is an exact drop-in for the locked
    /// baseline on the deferred (workers = 0) executor: for any
    /// store/join/force/checkpoint schedule the two dispatch modes produce
    /// identical execution counts, join outcomes, statuses, *and counters*.
    #[test]
    fn lockfree_dispatch_matches_locked_deferred_baseline(
        schedule in dispatch_ops(),
        coalesce in prop::bool::ANY,
    ) {
        let lockfree = run_deferred_mode(&schedule, true, coalesce);
        let locked = run_deferred_mode(&schedule, false, coalesce);
        prop_assert_eq!(lockfree, locked);
    }

    /// The Queued arcs (enqueue, absorb, steal, stale entries) with a real
    /// — but pinned — worker. With coalescing on, even the counters must
    /// match exactly; with coalescing off the two modes represent repeat
    /// triggers differently (rerun flag vs duplicate queue entries), so
    /// the enqueue/coalesce counter split legitimately diverges while
    /// everything a program can observe must still match.
    #[test]
    fn lockfree_dispatch_matches_locked_queued_baseline(
        schedule in dispatch_ops(),
        coalesce in prop::bool::ANY,
    ) {
        let (le, lo, ls, lc) = run_pinned_worker_mode(&schedule, true, coalesce);
        let (be, bo, bs, bc) = run_pinned_worker_mode(&schedule, false, coalesce);
        prop_assert_eq!((le, lo, ls), (be, bo, bs));
        if coalesce {
            prop_assert_eq!(lc, bc);
        }
    }
}
