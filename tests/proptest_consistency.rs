//! Property test: for arbitrary store/checkpoint schedules, the software
//! runtime (`dtt-core`) and the timing simulator (`dtt-sim`) make identical
//! skip decisions — they are two implementations of the same trigger
//! semantics.

use dtt::core::{Config, Runtime};
use dtt::sim::{simulate, MachineConfig, SimMode};
use dtt::trace::TraceBuilder;
use proptest::prelude::*;

const CELLS: usize = 16;
const TTHREADS: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    /// Store `value` into cell `index`.
    Store { index: usize, value: u64 },
    /// A checkpoint: every tthread's output is consumed (joined).
    Checkpoint,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0usize..CELLS, 0u64..4).prop_map(|(index, value)| Op::Store { index, value }),
            1 => Just(Op::Checkpoint),
        ],
        1..120,
    )
}

/// Each tthread `t` watches cells `[4t, 4t+4)`.
fn watch_range(t: usize) -> (usize, usize) {
    (4 * t, 4 * (t + 1))
}

/// Drives the real runtime; returns per-tthread execution counts.
fn run_runtime(schedule: &[Op]) -> Vec<u64> {
    let mut rt = Runtime::new(Config::default(), ());
    let cells = rt.alloc_array::<u64>(CELLS).unwrap();
    let tts: Vec<_> = (0..TTHREADS)
        .map(|t| {
            let tt = rt.register(&format!("t{t}"), |_| {});
            let (a, b) = watch_range(t);
            rt.watch(tt, cells.range_of(a, b)).unwrap();
            rt.mark_dirty(tt).unwrap();
            tt
        })
        .collect();
    for op in schedule {
        match *op {
            Op::Store { index, value } => rt.with(|ctx| ctx.write(cells, index, value)),
            Op::Checkpoint => {
                for &tt in &tts {
                    rt.join(tt).unwrap();
                }
            }
        }
    }
    // Final checkpoint so trailing triggers are consumed in both worlds.
    for &tt in &tts {
        rt.join(tt).unwrap();
    }
    rt.tthread_counters()
        .into_iter()
        .map(|(_, e, _, _)| e)
        .collect()
}

/// Builds the equivalent annotated trace and simulates it; returns
/// per-tthread executed (non-skipped) instance counts.
fn run_simulator(schedule: &[Op]) -> Vec<u64> {
    let mut b = TraceBuilder::new();
    let tts: Vec<u32> = (0..TTHREADS)
        .map(|t| {
            let tt = b.declare_tthread(&format!("t{t}"));
            let (a, bb) = watch_range(t);
            b.declare_watch(tt, 8 * a as u64, 8 * (bb - a) as u64);
            tt
        })
        .collect();
    // Initialization: the runtime's alloc_array zeroes tracked memory.
    let mut shadow = [0u64; CELLS];
    for (i, &v) in shadow.iter().enumerate() {
        b.store_event(0, 8 * i as u64, 8, v);
    }
    let emit_checkpoint = |b: &mut TraceBuilder| {
        for &tt in &tts {
            b.region_begin_checked(tt).unwrap();
            b.compute_event(10);
            b.region_end_checked(tt).unwrap();
            b.join_event(tt);
        }
    };
    for op in schedule {
        match *op {
            Op::Store { index, value } => {
                shadow[index] = value;
                b.store_event(1, 8 * index as u64, 8, value);
            }
            Op::Checkpoint => emit_checkpoint(&mut b),
        }
    }
    emit_checkpoint(&mut b);
    let trace = b.finish().unwrap();
    let cfg = MachineConfig::default().with_granularity_bytes(1);
    let result = simulate(&cfg, &trace, SimMode::Dtt);
    result
        .tthreads
        .iter()
        .map(|t| t.instances - t.skips)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runtime_and_simulator_agree_on_executions(schedule in ops()) {
        let rt_execs = run_runtime(&schedule);
        let sim_execs = run_simulator(&schedule);
        prop_assert_eq!(rt_execs, sim_execs);
    }

    /// The baseline simulator executes every instance regardless of the
    /// schedule; the DTT machine never executes more.
    #[test]
    fn dtt_never_executes_more_instances_than_baseline(schedule in ops()) {
        let sim_execs = run_simulator(&schedule);
        let checkpoints = schedule
            .iter()
            .filter(|op| matches!(op, Op::Checkpoint))
            .count() as u64
            + 1;
        for execs in sim_execs {
            prop_assert!(execs <= checkpoints);
            prop_assert!(execs >= 1); // the initial dirty instance always runs
        }
    }
}
