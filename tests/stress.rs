//! Stress tests for the parallel executor: many tthreads, tight queues,
//! sustained trigger pressure, and concurrent completion tracking.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dtt_core::tthread::{TthreadId, TthreadStatus};
use dtt_core::{Config, JoinOutcome, OverflowPolicy, Runtime};

/// Spins until `tthread` is observed `Running` on a worker; panics after a
/// generous timeout so a regression fails rather than hangs.
fn wait_until_running<U: Send + 'static>(rt: &Runtime<U>, tthread: TthreadId) {
    let start = Instant::now();
    while rt.status(tthread).unwrap() != TthreadStatus::Running {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "tthread never started running"
        );
        std::thread::yield_now();
    }
}

/// Regression test for the fake-overlap bug: the worker must release the
/// state lock while a tthread body runs. The body parks on a barrier
/// mid-execution; the main thread then performs tracked stores and joins an
/// unrelated tthread while the body is provably still running. Under the
/// old attached executor (body under the state lock) every one of those
/// main-thread operations would deadlock.
#[test]
fn worker_body_runs_off_the_state_lock() {
    let gate = Arc::new(Barrier::new(2));
    let cfg = Config::default().with_workers(1);
    let mut rt = Runtime::new(cfg, 0u64);
    let x = rt.alloc(0u64).unwrap();
    let y = rt.alloc(0u64).unwrap();

    let g = Arc::clone(&gate);
    let slow = rt.register("slow", move |ctx| {
        let v = ctx.get(x);
        // Park mid-body, before touching user state, so the main thread can
        // observe us Running while it uses the runtime.
        g.wait();
        *ctx.user_mut() += v;
    });
    rt.watch(slow, x.range()).unwrap();
    let other = rt.register("other", |ctx| *ctx.user_mut() += 100);
    rt.watch(other, y.range()).unwrap();

    rt.write(x, 7);
    wait_until_running(&rt, slow);

    // With `slow` still mid-body on the only worker, the main thread can
    // keep making progress: tracked stores, trigger dispatch, and a join
    // that steals the queued tthread and runs it inline.
    rt.with(|ctx| ctx.set(y, 5));
    assert_eq!(rt.join(other).unwrap(), JoinOutcome::Stolen);
    assert_eq!(rt.with(|ctx| *ctx.user()), 100);

    gate.wait();
    let outcome = rt.join(slow).unwrap();
    assert!(
        matches!(outcome, JoinOutcome::Waited | JoinOutcome::Overlapped),
        "unexpected outcome {outcome:?}"
    );
    // `other` committed before `slow` resumed, so `slow` saw its update.
    assert_eq!(rt.with(|ctx| *ctx.user()), 107);
    let c = rt.stats();
    assert_eq!(c.counters().detached_executions, 1);
    assert_eq!(c.counters().inline_executions, 1);
}

/// Regression test for the overflow double-execution bug: with coalescing
/// off, a trigger for an already-Queued tthread that overflows the queue
/// used to run the tthread inline *and* leave the stale queue entry behind
/// for a worker to run again. The inline run must be the only run.
///
/// Pinned to the locked baseline: only the locked queue represents repeat
/// triggers as duplicate entries, so only there can the overflow + stale
/// entry interleaving exist. The lock-free path folds repeats into the
/// rerun flag instead — see `lockfree_rerun_flag_replaces_queue_duplicates`.
#[test]
fn queue_overflow_inline_executes_exactly_once() {
    let gate = Arc::new(Barrier::new(2));
    let cfg = Config::default()
        .with_workers(1)
        .with_queue_capacity(1)
        .with_coalescing(false)
        .with_lockfree_dispatch(false)
        .with_overflow(OverflowPolicy::ExecuteInline);
    let mut rt = Runtime::new(cfg, 0u64);
    let x = rt.alloc(0u64).unwrap();

    let g = Arc::clone(&gate);
    let blocker = rt.register("blocker", move |_| {
        g.wait();
    });
    let victim = rt.register("victim", move |ctx| {
        let v = ctx.get(x);
        *ctx.user_mut() += v;
    });
    rt.watch(victim, x.range()).unwrap();

    // Pin the only worker inside `blocker` so nothing drains the queue.
    rt.mark_dirty(blocker).unwrap();
    wait_until_running(&rt, blocker);

    rt.write(x, 1); // victim enqueued; queue now full
    rt.write(x, 2); // no coalescing: queue overflows -> victim runs inline
    assert_eq!(rt.stats().counters().queue_overflows, 1);
    // The inline run saw the latest value and the stale queue entry is
    // gone, so the worker has nothing left to re-execute.
    assert_eq!(rt.with(|ctx| *ctx.user()), 2);

    gate.wait();
    rt.join_all().unwrap();
    let execs = rt
        .tthread_counters()
        .into_iter()
        .find(|(id, ..)| *id == victim)
        .map(|(_, e, ..)| e)
        .unwrap();
    assert_eq!(execs, 1, "overflowed tthread must execute exactly once");
    assert_eq!(rt.with(|ctx| *ctx.user()), 2);
}

/// Same stale-entry scenario under `DeferToJoin`: the overflowed trigger
/// reverts the tthread to Triggered (out of the queue), so the next join
/// runs it inline exactly once. Locked baseline only, as above.
#[test]
fn queue_overflow_defer_to_join_runs_once_at_join() {
    let gate = Arc::new(Barrier::new(2));
    let cfg = Config::default()
        .with_workers(1)
        .with_queue_capacity(1)
        .with_coalescing(false)
        .with_lockfree_dispatch(false)
        .with_overflow(OverflowPolicy::DeferToJoin);
    let mut rt = Runtime::new(cfg, 0u64);
    let x = rt.alloc(0u64).unwrap();

    let g = Arc::clone(&gate);
    let blocker = rt.register("blocker", move |_| {
        g.wait();
    });
    let victim = rt.register("victim", move |ctx| {
        let v = ctx.get(x);
        *ctx.user_mut() += v;
    });
    rt.watch(victim, x.range()).unwrap();

    rt.mark_dirty(blocker).unwrap();
    wait_until_running(&rt, blocker);

    rt.write(x, 1);
    rt.write(x, 2);
    assert_eq!(rt.status(victim).unwrap(), TthreadStatus::Triggered);
    assert_eq!(rt.join(victim).unwrap(), JoinOutcome::RanInline);
    assert_eq!(rt.with(|ctx| *ctx.user()), 2);

    gate.wait();
    rt.join_all().unwrap();
    let execs = rt
        .tthread_counters()
        .into_iter()
        .find(|(id, ..)| *id == victim)
        .map(|(_, e, ..)| e)
        .unwrap();
    assert_eq!(execs, 1);
}

/// The lock-free counterpart of the overflow regressions above: with
/// coalescing off, a repeat trigger for a Queued tthread folds into the
/// status word's rerun flag instead of a duplicate queue entry, so the
/// queue cannot overflow from repeats at all — and a join that steals the
/// queued tthread coalesces the pending rerun into its single inline run,
/// exactly like the locked path's remove-all-duplicates steal.
#[test]
fn lockfree_rerun_flag_replaces_queue_duplicates() {
    let gate = Arc::new(Barrier::new(2));
    let cfg = Config::default()
        .with_workers(1)
        .with_queue_capacity(1)
        .with_coalescing(false)
        .with_lockfree_dispatch(true)
        .with_overflow(OverflowPolicy::ExecuteInline);
    let mut rt = Runtime::new(cfg, 0u64);
    let x = rt.alloc(0u64).unwrap();

    let g = Arc::clone(&gate);
    let blocker = rt.register("blocker", move |_| {
        g.wait();
    });
    let victim = rt.register("victim", move |ctx| {
        let v = ctx.get(x);
        *ctx.user_mut() += v;
    });
    rt.watch(victim, x.range()).unwrap();

    // Pin the only worker inside `blocker` so nothing drains the queue.
    rt.mark_dirty(blocker).unwrap();
    wait_until_running(&rt, blocker);

    rt.write(x, 1); // victim enqueued; queue (capacity 1) now full
    rt.write(x, 2); // repeat trigger: absorbed as the rerun flag, no overflow
    assert_eq!(rt.stats().counters().queue_overflows, 0);
    assert_eq!(rt.status(victim).unwrap(), TthreadStatus::Queued);

    // The steal claims the queued entry and clears the rerun flag: one
    // inline run covers both triggers, and it sees the latest value.
    assert_eq!(rt.join(victim).unwrap(), JoinOutcome::Stolen);
    assert_eq!(rt.with(|ctx| *ctx.user()), 2);

    gate.wait();
    rt.join_all().unwrap();
    let execs = rt
        .tthread_counters()
        .into_iter()
        .find(|(id, ..)| *id == victim)
        .map(|(_, e, ..)| e)
        .unwrap();
    assert_eq!(execs, 1, "the stolen run must cover the folded rerun");
    assert_eq!(rt.with(|ctx| *ctx.user()), 2);
}

/// Wake discipline (counter-based, no timing): silent stores and coalesced
/// triggers must not wake workers — only a `PushOutcome::Enqueued` unit of
/// work pays for a notification. The invariant is checked on the runtime's
/// own counters, so a regression shows up as a count mismatch rather than
/// a flaky timing window.
#[test]
fn silent_and_coalesced_stores_do_not_wake_workers() {
    let gate = Arc::new(Barrier::new(2));
    let cfg = Config::default()
        .with_workers(1)
        .with_lockfree_dispatch(true);
    let mut rt = Runtime::new(cfg, 0u64);
    let y = rt.alloc(0u64).unwrap();

    let g = Arc::clone(&gate);
    let blocker = rt.register("blocker", move |_| {
        g.wait();
    });
    let victim = rt.register("victim", move |ctx| {
        let v = ctx.get(y);
        *ctx.user_mut() += v;
    });
    rt.watch(victim, y.range()).unwrap();

    // Pin the only worker so the victim stays Queued for the whole probe.
    rt.mark_dirty(blocker).unwrap();
    wait_until_running(&rt, blocker);

    rt.write(y, 1); // real trigger: enqueues the victim
    let s0 = rt.stats();
    let (wakes0, enqueues0) = (s0.counters().worker_wakes, s0.counters().enqueues);

    // Silent stores: the value does not change, so the store is squashed
    // before dispatch — nothing enqueued, nobody woken.
    for _ in 0..64 {
        rt.write(y, 1);
    }
    // Coalesced triggers: the value changes but the victim is already
    // Queued — the raise absorbs into the status word without a wake.
    for i in 2..10 {
        rt.write(y, i);
    }

    let s1 = rt.stats();
    assert_eq!(
        s1.counters().enqueues,
        enqueues0,
        "no new work units expected"
    );
    assert_eq!(
        s1.counters().worker_wakes,
        wakes0,
        "silent/coalesced stores must never wake a worker"
    );

    gate.wait();
    rt.join_all().unwrap();
    let s = rt.stats();
    assert!(
        s.counters().worker_wakes <= s.counters().enqueues,
        "at most one wake per enqueued unit (wakes={}, enqueues={})",
        s.counters().worker_wakes,
        s.counters().enqueues
    );
}

/// The legacy attached executor (ablation baseline) still converges to the
/// same published values as the detached one.
#[test]
fn attached_ablation_converges() {
    for detached in [false, true] {
        let cfg = Config::default()
            .with_workers(2)
            .with_detached_execution(detached);
        let mut rt = Runtime::new(cfg, 0u64);
        let xs = rt.alloc_array::<u64>(8).unwrap();
        let tt = rt.register("sum", move |ctx| {
            let s: u64 = (0..8).map(|i| ctx.read(xs, i)).sum();
            *ctx.user_mut() = s;
        });
        rt.watch(tt, xs.range()).unwrap();
        for round in 1..=20u64 {
            for i in 0..8 {
                rt.with(|ctx| ctx.write(xs, i, round + i as u64));
            }
            rt.join(tt).unwrap();
            let expect: u64 = (0..8).map(|i| round + i).sum();
            assert_eq!(rt.with(|ctx| *ctx.user()), expect);
        }
        let c = rt.stats();
        if detached {
            assert_eq!(
                c.counters().detached_executions,
                c.counters().worker_executions
            );
        } else {
            assert_eq!(c.counters().detached_executions, 0);
        }
    }
}

/// Sustained pressure: 32 tthreads over disjoint slices, thousands of
/// stores, joins interleaved at random-ish points. The final published
/// values must equal a sequential recomputation.
#[test]
fn parallel_executor_sustained_pressure() {
    const CELLS: usize = 256;
    const TTHREADS: usize = 32;
    const OPS: usize = 5_000;
    let per = CELLS / TTHREADS;

    let cfg = Config::default()
        .with_workers(4)
        .with_queue_capacity(4)
        .with_overflow(OverflowPolicy::ExecuteInline);
    let mut rt = Runtime::new(cfg, vec![0u64; TTHREADS]);
    let cells = rt.alloc_array::<u64>(CELLS).unwrap();
    let tts: Vec<_> = (0..TTHREADS)
        .map(|t| {
            let tt = rt.register(&format!("sum_{t}"), move |ctx| {
                let mut s = 0u64;
                for i in t * per..(t + 1) * per {
                    s += ctx.read(cells, i);
                }
                ctx.user_mut()[t] = s;
            });
            rt.watch(tt, cells.range_of(t * per, (t + 1) * per))
                .unwrap();
            tt
        })
        .collect();

    // Deterministic xorshift store schedule.
    let mut state = 0x9e37_79b9u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut shadow = [0u64; CELLS];
    for op in 0..OPS {
        let i = (rnd() % CELLS as u64) as usize;
        let v = rnd() % 16;
        shadow[i] = v;
        rt.with(|ctx| ctx.write(cells, i, v));
        if op % 97 == 0 {
            // Periodic partial consumption.
            let t = (rnd() % TTHREADS as u64) as usize;
            rt.join(tts[t]).unwrap();
            let expect: u64 = shadow[t * per..(t + 1) * per].iter().sum();
            assert_eq!(
                rt.with(|ctx| ctx.user()[t]),
                expect,
                "tthread {t} at op {op}"
            );
        }
    }
    for (t, &tt) in tts.iter().enumerate() {
        rt.join(tt).unwrap();
        let expect: u64 = shadow[t * per..(t + 1) * per].iter().sum();
        assert_eq!(rt.with(|ctx| ctx.user()[t]), expect, "final tthread {t}");
    }
    let stats = rt.stats();
    assert!(stats.counters().executions > 0);
}

/// Rapid runtime churn: creating and dropping parallel runtimes must never
/// leak or deadlock worker threads.
#[test]
fn runtime_churn_is_clean() {
    for round in 0..50 {
        let cfg = Config::default().with_workers(2);
        let mut rt = Runtime::new(cfg, 0u64);
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("t", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() = v;
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, round);
        rt.join(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), round);
        // Half the rounds drop with work potentially still queued.
        if round % 2 == 0 {
            rt.write(x, round + 1);
        }
        drop(rt);
    }
}

/// into_state under parallel execution returns the final heap contents.
#[test]
fn into_state_after_parallel_run() {
    let cfg = Config::default().with_workers(3);
    let mut rt = Runtime::new(cfg, ());
    let xs = rt.alloc_array::<u64>(64).unwrap();
    let tt = rt.register("noop", |_| {});
    rt.watch(tt, xs.range()).unwrap();
    for i in 0..64u64 {
        rt.with(|ctx| ctx.write(xs, i as usize, i * i));
    }
    rt.join(tt).unwrap();
    let (heap, ()) = rt.into_state();
    for i in 0..64u64 {
        assert_eq!(heap.load::<u64>(xs.at(i as usize).addr()), i * i);
    }
}

/// `Runtime` must stay shareable across threads: the `Accessor` API hands
/// out `&Runtime`-derived handles to scoped threads.
#[test]
fn runtime_is_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Runtime<u64>>();
    assert_sync::<Runtime<Vec<u64>>>();
}

/// Concurrent accessors on disjoint slices of one array: every store lands,
/// the access-side counters are exact, and a store into a watched cell
/// raises its trigger even when issued off the main thread.
#[test]
fn concurrent_accessors_disjoint_stores_are_exact() {
    const THREADS: usize = 4;
    const PER: usize = 64;
    let cfg = Config::default().with_mem_shards(8);
    let mut rt = Runtime::new(cfg, 0u64);
    let xs = rt.alloc_array::<u64>(THREADS * PER).unwrap();
    let flag = rt.alloc(0u64).unwrap();
    let tt = rt.register("flag", move |ctx| {
        let v = ctx.get(flag);
        *ctx.user_mut() += v;
    });
    rt.watch(tt, flag.range()).unwrap();

    std::thread::scope(|s| {
        let rt = &rt;
        for t in 0..THREADS {
            s.spawn(move || {
                let mut acc = rt.accessor();
                let chunk = xs.slice(t * PER, (t + 1) * PER);
                for i in 0..PER {
                    acc.write(chunk, i, (t * PER + i) as u64 + 1);
                }
                // Rewrite the same values: all silent.
                for i in 0..PER {
                    acc.write(chunk, i, (t * PER + i) as u64 + 1);
                }
            });
        }
    });
    // A tracked store from an accessor thread fires the watcher too.
    std::thread::scope(|s| {
        let rt = &rt;
        s.spawn(move || rt.accessor().set(flag, 7));
    });
    rt.join(tt).unwrap();
    assert_eq!(rt.with(|ctx| *ctx.user()), 7);

    for i in 0..THREADS * PER {
        assert_eq!(rt.with(|ctx| ctx.read(xs, i)), i as u64 + 1);
    }
    let c = rt.stats();
    let total = (THREADS * PER * 2 + 1) as u64;
    assert_eq!(c.counters().tracked_stores, total);
    assert_eq!(c.counters().silent_stores, (THREADS * PER) as u64);
    assert_eq!(c.counters().changing_stores, (THREADS * PER + 1) as u64);
}

/// `mem_shards = 1` is the serialized ablation: a deterministic
/// single-threaded workload must produce bit-identical results and counters
/// under 1 shard and under the default sharding.
#[test]
fn shard_count_does_not_change_semantics() {
    let run = |shards: usize| {
        let cfg = Config::default().with_mem_shards(shards);
        assert_eq!(Runtime::<u64>::new(cfg.clone(), 0).mem_shards(), shards);
        let mut rt = Runtime::new(cfg, 0u64);
        let xs = rt.alloc_array::<u64>(32).unwrap();
        let tt = rt.register("sum", move |ctx| {
            let s: u64 = (0..32).map(|i| ctx.read(xs, i)).sum();
            *ctx.user_mut() = s;
        });
        rt.watch(tt, xs.range()).unwrap();
        let mut state = 0x1234_5678u64;
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % 32) as usize;
            rt.with(|ctx| ctx.write(xs, i, state % 8));
            if state.is_multiple_of(11) {
                rt.join(tt).unwrap();
            }
        }
        rt.join(tt).unwrap();
        let user = rt.with(|ctx| *ctx.user());
        (user, rt.stats().counters().clone())
    };
    let (u1, c1) = run(1);
    let (u8_, c8) = run(8);
    assert_eq!(u1, u8_);
    assert_eq!(c1, c8);
}

/// Pins the `skip_fraction` denominator to *join points*, not executions:
/// one triggered execution consumed by one join, followed by three clean
/// joins, is 3 skips out of 4 joins. Under the old executions-based
/// denominator the cascade-free value here would have been 3/1.
#[test]
fn skip_fraction_counts_join_points() {
    let mut rt = Runtime::new(Config::default(), 0u64);
    let x = rt.alloc(0u64).unwrap();
    let tt = rt.register("t", move |ctx| {
        let v = ctx.get(x);
        *ctx.user_mut() = v;
    });
    rt.watch(tt, x.range()).unwrap();

    rt.write(x, 5);
    assert_eq!(rt.join(tt).unwrap(), JoinOutcome::RanInline);
    for _ in 0..3 {
        assert_eq!(rt.join(tt).unwrap(), JoinOutcome::Skipped);
    }
    let c = rt.stats();
    assert_eq!(c.counters().joins, 4);
    assert_eq!(c.counters().skips, 3);
    assert_eq!(c.counters().executions, 1);
    assert!((c.skip_fraction() - 0.75).abs() < 1e-12);
}

/// Cascades under the parallel executor: a chain of tthreads A -> B -> C
/// where each publishes into the next one's watched cell must settle to
/// the right value through joins in dependency order.
#[test]
fn parallel_cascade_chain_settles() {
    let cfg = Config::default().with_workers(2);
    let mut rt = Runtime::new(cfg, ());
    let a = rt.alloc(0u64).unwrap();
    let b = rt.alloc(0u64).unwrap();
    let c = rt.alloc(0u64).unwrap();
    let d = rt.alloc(0u64).unwrap();
    let t_ab = rt.register("a->b", move |ctx| {
        let v = ctx.get(a);
        ctx.set(b, v + 1);
    });
    rt.watch(t_ab, a.range()).unwrap();
    let t_bc = rt.register("b->c", move |ctx| {
        let v = ctx.get(b);
        ctx.set(c, v * 2);
    });
    rt.watch(t_bc, b.range()).unwrap();
    let t_cd = rt.register("c->d", move |ctx| {
        let v = ctx.get(c);
        ctx.set(d, v + 100);
    });
    rt.watch(t_cd, c.range()).unwrap();

    for round in 1..=20u64 {
        rt.write(a, round);
        rt.join(t_ab).unwrap();
        rt.join(t_bc).unwrap();
        rt.join(t_cd).unwrap();
        assert_eq!(rt.read(d), (round + 1) * 2 + 100, "round {round}");
    }
}
