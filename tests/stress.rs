//! Stress tests for the parallel executor: many tthreads, tight queues,
//! sustained trigger pressure, and concurrent completion tracking.

use dtt_core::{Config, OverflowPolicy, Runtime};

/// Sustained pressure: 32 tthreads over disjoint slices, thousands of
/// stores, joins interleaved at random-ish points. The final published
/// values must equal a sequential recomputation.
#[test]
fn parallel_executor_sustained_pressure() {
    const CELLS: usize = 256;
    const TTHREADS: usize = 32;
    const OPS: usize = 5_000;
    let per = CELLS / TTHREADS;

    let cfg = Config::default()
        .with_workers(4)
        .with_queue_capacity(4)
        .with_overflow(OverflowPolicy::ExecuteInline);
    let mut rt = Runtime::new(cfg, vec![0u64; TTHREADS]);
    let cells = rt.alloc_array::<u64>(CELLS).unwrap();
    let tts: Vec<_> = (0..TTHREADS)
        .map(|t| {
            let tt = rt.register(&format!("sum_{t}"), move |ctx| {
                let mut s = 0u64;
                for i in t * per..(t + 1) * per {
                    s += ctx.read(cells, i);
                }
                ctx.user_mut()[t] = s;
            });
            rt.watch(tt, cells.range_of(t * per, (t + 1) * per)).unwrap();
            tt
        })
        .collect();

    // Deterministic xorshift store schedule.
    let mut state = 0x9e37_79b9u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut shadow = [0u64; CELLS];
    for op in 0..OPS {
        let i = (rnd() % CELLS as u64) as usize;
        let v = rnd() % 16;
        shadow[i] = v;
        rt.with(|ctx| ctx.write(cells, i, v));
        if op % 97 == 0 {
            // Periodic partial consumption.
            let t = (rnd() % TTHREADS as u64) as usize;
            rt.join(tts[t]).unwrap();
            let expect: u64 = shadow[t * per..(t + 1) * per].iter().sum();
            assert_eq!(rt.with(|ctx| ctx.user()[t]), expect, "tthread {t} at op {op}");
        }
    }
    for (t, &tt) in tts.iter().enumerate() {
        rt.join(tt).unwrap();
        let expect: u64 = shadow[t * per..(t + 1) * per].iter().sum();
        assert_eq!(rt.with(|ctx| ctx.user()[t]), expect, "final tthread {t}");
    }
    let stats = rt.stats();
    assert!(stats.counters().executions > 0);
}

/// Rapid runtime churn: creating and dropping parallel runtimes must never
/// leak or deadlock worker threads.
#[test]
fn runtime_churn_is_clean() {
    for round in 0..50 {
        let cfg = Config::default().with_workers(2);
        let mut rt = Runtime::new(cfg, 0u64);
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("t", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() = v;
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, round);
        rt.join(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), round);
        // Half the rounds drop with work potentially still queued.
        if round % 2 == 0 {
            rt.write(x, round + 1);
        }
        drop(rt);
    }
}

/// into_state under parallel execution returns the final heap contents.
#[test]
fn into_state_after_parallel_run() {
    let cfg = Config::default().with_workers(3);
    let mut rt = Runtime::new(cfg, ());
    let xs = rt.alloc_array::<u64>(64).unwrap();
    let tt = rt.register("noop", |_| {});
    rt.watch(tt, xs.range()).unwrap();
    for i in 0..64u64 {
        rt.with(|ctx| ctx.write(xs, i as usize, i * i));
    }
    rt.join(tt).unwrap();
    let (heap, ()) = rt.into_state();
    for i in 0..64u64 {
        assert_eq!(heap.load::<u64>(xs.at(i as usize).addr()), i * i);
    }
}

/// Cascades under the parallel executor: a chain of tthreads A -> B -> C
/// where each publishes into the next one's watched cell must settle to
/// the right value through joins in dependency order.
#[test]
fn parallel_cascade_chain_settles() {
    let cfg = Config::default().with_workers(2);
    let mut rt = Runtime::new(cfg, ());
    let a = rt.alloc(0u64).unwrap();
    let b = rt.alloc(0u64).unwrap();
    let c = rt.alloc(0u64).unwrap();
    let d = rt.alloc(0u64).unwrap();
    let t_ab = rt.register("a->b", move |ctx| {
        let v = ctx.get(a);
        ctx.set(b, v + 1);
    });
    rt.watch(t_ab, a.range()).unwrap();
    let t_bc = rt.register("b->c", move |ctx| {
        let v = ctx.get(b);
        ctx.set(c, v * 2);
    });
    rt.watch(t_bc, b.range()).unwrap();
    let t_cd = rt.register("c->d", move |ctx| {
        let v = ctx.get(c);
        ctx.set(d, v + 100);
    });
    rt.watch(t_cd, c.range()).unwrap();

    for round in 1..=20u64 {
        rt.write(a, round);
        rt.join(t_ab).unwrap();
        rt.join(t_bc).unwrap();
        rt.join(t_cd).unwrap();
        assert_eq!(rt.read(d), (round + 1) * 2 + 100, "round {round}");
    }
}
