//! Consistency of the toolchain: the software runtime, the trace profiler
//! and the timing simulator must agree about *what is redundant* on the
//! same workload.

use dtt::core::Config;
use dtt::profile::{LoadProfiler, RedundancyProfiler};
use dtt::sim::{simulate, MachineConfig, SimMode};
use dtt::workloads::{suite, Scale};

/// A machine whose trigger semantics match the default software runtime:
/// byte-precise granularity, silent-store suppression on.
fn precise_machine() -> MachineConfig {
    MachineConfig::default().with_granularity_bytes(1)
}

#[test]
fn simulator_baseline_executes_the_whole_trace() {
    for w in suite(Scale::Test) {
        let trace = w.trace();
        let base = simulate(&precise_machine(), &trace, SimMode::Baseline);
        assert_eq!(
            base.instructions_executed,
            trace.instructions(),
            "{}: baseline must execute every traced instruction",
            w.name()
        );
        assert_eq!(base.instructions_skipped, 0);
        assert_eq!(base.loads, trace.loads());
        assert_eq!(base.stores, trace.stores());
    }
}

#[test]
fn simulator_skips_exactly_the_profiled_redundancy() {
    // At byte granularity with suppression on, the simulator's skip
    // decisions are the redundancy profiler's definition of redundant
    // region instances — they must agree exactly.
    for w in suite(Scale::Test) {
        let trace = w.trace();
        let profile = RedundancyProfiler::profile(&trace);
        let dtt = simulate(&precise_machine(), &trace, SimMode::Dtt);
        let redundant: u64 = profile.tthreads.iter().map(|t| t.redundant_instances).sum();
        assert_eq!(
            dtt.regions_skipped,
            redundant,
            "{}: simulator and profiler disagree on skippable instances",
            w.name()
        );
        let redundant_instr: u64 = profile.redundant_instructions();
        assert_eq!(
            dtt.instructions_skipped,
            redundant_instr,
            "{}: skipped instruction counts disagree",
            w.name()
        );
    }
}

#[test]
fn simulator_conserves_instructions() {
    for w in suite(Scale::Test) {
        let trace = w.trace();
        let dtt = simulate(&precise_machine(), &trace, SimMode::Dtt);
        assert_eq!(
            dtt.instructions_executed + dtt.instructions_skipped,
            trace.instructions(),
            "{}: executed + skipped must cover the trace",
            w.name()
        );
    }
}

#[test]
fn runtime_and_simulator_skip_rates_align() {
    // The software runtime joins once per traced region instance, so its
    // per-tthread execution counts must match the simulator's non-skipped
    // instances (both implement the same trigger semantics).
    for w in suite(Scale::Test) {
        let trace = w.trace();
        let dtt_sim = simulate(&precise_machine(), &trace, SimMode::Dtt);
        let run = w.run_dtt(Config::default());
        let sim_runs: u64 = dtt_sim.region_instances - dtt_sim.regions_skipped;
        let rt_runs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        assert_eq!(
            sim_runs,
            rt_runs,
            "{}: simulator ran {} instances, software runtime {}",
            w.name(),
            sim_runs,
            rt_runs
        );
    }
}

#[test]
fn dtt_machine_is_never_slower_than_baseline_with_free_overheads() {
    // With zero spawn/check overhead and precise triggers, skipping can
    // only remove work.
    let cfg = precise_machine().with_spawn_overhead(0).with_contexts(1);
    for w in suite(Scale::Test) {
        let trace = w.trace();
        let base = simulate(&cfg, &trace, SimMode::Baseline);
        let dtt = simulate(&cfg, &trace, SimMode::Dtt);
        assert!(
            dtt.cycles <= base.cycles,
            "{}: dtt {} > baseline {} with free overheads",
            w.name(),
            dtt.cycles,
            base.cycles
        );
    }
}

#[test]
fn load_profiles_are_deterministic() {
    for w in suite(Scale::Test) {
        let a = LoadProfiler::profile(&w.trace());
        let b = LoadProfiler::profile(&w.trace());
        assert_eq!(a, b, "{}: trace emission must be deterministic", w.name());
    }
}

#[test]
fn traces_validate_structurally() {
    for w in suite(Scale::Test) {
        let trace = w.trace();
        assert!(!trace.tthread_names().is_empty(), "{}", w.name());
        assert!(!trace.watches().is_empty(), "{}", w.name());
        assert!(trace.instructions() > 0, "{}", w.name());
        // Region instruction totals are covered by the overall total.
        let region_total: u64 = trace.region_instructions().iter().sum();
        assert!(region_total > 0, "{}", w.name());
        assert!(region_total <= trace.instructions(), "{}", w.name());
    }
}
