//! Property-based tests for the cache model.

use dtt_memsim::{Cache, CacheConfig, Hierarchy, HierarchyConfig};
use proptest::prelude::*;

proptest! {
    /// An access to an address always makes the *immediately following*
    /// access to the same address an L1 hit.
    #[test]
    fn immediate_reuse_hits(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        for addr in addrs {
            c.access(addr, false);
            prop_assert!(c.access(addr, false).hit);
        }
    }

    /// Counter identities hold under any access sequence:
    /// hits <= accesses, writebacks <= evictions <= misses.
    #[test]
    fn counter_identities(ops in prop::collection::vec((0u64..4096, prop::bool::ANY), 0..500)) {
        let mut c = Cache::new(CacheConfig::new(512, 2, 32));
        for (addr, write) in ops {
            c.access(addr, write);
        }
        let s = c.stats();
        prop_assert!(s.hits <= s.accesses);
        prop_assert!(s.evictions <= s.misses());
        prop_assert!(s.writebacks <= s.evictions);
    }

    /// A working set no larger than the cache capacity misses each line at
    /// most once (pure LRU, no conflict pathologies when set-aligned).
    #[test]
    fn resident_working_set_misses_once(rounds in 2usize..6) {
        let cfg = CacheConfig::new(4096, 4, 64);
        let mut c = Cache::new(cfg);
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect(); // exactly capacity
        for _ in 0..rounds {
            for &a in &lines {
                c.access(a, false);
            }
        }
        prop_assert_eq!(c.stats().misses(), 64);
    }

    /// Hierarchy latencies are always one of the four configured values,
    /// and total latency equals the sum of per-access latencies.
    #[test]
    fn hierarchy_latency_accounting(ops in prop::collection::vec((0u64..100_000, prop::bool::ANY), 1..300)) {
        let cfg = HierarchyConfig::default();
        let mut m = Hierarchy::new(cfg);
        let mut sum = 0u64;
        for (addr, write) in ops {
            let r = m.access(addr, write);
            prop_assert!(
                [cfg.l1_latency, cfg.l2_latency, cfg.l3_latency, cfg.memory_latency]
                    .contains(&r.latency)
            );
            sum += r.latency;
        }
        prop_assert_eq!(m.total_latency(), sum);
    }

    /// Monotonicity of capacity: for a random trace, a bigger L1 never has
    /// a lower hit count than a smaller one (both fully-LRU, same line
    /// size, same associativity scaled with size so sets match).
    #[test]
    fn bigger_cache_never_worse(seed_addrs in prop::collection::vec(0u64..8192, 50..300)) {
        // Same number of sets, doubled ways: strictly more capacity per set.
        let small = CacheConfig::new(1024, 2, 32);
        let big = CacheConfig::new(2048, 4, 32);
        let mut cs = Cache::new(small);
        let mut cb = Cache::new(big);
        for &a in &seed_addrs {
            cs.access(a, false);
            cb.access(a, false);
        }
        prop_assert!(cb.stats().hits >= cs.stats().hits);
    }
}
