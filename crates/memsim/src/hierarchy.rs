//! A multi-level cache hierarchy with per-level latencies.

use std::fmt;

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Third-level cache.
    L3,
    /// Main memory.
    Memory,
}

impl fmt::Display for HitLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::L3 => "L3",
            HitLevel::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Cycles to service the access.
    pub latency: u64,
    /// The level that supplied the line.
    pub level: HitLevel,
}

/// Configuration of the full hierarchy.
///
/// `l3` is optional; latencies are *total* round-trip cycles when an access
/// is serviced at that level (not incremental).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Optional L3 geometry.
    pub l3: Option<CacheConfig>,
    /// Latency of an L1 hit.
    pub l1_latency: u64,
    /// Latency of an L2 hit.
    pub l2_latency: u64,
    /// Latency of an L3 hit.
    pub l3_latency: u64,
    /// Latency of a memory access.
    pub memory_latency: u64,
    /// Fetch line `X+1` into L1 alongside a missing line `X` (a simple
    /// next-line prefetcher). Helps streaming access patterns.
    pub prefetch_next_line: bool,
}

impl Default for HierarchyConfig {
    /// A configuration in the spirit of the paper's simulated machine:
    /// 32 KiB 4-way L1 (2-cycle), 512 KiB 8-way L2 (12-cycle), 4 MiB 16-way
    /// L3 (30-cycle), 200-cycle memory, 64-byte lines throughout.
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 4, 64),
            l2: CacheConfig::new(512 * 1024, 8, 64),
            l3: Some(CacheConfig::new(4 * 1024 * 1024, 16, 64)),
            l1_latency: 2,
            l2_latency: 12,
            l3_latency: 30,
            memory_latency: 200,
            prefetch_next_line: false,
        }
    }
}

/// The simulated data-cache hierarchy.
///
/// Inclusive fill policy: a miss allocates the line in every level it
/// traversed. Writes are write-back/write-allocate at L1.
///
/// # Examples
///
/// ```
/// use dtt_memsim::hierarchy::{Hierarchy, HierarchyConfig, HitLevel};
/// let mut m = Hierarchy::new(HierarchyConfig::default());
/// let first = m.access(0x1000, false);
/// assert_eq!(first.level, HitLevel::Memory);
/// let second = m.access(0x1000, false);
/// assert_eq!(second.level, HitLevel::L1);
/// assert!(second.latency < first.latency);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Option<Cache>,
    memory_accesses: u64,
    total_latency: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from its configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            l3: config.l3.map(Cache::new),
            config,
            memory_accesses: 0,
            total_latency: 0,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Services the access and returns its latency and the supplying level.
    pub fn access(&mut self, addr: u64, write: bool) -> MemAccess {
        let prefetch = self.config.prefetch_next_line;
        let line = self.config.l1.line_bytes() as u64;
        let result = if self.l1.access(addr, write).hit {
            MemAccess {
                latency: self.config.l1_latency,
                level: HitLevel::L1,
            }
        } else if self.l2.access(addr, write).hit {
            MemAccess {
                latency: self.config.l2_latency,
                level: HitLevel::L2,
            }
        } else if let Some(l3) = self.l3.as_mut() {
            if l3.access(addr, write).hit {
                MemAccess {
                    latency: self.config.l3_latency,
                    level: HitLevel::L3,
                }
            } else {
                self.memory_accesses += 1;
                MemAccess {
                    latency: self.config.memory_latency,
                    level: HitLevel::Memory,
                }
            }
        } else {
            self.memory_accesses += 1;
            MemAccess {
                latency: self.config.memory_latency,
                level: HitLevel::Memory,
            }
        };
        if prefetch && result.level != HitLevel::L1 {
            self.l1.prefetch(addr / line * line + line);
        }
        self.total_latency += result.latency;
        result
    }

    /// Counters for (L1, L2, L3-if-present).
    pub fn level_stats(&self) -> (CacheStats, CacheStats, Option<CacheStats>) {
        (
            self.l1.stats(),
            self.l2.stats(),
            self.l3.as_ref().map(Cache::stats),
        )
    }

    /// Total accesses that went all the way to memory.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Sum of all access latencies so far.
    pub fn total_latency(&self) -> u64 {
        self.total_latency
    }

    /// Invalidates all levels and zeroes all counters.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        if let Some(l3) = self.l3.as_mut() {
            l3.reset();
        }
        self.memory_accesses = 0;
        self.total_latency = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1: CacheConfig::new(256, 2, 16),
            l2: CacheConfig::new(1024, 4, 16),
            l3: None,
            l1_latency: 1,
            l2_latency: 10,
            l3_latency: 0,
            memory_latency: 100,
            prefetch_next_line: false,
        })
    }

    #[test]
    fn miss_fills_all_levels() {
        let mut m = small();
        assert_eq!(m.access(0, false).level, HitLevel::Memory);
        assert_eq!(m.access(0, false).level, HitLevel::L1);
        assert_eq!(m.memory_accesses(), 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = small();
        // L1: 256 B / 16 B lines / 2 ways = 8 sets. Touch 32 distinct lines
        // (512 B) to overflow L1 while staying within the 1 KiB L2.
        for addr in (0..512).step_by(16) {
            m.access(addr, false);
        }
        // Re-touch the first line: likely evicted from L1, but still in L2.
        let r = m.access(0, false);
        assert_eq!(r.level, HitLevel::L2);
        assert_eq!(r.latency, 10);
    }

    #[test]
    fn latency_accumulates() {
        let mut m = small();
        m.access(0, false); // 100
        m.access(0, false); // 1
        assert_eq!(m.total_latency(), 101);
    }

    #[test]
    fn default_config_has_three_levels() {
        let mut m = Hierarchy::new(HierarchyConfig::default());
        assert_eq!(m.access(0, false).level, HitLevel::Memory);
        let (_, _, l3) = m.level_stats();
        assert!(l3.is_some());
        assert_eq!(m.access(0, false).latency, 2);
    }

    #[test]
    fn l3_supplies_after_l2_eviction() {
        let cfg = HierarchyConfig {
            l1: CacheConfig::new(64, 2, 16),
            l2: CacheConfig::new(256, 2, 16),
            l3: Some(CacheConfig::new(4096, 4, 16)),
            l1_latency: 1,
            l2_latency: 5,
            l3_latency: 20,
            memory_latency: 100,
            prefetch_next_line: false,
        };
        let mut m = Hierarchy::new(cfg);
        for addr in (0..2048).step_by(16) {
            m.access(addr, false);
        }
        // First line is out of L1 and L2, but the 4 KiB L3 still holds it.
        let r = m.access(0, false);
        assert_eq!(r.level, HitLevel::L3);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = small();
        m.access(0, false);
        m.reset();
        assert_eq!(m.total_latency(), 0);
        assert_eq!(m.memory_accesses(), 0);
        assert_eq!(m.access(0, false).level, HitLevel::Memory);
    }

    #[test]
    fn prefetcher_helps_streaming() {
        let mut cfg = HierarchyConfig {
            l1: CacheConfig::new(256, 2, 16),
            l2: CacheConfig::new(4096, 4, 16),
            l3: None,
            l1_latency: 1,
            l2_latency: 10,
            l3_latency: 0,
            memory_latency: 100,
            prefetch_next_line: false,
        };
        let stream = |m: &mut Hierarchy| {
            for addr in (0..2048).step_by(16) {
                m.access(addr, false);
            }
            m.total_latency()
        };
        let plain = stream(&mut Hierarchy::new(cfg));
        cfg.prefetch_next_line = true;
        let prefetched = stream(&mut Hierarchy::new(cfg));
        // Every other line arrives via prefetch: roughly half the misses.
        assert!(prefetched < plain, "prefetch {prefetched} !< plain {plain}");
    }

    #[test]
    fn prefetch_does_not_count_accesses() {
        let cfg = HierarchyConfig {
            prefetch_next_line: true,
            ..HierarchyConfig::default()
        };
        let mut m = Hierarchy::new(cfg);
        m.access(0, false); // miss; prefetches line 1
        let (l1, _, _) = m.level_stats();
        assert_eq!(l1.accesses, 1);
        // The prefetched next line hits in L1.
        assert_eq!(m.access(64, false).level, HitLevel::L1);
    }

    #[test]
    fn hit_levels_order() {
        assert!(HitLevel::L1 < HitLevel::L2);
        assert!(HitLevel::L3 < HitLevel::Memory);
        assert_eq!(HitLevel::Memory.to_string(), "memory");
    }
}
