//! A multi-core cache cluster: per-core (or shared) L1s over a shared
//! L2/L3/memory backbone.
//!
//! The DTT timing simulator runs tthreads on spare contexts; whether those
//! contexts share the main thread's L1 (SMT-style) or have their own
//! (CMP-style) changes both the tthread's warm-up cost and the main
//! thread's cache pressure. [`Cluster`] models both layouts behind one
//! `access(core, addr, write)` call.

use crate::cache::{Cache, CacheStats};
use crate::hierarchy::{HierarchyConfig, HitLevel, MemAccess};

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of cores (hardware contexts) issuing accesses.
    pub cores: usize,
    /// `true`: every core has its own L1 (CMP-style); `false`: all cores
    /// share one L1 (SMT-style).
    pub private_l1: bool,
    /// Geometry and latencies of the levels.
    pub hierarchy: HierarchyConfig,
}

impl ClusterConfig {
    /// A cluster over the given hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, private_l1: bool, hierarchy: HierarchyConfig) -> Self {
        assert!(cores >= 1, "a cluster needs at least one core");
        ClusterConfig {
            cores,
            private_l1,
            hierarchy,
        }
    }
}

/// The multi-core cache model.
///
/// # Examples
///
/// ```
/// use dtt_memsim::{Cluster, ClusterConfig, HierarchyConfig, HitLevel};
///
/// let mut shared = Cluster::new(ClusterConfig::new(2, false, HierarchyConfig::default()));
/// shared.access(0, 0x100, false);
/// // Shared L1: core 1 hits on core 0's line.
/// assert_eq!(shared.access(1, 0x100, false).level, HitLevel::L1);
///
/// let mut private = Cluster::new(ClusterConfig::new(2, true, HierarchyConfig::default()));
/// private.access(0, 0x100, false);
/// // Private L1s: core 1 misses to the shared L2.
/// assert_eq!(private.access(1, 0x100, false).level, HitLevel::L2);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    l1s: Vec<Cache>,
    l2: Cache,
    l3: Option<Cache>,
    memory_accesses: u64,
    total_latency: u64,
}

impl Cluster {
    /// Builds the cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let l1_count = if config.private_l1 { config.cores } else { 1 };
        Cluster {
            l1s: (0..l1_count)
                .map(|_| Cache::new(config.hierarchy.l1))
                .collect(),
            l2: Cache::new(config.hierarchy.l2),
            l3: config.hierarchy.l3.map(Cache::new),
            config,
            memory_accesses: 0,
            total_latency: 0,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Services an access issued by `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= config.cores`.
    pub fn access(&mut self, core: usize, addr: u64, write: bool) -> MemAccess {
        assert!(core < self.config.cores, "core {core} out of range");
        let h = self.config.hierarchy;
        let l1 = if self.config.private_l1 {
            &mut self.l1s[core]
        } else {
            &mut self.l1s[0]
        };
        let result = if l1.access(addr, write).hit {
            MemAccess {
                latency: h.l1_latency,
                level: HitLevel::L1,
            }
        } else if self.l2.access(addr, write).hit {
            MemAccess {
                latency: h.l2_latency,
                level: HitLevel::L2,
            }
        } else if let Some(l3) = self.l3.as_mut() {
            if l3.access(addr, write).hit {
                MemAccess {
                    latency: h.l3_latency,
                    level: HitLevel::L3,
                }
            } else {
                self.memory_accesses += 1;
                MemAccess {
                    latency: h.memory_latency,
                    level: HitLevel::Memory,
                }
            }
        } else {
            self.memory_accesses += 1;
            MemAccess {
                latency: h.memory_latency,
                level: HitLevel::Memory,
            }
        };
        if h.prefetch_next_line && result.level != HitLevel::L1 {
            let line = h.l1.line_bytes() as u64;
            let l1 = if self.config.private_l1 {
                &mut self.l1s[core]
            } else {
                &mut self.l1s[0]
            };
            l1.prefetch(addr / line * line + line);
        }
        self.total_latency += result.latency;
        result
    }

    /// Aggregated L1 counters (summed over private L1s), then L2 and L3.
    pub fn level_stats(&self) -> (CacheStats, CacheStats, Option<CacheStats>) {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            let s = c.stats();
            l1.accesses += s.accesses;
            l1.hits += s.hits;
            l1.evictions += s.evictions;
            l1.writebacks += s.writebacks;
        }
        (l1, self.l2.stats(), self.l3.as_ref().map(Cache::stats))
    }

    /// Accesses that reached memory.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Sum of all access latencies.
    pub fn total_latency(&self) -> u64 {
        self.total_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn cfg(private: bool) -> ClusterConfig {
        ClusterConfig::new(
            2,
            private,
            HierarchyConfig {
                l1: CacheConfig::new(256, 2, 16),
                l2: CacheConfig::new(1024, 4, 16),
                l3: None,
                l1_latency: 1,
                l2_latency: 10,
                l3_latency: 0,
                memory_latency: 100,
                prefetch_next_line: false,
            },
        )
    }

    #[test]
    fn shared_l1_cross_core_hits() {
        let mut c = Cluster::new(cfg(false));
        c.access(0, 0, false);
        assert_eq!(c.access(1, 0, false).level, HitLevel::L1);
    }

    #[test]
    fn private_l1_cross_core_goes_to_l2() {
        let mut c = Cluster::new(cfg(true));
        c.access(0, 0, false);
        let r = c.access(1, 0, false);
        assert_eq!(r.level, HitLevel::L2);
        assert_eq!(r.latency, 10);
        // But core 1's own L1 now holds the line.
        assert_eq!(c.access(1, 0, false).level, HitLevel::L1);
    }

    #[test]
    fn single_core_private_equals_shared() {
        let base = ClusterConfig::new(1, false, cfg(false).hierarchy);
        let priv_ = ClusterConfig::new(1, true, cfg(true).hierarchy);
        let mut a = Cluster::new(base);
        let mut b = Cluster::new(priv_);
        for addr in [0u64, 16, 0, 512, 0, 16] {
            assert_eq!(a.access(0, addr, false), b.access(0, addr, false));
        }
        assert_eq!(a.total_latency(), b.total_latency());
    }

    #[test]
    fn aggregated_stats_cover_all_l1s() {
        let mut c = Cluster::new(cfg(true));
        c.access(0, 0, false);
        c.access(1, 16, false);
        let (l1, l2, l3) = c.level_stats();
        assert_eq!(l1.accesses, 2);
        assert_eq!(l2.accesses, 2); // both missed L1
        assert!(l3.is_none());
    }

    #[test]
    fn private_l1_isolation_avoids_interference() {
        // One core streams a large array, the other reuses one line. With a
        // shared direct-mapped L1 the streamer keeps evicting the reused
        // line; private L1s keep it resident.
        let direct_mapped = |private: bool| {
            ClusterConfig::new(
                2,
                private,
                HierarchyConfig {
                    l1: CacheConfig::new(128, 1, 16),
                    l2: CacheConfig::new(1024, 4, 16),
                    l3: None,
                    l1_latency: 1,
                    l2_latency: 10,
                    l3_latency: 0,
                    memory_latency: 100,
                    prefetch_next_line: false,
                },
            )
        };
        let run = |private: bool| -> u64 {
            let mut c = Cluster::new(direct_mapped(private));
            let mut l1_hits_core1 = 0;
            for i in 0..128u64 {
                c.access(0, 16 * i, false); // streamer
                if c.access(1, 0, false).level == HitLevel::L1 {
                    l1_hits_core1 += 1;
                }
            }
            l1_hits_core1
        };
        assert!(run(true) > run(false));
    }

    #[test]
    #[should_panic(expected = "core 2 out of range")]
    fn out_of_range_core_panics() {
        let mut c = Cluster::new(cfg(true));
        c.access(2, 0, false);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        ClusterConfig::new(0, true, HierarchyConfig::default());
    }
}
