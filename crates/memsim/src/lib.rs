//! # dtt-memsim — cache hierarchy simulator
//!
//! A tag-only, set-associative, write-back cache hierarchy model used as the
//! memory substrate of the DTT timing simulator (`dtt-sim`). The HPCA'11
//! evaluation ran on a detailed SMT processor model; this crate supplies the
//! part of that model that matters for the paper's result — realistic load/
//! store latencies as a function of locality — while staying small and
//! deterministic.
//!
//! ```
//! use dtt_memsim::{Hierarchy, HierarchyConfig, HitLevel};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::default());
//! assert_eq!(mem.access(0x40, false).level, HitLevel::Memory); // cold
//! assert_eq!(mem.access(0x40, false).level, HitLevel::L1);     // warm
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod hierarchy;

pub use cache::{Cache, CacheAccess, CacheConfig, CacheStats};
pub use cluster::{Cluster, ClusterConfig};
pub use hierarchy::{Hierarchy, HierarchyConfig, HitLevel, MemAccess};
