//! A single set-associative cache level with LRU replacement.

use std::fmt;

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use dtt_memsim::cache::CacheConfig;
/// let l1 = CacheConfig::new(32 * 1024, 8, 64);
/// assert_eq!(l1.sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: u64,
    ways: u32,
    line_bytes: u32,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `ways` and `line_bytes` are nonzero,
    /// `line_bytes` is a power of two, and the implied set count is a
    /// nonzero power of two.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(
            size_bytes > 0 && ways > 0 && line_bytes > 0,
            "cache dimensions must be nonzero"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes as u64;
        assert!(
            lines.is_multiple_of(ways as u64),
            "cache size must be divisible by ways * line size"
        );
        let sets = lines / ways as u64;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a nonzero power of two"
        );
        CacheConfig {
            size_bytes,
            ways,
            line_bytes,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64 / self.ways as u64
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty line was evicted to make room (write-back traffic).
    pub writeback: bool,
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Lines evicted (clean or dirty).
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in `[0, 1]`; `0` when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits ({:.2}% miss), {} evictions, {} writebacks",
            self.accesses,
            self.hits,
            100.0 * self.miss_rate(),
            self.evictions,
            self.writebacks
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch; smallest = LRU victim.
    lru: u64,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// The cache stores no data, only tags — it is a timing/locality model.
///
/// # Examples
///
/// ```
/// use dtt_memsim::cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
/// assert!(!c.access(0, false).hit); // cold miss
/// assert!(c.access(0, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let total = (config.sets() * config.ways as u64) as usize;
        Cache {
            config,
            lines: vec![INVALID_LINE; total],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines and zeroes the counters.
    pub fn reset(&mut self) {
        self.lines.fill(INVALID_LINE);
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    fn set_index(&self, addr: u64) -> usize {
        let line = addr / self.config.line_bytes as u64;
        (line % self.config.sets()) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64 / self.config.sets()
    }

    /// Accesses the line containing `addr`; `write` marks it dirty.
    /// On a miss the line is allocated, evicting the LRU way.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.stats.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.config.ways as usize;
        let slots = &mut self.lines[set * ways..(set + 1) * ways];

        if let Some(line) = slots.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                writeback: false,
            };
        }

        // Miss: prefer an invalid way, otherwise evict the LRU way.
        let victim = slots
            .iter_mut()
            .min_by_key(|l| (l.valid, l.lru))
            .expect("cache set has at least one way");
        let mut writeback = false;
        if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = true;
            }
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: tick,
        };
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Installs the line containing `addr` without counting an access
    /// (prefetch fill). Evictions and writebacks are still counted. Does
    /// nothing if the line is already resident.
    pub fn prefetch(&mut self, addr: u64) {
        if self.probe(addr) {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.config.ways as usize;
        let slots = &mut self.lines[set * ways..(set + 1) * ways];
        let victim = slots
            .iter_mut()
            .min_by_key(|l| (l.valid, l.lru))
            .expect("cache set has at least one way");
        if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
            }
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: false,
            lru: tick,
        };
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 16-byte lines: capacity 64 bytes.
        Cache::new(CacheConfig::new(64, 2, 16))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(32 * 1024, 8, 64);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.size_bytes(), 32 * 1024);
        assert_eq!(c.ways(), 8);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(1024, 2, 48);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(15, false).hit); // same 16-byte line
        assert!(!c.access(16, false).hit); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines whose (addr/16) is even: addrs 0, 32, 64 map there.
        c.access(0, false);
        c.access(32, false);
        c.access(0, false); // refresh line 0 -> line 32 is LRU
        c.access(64, false); // evicts 32
        assert!(c.probe(0));
        assert!(!c.probe(32));
        assert!(c.probe(64));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(32, false);
        let out = c.access(64, false); // evicts LRU = line 0 (dirty)
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.access(32, false);
        let out = c.access(64, false);
        assert!(out.writeback);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(32, false);
        let out = c.access(64, false);
        assert!(!out.writeback);
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0, true);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn miss_rate_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        s.accesses = 10;
        s.hits = 6;
        assert_eq!(s.misses(), 4);
        assert!((s.miss_rate() - 0.4).abs() < 1e-12);
        assert!(s.to_string().contains("miss"));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 64 B capacity
                            // Stream over 1 KiB repeatedly: after warmup, still ~all misses.
        for _ in 0..4 {
            for addr in (0..1024).step_by(16) {
                c.access(addr, false);
            }
        }
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn working_set_within_cache_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::new(1024, 4, 16));
        for round in 0..10 {
            for addr in (0..512).step_by(16) {
                let hit = c.access(addr, false).hit;
                if round > 0 {
                    assert!(hit, "addr {addr} should hit in round {round}");
                }
            }
        }
    }
}
