//! A minimal blocking client for the framed protocol.

use std::io::{self, Read};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{write_frame, FrameDecoder, Request, Response};

/// One framed-TCP connection to a [`crate::server::Server`].
///
/// Responses are read through a resumable [`FrameDecoder`], so a read
/// timeout that fires mid-frame parks the partial bytes instead of
/// dropping them — the next [`Client::request`] resumes the same frame
/// rather than desynchronizing the stream.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl Client {
    /// Connects (with Nagle disabled; requests are single small frames).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
        })
    }

    /// Bounds how long [`Client::request`] blocks on the response.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and reads its response. An EOF mid-request
    /// (the server dropped the connection) surfaces as
    /// `ErrorKind::UnexpectedEof`; a timeout surfaces as the platform's
    /// timeout kind with any partial response parked for the next call.
    pub fn request(&mut self, request: Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut buf = [0u8; 1024];
        loop {
            if let Some(payload) = self.decoder.next_frame()? {
                return Response::decode(&payload).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "undecodable response")
                });
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-request",
                    ))
                }
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
