//! A minimal blocking client for the framed protocol.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{read_frame, write_frame, Request, Response};

/// One framed-TCP connection to a [`crate::server::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (with Nagle disabled; requests are single small frames).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds how long [`Client::request`] blocks on the response.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and reads its response. An EOF mid-request
    /// (the server dropped the connection) surfaces as
    /// `ErrorKind::UnexpectedEof`.
    pub fn request(&mut self, request: Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            )
        })?;
        Response::decode(&payload)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable response"))
    }
}
