//! # dtt-serve — an overload-safe front-end over tthread-maintained state
//!
//! The paper's skip path makes tthread-maintained derived state a cache
//! that is provably fresh: a read after a join either skipped (nothing
//! changed) or observed the recomputation's commit. This crate puts a
//! minimal framed-TCP front-end on that property — client writes batch
//! into tracked stores, tthread chains (the `spreadsheet`/`pipeline`
//! workload views) maintain the aggregates, reads are served from the
//! derived cells — and hardens the *request lifecycle* with the same
//! discipline PR 4's fault layer applied to the tthread lifecycle:
//!
//! * **Admission control** ([`admission`]): a semaphore-style gate plus
//!   a bounded engine mailbox; past either limit the client gets an
//!   explicit [`proto::Response::Shed`], never unbounded buffering.
//! * **Deadlines + bounded retry** ([`server`], [`engine`]): each
//!   admitted request waits at most `deadline` for the engine; the
//!   engine layers bounded repair retries with exponential backoff
//!   ([`dtt_core::deadline::backoff_delay`]) on top of the runtime's
//!   `commit_retry_cap`.
//! * **Graceful degradation**: past the deadline or under a wedged
//!   tthread, reads fall back to the last-committed cache tagged
//!   `degraded=true`; [`server::Server::shutdown`] drains — stops
//!   accepting, finishes in-flight requests, then tears the runtime
//!   down (idempotently).
//! * **Chaos integration**: the serve-layer [`dtt_core::FaultPoint`]s
//!   (`ConnDrop`, `ClientStall`, `AcceptOverflow`) are probed through a
//!   seeded [`dtt_core::FaultProbe`]; `dtt-chaos` drives them with
//!   pinned seeds and asserts the conservation identities
//!   ([`admission::ServeStatsSnapshot::admission_conserved`],
//!   [`admission::ServeStatsSnapshot::lifecycle_conserved`]).
//!
//! The open-loop [`load`] generator measures latency from *scheduled*
//! send instants (no coordinated omission) into
//! [`dtt_obs::LogHistogram`]s, feeding the `serve_throughput` bench and
//! `dtt-cli load`.
//!
//! ## Environment knobs
//!
//! | variable | effect |
//! |---|---|
//! | `DTT_SERVE_MAX_INFLIGHT` | admission-gate permits |
//! | `DTT_SERVE_QUEUE` | bounded engine-mailbox capacity |
//! | `DTT_SERVE_DEADLINE_MS` | per-request deadline, milliseconds |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
mod engine;
pub mod load;
pub mod proto;
pub mod server;

pub use admission::{Gate, ServeStats, ServeStatsSnapshot};
pub use client::Client;
pub use engine::ViewKind;
pub use load::{LoadConfig, LoadReport};
pub use proto::{Request, Response};
pub use server::{ServeConfig, Server};
