//! # dtt-serve — an overload-safe front-end over tthread-maintained state
//!
//! The paper's skip path makes tthread-maintained derived state a cache
//! that is provably fresh: a read after a join either skipped (nothing
//! changed) or observed the recomputation's commit. This crate puts a
//! minimal framed-TCP front-end on that property — client writes batch
//! into tracked stores, tthread chains (the `spreadsheet`/`pipeline`
//! workload views, plus the keyed store folded over the sheet) maintain
//! the aggregates, reads are served from the derived cells — and hardens
//! the *request lifecycle* with the same discipline PR 4's fault layer
//! applied to the tthread lifecycle:
//!
//! * **Event-driven connection path** ([`server`]): a fixed
//!   pool of event workers sweeps per-connection state machines with
//!   non-blocking I/O; frames park in a resumable
//!   [`proto::FrameDecoder`], so connections scale to thousands while OS
//!   threads stay `event_workers + 2`.
//! * **Admission control** ([`admission`]): a semaphore-style gate
//!   handing out RAII [`admission::Permit`]s (panic-safe — no leaked
//!   permits) plus a bounded engine mailbox; past either limit the
//!   client gets an explicit [`proto::Response::Shed`], never unbounded
//!   buffering.
//! * **Deadlines + bounded retry** ([`server`], [`engine`]): each
//!   admitted request waits at most `deadline` for the engine; the
//!   engine layers bounded repair retries with exponential backoff
//!   ([`dtt_core::deadline::backoff_delay`]) on top of the runtime's
//!   `commit_retry_cap`.
//! * **Keyed store** ([`ViewKind::Keyed`]): `Put {key}` /
//!   `GetKey {key}` address a logical key space folded onto the sheet
//!   grid; shard-row aggregates are tthread-maintained, so a million
//!   keys cost the same derived-state machinery as a 16-row sheet.
//! * **Graceful degradation**: past the deadline or under a wedged
//!   tthread, reads fall back to the last-committed cache (cells *and*
//!   keyed shard rows, poison-tolerant) tagged `degraded=true`;
//!   [`server::Server::shutdown`] drains — stops accepting, finishes
//!   in-flight requests, retires the workers, then stops the engine
//!   with a *blocking* mailbox send (a full mailbox can no longer
//!   swallow the shutdown command) and tears the runtime down
//!   (idempotently).
//! * **Chaos integration**: the serve-layer [`dtt_core::FaultPoint`]s
//!   (`ConnDrop`, `ClientStall`, `AcceptOverflow`) are probed through a
//!   seeded [`dtt_core::FaultProbe`] inside the event loop;
//!   `dtt-chaos` drives them with pinned seeds and asserts the
//!   conservation identities
//!   ([`admission::ServeStatsSnapshot::admission_conserved`],
//!   [`admission::ServeStatsSnapshot::lifecycle_conserved`]).
//!
//! The open-loop [`load`] generator measures latency from *scheduled*
//! send instants (no coordinated omission) into
//! [`dtt_obs::LogHistogram`]s, feeding the `serve_throughput` bench and
//! `dtt-cli load`.
//!
//! ## Environment knobs
//!
//! | variable | effect |
//! |---|---|
//! | `DTT_SERVE_MAX_INFLIGHT` | admission-gate permits |
//! | `DTT_SERVE_QUEUE` | bounded engine-mailbox capacity |
//! | `DTT_SERVE_DEADLINE_MS` | per-request deadline, milliseconds |
//! | `DTT_SERVE_WORKERS` | event workers sweeping connections |
//! | `DTT_SERVE_KEYSPACE` | logical key space of the keyed view |
//!
//! A malformed value falls back to its default and warns on stderr once
//! per process per variable (same contract as the core `DTT_*` knobs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
mod conn;
mod engine;
pub mod load;
pub mod proto;
pub mod server;

pub use admission::{Gate, Permit, ServeStats, ServeStatsSnapshot};
pub use client::Client;
pub use engine::ViewKind;
pub use load::{LoadConfig, LoadReport};
pub use proto::{FrameDecoder, Request, Response};
pub use server::{ServeConfig, Server};
