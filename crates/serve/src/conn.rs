//! Per-connection state machine for the event-driven handler loop.
//!
//! A [`Conn`] owns a non-blocking socket plus everything a request needs
//! to survive *suspension*: the resumable [`FrameDecoder`] (partial
//! frames park here — the structural fix for the PR-9 mid-frame timeout
//! desync), an explicit write buffer (partial writes park here), the
//! in-flight engine round trip with its RAII admission [`Permit`]
//! (panics and severed connections return the permit through `Drop` —
//! the fix for the permit leak), and any injected client-stall
//! deferral. A small pool of event workers sweeps thousands of these
//! machines; no OS thread ever belongs to a connection.
//!
//! Each [`Conn::poll`] makes whatever progress the socket allows and
//! returns. The lifecycle counters are recorded at the same decision
//! points as the threaded path, so both conservation identities —
//! `accepts == admits + sheds` and
//! `accepts == responses + sheds + dropped_conns` — hold verbatim, and
//! [`Conn::abort`] settles any half-decided request when a connection is
//! severed or a handler panics, so they hold even then.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::time::Instant;

use dtt_core::FaultPoint;

use crate::admission::{Gate, Permit};
use crate::engine::{read_cache, EngineCmd, Reply};
use crate::proto::{write_frame, FrameDecoder, Request, Response};
use crate::server::Shared;

/// Frames decided per poll before yielding to other connections.
const FRAMES_PER_POLL: usize = 32;

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 4096;

/// What one [`Conn::poll`] accomplished.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Polled {
    /// `false` once the connection is finished (clean close or sever);
    /// the worker drops the `Conn`.
    pub keep: bool,
    /// Whether any bytes moved or any request advanced — workers use
    /// this to decide between another sweep and a short sleep.
    pub progressed: bool,
}

/// An engine round trip in flight: the command is enqueued, the reply
/// channel and the fallback answer are parked here, and the admission
/// permit is held — returned by `Drop` on every exit path.
struct Pending {
    reply_rx: Receiver<Reply>,
    deadline: Instant,
    fallback: Fallback,
    _permit: Permit,
}

/// The degraded answer if the engine misses the deadline or stops.
enum Fallback {
    /// Write applied but not confirmed fresh.
    PutOk,
    /// Serve the last-committed cell.
    Get { query: u8 },
    /// Serve the last-committed shard-row aggregate for the key.
    GetKey { key: u64 },
}

/// One client connection's complete suspended state.
pub(crate) struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded-but-unwritten response bytes.
    out: Vec<u8>,
    out_pos: usize,
    pending: Option<Pending>,
    /// A decoded request deferred by an injected client stall.
    deferred: Option<Request>,
    stall_until: Option<Instant>,
    /// Requests counted by `on_accept` but not yet decided; settled by
    /// [`Conn::abort`] if the connection dies first.
    undecided: u32,
    peer_eof: bool,
    /// Close once the write buffer drains (malformed input was answered).
    closing: bool,
    /// Close immediately, discarding the write buffer (injected
    /// conn-drop or a transport error).
    severed: bool,
}

impl Conn {
    /// Wraps an accepted stream; switches it to non-blocking mode.
    pub(crate) fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: None,
            deferred: None,
            stall_until: None,
            undecided: 0,
            peer_eof: false,
            closing: false,
            severed: false,
        })
    }

    /// Advances the connection as far as the socket allows: flush,
    /// resolve the in-flight engine reply, read, decide buffered frames.
    /// Under `draining` no *new* frames are decided; the in-flight
    /// request still finishes (and is flushed) before the close.
    pub(crate) fn poll(&mut self, shared: &Shared, draining: bool) -> Polled {
        let mut progressed = false;

        if self.severed {
            return self.sever(shared, progressed);
        }

        // Injected client stall: the decoded request waits out its
        // deferral without holding an OS thread hostage.
        if let Some(until) = self.stall_until {
            if Instant::now() < until {
                match self.flush() {
                    Ok(p) => progressed |= p,
                    Err(_) => return self.sever(shared, true),
                }
                return Polled {
                    keep: true,
                    progressed,
                };
            }
            self.stall_until = None;
            progressed = true;
        }
        if self.pending.is_none() {
            if let Some(req) = self.deferred.take() {
                self.decide(shared, req);
                progressed = true;
            }
        }

        progressed |= self.poll_pending(shared);

        match self.flush() {
            Ok(p) => progressed |= p,
            Err(_) => return self.sever(shared, true),
        }

        // Read only while no request is in flight: the kernel socket
        // buffer back-pressures pipelining clients, so a connection's
        // memory stays bounded by one frame plus one response.
        if !self.peer_eof && !self.closing && self.pending.is_none() && self.deferred.is_none() {
            match self.fill() {
                Ok(p) => progressed |= p,
                Err(_) => return self.sever(shared, true),
            }
        }

        if !draining {
            let mut decided = 0;
            while decided < FRAMES_PER_POLL
                && !self.closing
                && !self.severed
                && self.pending.is_none()
                && self.deferred.is_none()
            {
                let payload = match self.decoder.next_frame() {
                    Ok(Some(payload)) => payload,
                    Ok(None) => break,
                    Err(_) => {
                        // Hostile length prefix: answer once, then close.
                        self.queue(Response::Err { code: 1 });
                        self.closing = true;
                        progressed = true;
                        break;
                    }
                };
                progressed = true;
                decided += 1;
                let Some(request) = Request::decode(&payload) else {
                    // Malformed payload: answer once, then desync-close.
                    self.queue(Response::Err { code: 1 });
                    self.closing = true;
                    break;
                };
                shared.stats.on_accept();
                self.undecided += 1;
                // Injected slow client: stretch the gap between decode
                // and admission by the plan's delay — as a deferral, not
                // a blocked worker.
                if shared.probe.fire(FaultPoint::ClientStall) {
                    self.stall_until = Some(Instant::now() + shared.probe.delay_duration());
                    self.deferred = Some(request);
                    break;
                }
                self.decide(shared, request);
            }
            if self.severed {
                return self.sever(shared, progressed);
            }
            match self.flush() {
                Ok(p) => progressed |= p,
                Err(_) => return self.sever(shared, true),
            }
        }

        let idle =
            self.pending.is_none() && self.deferred.is_none() && self.out_pos == self.out.len();
        if idle && (self.closing || draining || self.peer_eof) {
            return Polled {
                keep: false,
                progressed: true,
            };
        }
        Polled {
            keep: true,
            progressed,
        }
    }

    /// Settles every accepted-but-undecided request so the conservation
    /// identities survive a severed connection or a handler panic: an
    /// enqueued request is conserved as admitted-then-dropped, anything
    /// earlier in the lifecycle as shed.
    pub(crate) fn abort(&mut self, shared: &Shared) {
        if self.pending.take().is_some() {
            shared.stats.on_admit();
            shared.stats.on_dropped_conn();
            self.undecided = self.undecided.saturating_sub(1);
        }
        self.deferred = None;
        self.stall_until = None;
        while self.undecided > 0 {
            shared.stats.on_shed();
            self.undecided -= 1;
        }
        self.severed = true;
    }

    fn sever(&mut self, shared: &Shared, progressed: bool) -> Polled {
        self.abort(shared);
        Polled {
            keep: false,
            progressed,
        }
    }

    /// Decides one accepted request: shed, sever, answer inline, or
    /// enqueue to the engine and park.
    fn decide(&mut self, shared: &Shared, request: Request) {
        // Admission, decided exactly once per request: an injected queue
        // overflow, a full gate, or a saturated engine mailbox all shed
        // through the same client-visible path.
        let overflow = shared.probe.fire(FaultPoint::AcceptOverflow);
        let permit = if overflow {
            None
        } else {
            Gate::acquire(&shared.gate)
        };
        let Some(permit) = permit else {
            self.record_shed(shared);
            return;
        };
        if shared.probe.fire(FaultPoint::ConnDrop) {
            // Injected mid-batch connection drop: admitted, then severed
            // without a response; conserved via dropped_conns. The permit
            // returns via its drop at the end of this scope.
            shared.stats.on_admit();
            shared.stats.on_dropped_conn();
            self.undecided -= 1;
            self.severed = true;
            return;
        }
        match request {
            Request::Ping => self.respond(shared, Response::Pong),
            Request::Put { key, value } => {
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                let cmd = EngineCmd::Put {
                    key,
                    value,
                    reply: reply_tx,
                };
                match shared.cmd_tx.try_send(cmd) {
                    Ok(()) => self.park(shared, reply_rx, Fallback::PutOk, permit),
                    // A full mailbox is a shed — the bounded accept queue
                    // is part of admission. A stopped engine sheds writes
                    // too: the put cannot land.
                    Err(_) => self.record_shed(shared),
                }
            }
            Request::Get { query } => {
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                let cmd = EngineCmd::Get {
                    query,
                    reply: reply_tx,
                };
                match shared.cmd_tx.try_send(cmd) {
                    Ok(()) => self.park(shared, reply_rx, Fallback::Get { query }, permit),
                    Err(mpsc::TrySendError::Full(_)) => self.record_shed(shared),
                    Err(mpsc::TrySendError::Disconnected(_)) => {
                        // Engine stopped (drain race): reads degrade to
                        // last-committed state rather than erroring.
                        let resp = self.fallback_response(shared, &Fallback::Get { query });
                        self.respond(shared, resp);
                    }
                }
            }
            Request::GetKey { key } => {
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                let cmd = EngineCmd::GetKey {
                    key,
                    reply: reply_tx,
                };
                match shared.cmd_tx.try_send(cmd) {
                    Ok(()) => self.park(shared, reply_rx, Fallback::GetKey { key }, permit),
                    Err(mpsc::TrySendError::Full(_)) => self.record_shed(shared),
                    Err(mpsc::TrySendError::Disconnected(_)) => {
                        let resp = self.fallback_response(shared, &Fallback::GetKey { key });
                        self.respond(shared, resp);
                    }
                }
            }
        }
    }

    fn park(
        &mut self,
        shared: &Shared,
        reply_rx: Receiver<Reply>,
        fallback: Fallback,
        permit: Permit,
    ) {
        self.pending = Some(Pending {
            reply_rx,
            deadline: Instant::now() + shared.deadline,
            fallback,
            _permit: permit,
        });
    }

    /// Checks the in-flight engine round trip: reply, deadline, or a
    /// stopped engine. Returns whether the request resolved.
    fn poll_pending(&mut self, shared: &Shared) -> bool {
        let Some(pending) = &self.pending else {
            return false;
        };
        let response = match pending.reply_rx.try_recv() {
            Ok(Reply::Ok { degraded }) => match pending.fallback {
                Fallback::PutOk => Response::Ok { degraded },
                // A read answered with a write ack is a protocol mixup;
                // fall back to last-committed state.
                _ => self.fallback_response(shared, &pending.fallback),
            },
            Ok(Reply::Value { degraded, value }) => match pending.fallback {
                Fallback::Get { .. } | Fallback::GetKey { .. } => {
                    Response::Value { degraded, value }
                }
                // A write answered with a value: applied but unconfirmed.
                Fallback::PutOk => Response::Ok { degraded: true },
            },
            Err(TryRecvError::Empty) => {
                if Instant::now() < pending.deadline {
                    return false;
                }
                // Deadline passed: the command is enqueued (the engine
                // will still process it) but the client gets the
                // degraded answer now.
                self.fallback_response(shared, &pending.fallback)
            }
            Err(TryRecvError::Disconnected) => self.fallback_response(shared, &pending.fallback),
        };
        let pending = self.pending.take().expect("pending just observed");
        self.respond(shared, response);
        drop(pending); // returns the permit
        true
    }

    /// The degraded answer from last-committed state — poison-tolerant,
    /// so a panic elsewhere cannot take the fallback path down.
    fn fallback_response(&self, shared: &Shared, fallback: &Fallback) -> Response {
        match *fallback {
            Fallback::PutOk => Response::Ok { degraded: true },
            Fallback::Get { query } => {
                let cached = read_cache(&shared.cache);
                Response::Value {
                    degraded: true,
                    value: cached.cells[usize::from(query.min(1))],
                }
            }
            Fallback::GetKey { key } => {
                let cached = read_cache(&shared.cache);
                let value = match shared.key_map {
                    Some(map) => cached
                        .rows
                        .get(map.row_of(key))
                        .copied()
                        .unwrap_or(cached.cells[0]),
                    None => cached.cells[0],
                };
                Response::Value {
                    degraded: true,
                    value,
                }
            }
        }
    }

    fn record_shed(&mut self, shared: &Shared) {
        shared.stats.on_shed();
        self.undecided = self.undecided.saturating_sub(1);
        self.queue(Response::Shed);
    }

    fn respond(&mut self, shared: &Shared, response: Response) {
        shared.stats.on_admit();
        if matches!(
            response,
            Response::Ok { degraded: true } | Response::Value { degraded: true, .. }
        ) {
            shared.stats.on_degraded();
        }
        // Counted before the bytes reach the socket: once the server
        // commits to an answer the request is a response; a failed write
        // just closes the connection — the answer was produced, delivery
        // is the peer's loss.
        shared.stats.on_response();
        self.undecided = self.undecided.saturating_sub(1);
        self.queue(response);
    }

    /// Encodes a response frame into the write buffer (never fails —
    /// delivery happens in [`Conn::flush`]).
    fn queue(&mut self, response: Response) {
        write_frame(&mut self.out, &response.encode()).expect("Vec write is infallible");
    }

    /// Writes as much of the output buffer as the socket accepts.
    fn flush(&mut self) -> io::Result<bool> {
        let mut progressed = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(progressed)
    }

    /// Reads whatever the socket has into the frame decoder.
    fn fill(&mut self) -> io::Result<bool> {
        let mut buf = [0u8; READ_CHUNK];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    self.decoder.extend(&buf[..n]);
                    progressed = true;
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(progressed)
    }
}
