//! The front-end: accept loop, the event-driven handler pool, admission,
//! deadlines, degradation and drain-mode shutdown.
//!
//! ## Connection path
//!
//! Connections are **not** threads. The accept loop hands each accepted
//! socket to one of a small, fixed pool of *event workers* (round-robin);
//! a worker owns a set of [`crate::conn::Conn`] state machines and sweeps
//! them with non-blocking reads and writes, sleeping briefly only when no
//! connection made progress. OS thread count is `event_workers + 2`
//! (accept + engine) regardless of whether 4 or 10 000 clients are
//! connected — the PR-9 thread-per-connection path pinned both the
//! concurrency ceiling and the `JoinHandle` leak to the connection count;
//! this one pins them to the pool size.
//!
//! ## Request lifecycle
//!
//! ```text
//! decoded ──► accept (counted) ──► gate ──┬─ no permit / injected
//!                                         │  overflow / full mailbox ──► SHED
//!                                         └─ admitted (RAII permit) ──┬─ injected
//!                                                       │  conn-drop ──► DROPPED
//!                                                       ├─ engine reply ──► RESPONSE
//!                                                       └─ deadline ──► DEGRADED RESPONSE
//! ```
//!
//! Every decoded request takes exactly one of the arrows on the right —
//! that is the conservation identity
//! `accepts == responses + sheds + dropped_conns` asserted by the
//! contract tests, the chaos harness and the bench bin. A request parked
//! mid-lifecycle when its connection dies (or its handler panics) is
//! settled by [`crate::conn::Conn::abort`], so the identity holds at
//! every quiescent point, not just on sunny days.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Once};
use std::thread;
use std::time::{Duration, Instant};

use dtt_core::{Config, FaultPlan, FaultPoint, FaultProbe};
use dtt_workloads::KeyMap;

use crate::admission::{Gate, ServeStats, ServeStatsSnapshot};
use crate::conn::{Conn, Polled};
use crate::engine::{Cache, Engine, EngineCmd, EngineConfig, ViewKind};

/// Accept-loop poll period while the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Event-worker sleep when a full sweep made no progress: long enough
/// not to spin a core, short enough to stay well under request
/// deadlines.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Server construction knobs. `Default` gives a loopback server on an
/// ephemeral port with the spreadsheet view; the `DTT_SERVE_*` env knobs
/// (see [`ServeConfig::from_env`]) override the admission limits and the
/// pool/keyed-store sizing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Admission-gate permits: concurrent admitted requests.
    pub max_inflight: usize,
    /// Engine mailbox capacity (the bounded accept queue).
    pub queue_cap: usize,
    /// Per-request deadline: how long a parked request waits for the
    /// engine before answering from last-committed state.
    pub deadline: Duration,
    /// Runtime worker threads for the served view.
    pub workers: usize,
    /// Event workers sweeping connection state machines. The server's
    /// handler-side OS thread count, independent of connection count.
    pub event_workers: usize,
    /// Which workload chain backs the view.
    pub view: ViewKind,
    /// View dimensions: `(rows, cols)` for the sheet and keyed store,
    /// `(samples, buckets)` for the pipeline.
    pub dims: (usize, usize),
    /// Logical key space for [`ViewKind::Keyed`]: `Put`/`GetKey` keys are
    /// folded from this space onto the `dims` grid.
    pub key_space: u64,
    /// Fault plan installed into the *runtime* (core points: body
    /// panics, retriggers, ...), for wedge scenarios.
    pub runtime_faults: Option<FaultPlan>,
    /// Fault plan armed into the *serve* probe (conn-drop, client-stall,
    /// accept-overflow).
    pub serve_faults: Option<FaultPlan>,
    /// Commit backoff for the runtime's detached retry loop.
    pub commit_backoff: Option<Duration>,
    /// Body deadline for the runtime (wedge-by-timeout scenarios).
    pub body_deadline: Option<Duration>,
    /// Repair attempts per refresh before the engine degrades.
    pub repair_cap: u32,
    /// Base backoff between repair attempts.
    pub repair_backoff: Duration,
    /// Timeout for the engine's runtime teardown at shutdown.
    pub teardown_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 64,
            queue_cap: 128,
            deadline: Duration::from_millis(100),
            workers: 1,
            event_workers: 2,
            view: ViewKind::Sheet,
            dims: (16, 32),
            key_space: 1 << 20,
            runtime_faults: None,
            serve_faults: None,
            commit_backoff: Some(Duration::from_micros(50)),
            body_deadline: None,
            repair_cap: 3,
            repair_backoff: Duration::from_millis(1),
            teardown_timeout: Duration::from_secs(10),
        }
    }
}

impl ServeConfig {
    /// Defaults with the `DTT_SERVE_MAX_INFLIGHT`, `DTT_SERVE_QUEUE`,
    /// `DTT_SERVE_DEADLINE_MS`, `DTT_SERVE_WORKERS` and
    /// `DTT_SERVE_KEYSPACE` environment knobs applied. A malformed value
    /// falls back to the default — and warns on stderr once per process
    /// per variable, because a typo'd knob that silently vanishes is how
    /// a "tuned" deployment runs untuned for a month.
    pub fn from_env() -> Self {
        static WARN_INFLIGHT: Once = Once::new();
        static WARN_QUEUE: Once = Once::new();
        static WARN_DEADLINE: Once = Once::new();
        static WARN_WORKERS: Once = Once::new();
        static WARN_KEYSPACE: Once = Once::new();
        let mut cfg = ServeConfig::default();
        if let Some(v) = parse_env_usize("DTT_SERVE_MAX_INFLIGHT", &WARN_INFLIGHT) {
            cfg.max_inflight = v;
        }
        if let Some(v) = parse_env_usize("DTT_SERVE_QUEUE", &WARN_QUEUE) {
            cfg.queue_cap = v.max(1);
        }
        if let Some(v) = parse_env_usize("DTT_SERVE_DEADLINE_MS", &WARN_DEADLINE) {
            cfg.deadline = Duration::from_millis(v as u64);
        }
        if let Some(v) = parse_env_usize("DTT_SERVE_WORKERS", &WARN_WORKERS) {
            cfg.event_workers = v.max(1);
        }
        if let Some(v) = parse_env_usize("DTT_SERVE_KEYSPACE", &WARN_KEYSPACE) {
            cfg.key_space = (v as u64).max(1);
        }
        cfg
    }

    fn runtime_config(&self) -> Config {
        let mut cfg = Config::default().with_workers(self.workers);
        if let Some(base) = self.commit_backoff {
            cfg = cfg.with_commit_backoff(base);
        }
        if let Some(limit) = self.body_deadline {
            cfg = cfg.with_body_deadline(limit);
        }
        if let Some(plan) = &self.runtime_faults {
            cfg = cfg.with_fault_plan(plan.clone());
        }
        cfg
    }
}

/// Parses an env knob, warning **once per process per variable** when the
/// value is set but malformed (the same contract as the core
/// `DTT_*` knobs): unset → `None` silently, malformed → `None` with a
/// stderr warning, valid → `Some`.
fn parse_env_usize(var: &str, warn: &'static Once) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn.call_once(|| {
                eprintln!(
                    "dtt-serve: ignoring malformed {var}={raw:?} (expected a non-negative integer); using default"
                );
            });
            None
        }
    }
}

/// State shared between the accept loop and the event workers.
pub(crate) struct Shared {
    pub(crate) stats: ServeStats,
    pub(crate) gate: Arc<Gate>,
    pub(crate) probe: FaultProbe,
    pub(crate) cache: Cache,
    /// Key → slot mapping of the keyed view (`None` elsewhere); used for
    /// degraded keyed reads from the cached shard rows.
    pub(crate) key_map: Option<KeyMap>,
    pub(crate) cmd_tx: SyncSender<EngineCmd>,
    pub(crate) draining: AtomicBool,
    pub(crate) active_conns: AtomicUsize,
    pub(crate) deadline: Duration,
}

/// A running front-end. Dropping without [`Server::shutdown`] aborts the
/// accept loop but detaches the engine; call `shutdown` for the graceful
/// path the tests pin.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<thread::JoinHandle<()>>,
    worker_handles: Vec<thread::JoinHandle<()>>,
    engine_handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the engine, the event-worker pool and the accept
    /// loop, and returns.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (cmd_tx, cmd_rx) = mpsc::sync_channel(cfg.queue_cap.max(1));
        let engine_cfg = EngineConfig {
            kind: cfg.view,
            dims: cfg.dims,
            key_space: cfg.key_space.max(1),
            runtime: cfg.runtime_config(),
            repair_cap: cfg.repair_cap,
            repair_backoff: cfg.repair_backoff,
            seed: cfg.serve_faults.as_ref().map_or(1, |p| p.seed),
        };
        let (cache, key_map, engine_handle) =
            Engine::spawn(engine_cfg, cmd_rx, cfg.teardown_timeout);

        let probe = match &cfg.serve_faults {
            Some(plan) => FaultProbe::from_plan(plan),
            None => FaultProbe::disarmed(),
        };
        let shared = Arc::new(Shared {
            stats: ServeStats::new(),
            gate: Arc::new(Gate::new(cfg.max_inflight)),
            probe,
            cache,
            key_map,
            cmd_tx,
            draining: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            deadline: cfg.deadline,
        });

        let pool = cfg.event_workers.max(1);
        let mut worker_handles = Vec::with_capacity(pool);
        let mut registrations = Vec::with_capacity(pool);
        for i in 0..pool {
            let (reg_tx, reg_rx) = mpsc::channel::<TcpStream>();
            registrations.push(reg_tx);
            let worker_shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("dtt-serve-ev{i}"))
                .spawn(move || event_worker(reg_rx, worker_shared))
                .expect("spawn event worker");
            worker_handles.push(handle);
        }

        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("dtt-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, registrations))
            .expect("spawn accept thread");

        Ok(Server {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            worker_handles,
            engine_handle: Some(engine_handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the request-lifecycle counters.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Connections currently registered with the event workers. Bounded
    /// by client behaviour, not by OS threads — the churn test drives
    /// 10 000 connections through and asserts this returns to zero while
    /// the thread count never moves.
    pub fn active_conn_count(&self) -> usize {
        self.shared.active_conns.load(Ordering::SeqCst)
    }

    /// Serve-layer fault injections so far, indexed by
    /// [`FaultPoint`] discriminant.
    pub fn fault_injections(&self) -> [u64; FaultPoint::COUNT] {
        self.shared.probe.counts()
    }

    /// Drain-mode shutdown: stop accepting, let in-flight requests
    /// finish, retire the event workers, then stop the engine and tear
    /// the runtime down. **Idempotent** — a second call finds everything
    /// already joined and returns `Ok` immediately.
    ///
    /// The engine stop is a *blocking* mailbox send: the PR-9 path used
    /// `try_send` and silently dropped the shutdown command whenever the
    /// mailbox was full at drain, leaving `join` waiting on an engine
    /// that would never be told to exit. The mailbox is bounded and the
    /// engine always drains it, so the blocking send is itself bounded.
    ///
    /// # Errors
    ///
    /// `ErrorKind::TimedOut` if connections are still active at the
    /// deadline; the listener stays closed and a retry can finish the
    /// join later.
    pub fn shutdown(&mut self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            // Joining the accept loop drops the registration senders;
            // each worker exits once its channel disconnects and its
            // connection set drains.
            let _ = handle.join();
        }
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "connections still active at drain deadline",
                ));
            }
            thread::sleep(Duration::from_millis(1));
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.engine_handle.take() {
            let _ = self.shared.cmd_tx.send(EngineCmd::Shutdown);
            let _ = handle.join();
        }
        Ok(())
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    registrations: Vec<mpsc::Sender<TcpStream>>,
) {
    let mut next = 0usize;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let slot = next % registrations.len();
                next = next.wrapping_add(1);
                if registrations[slot].send(stream).is_err() {
                    // Worker gone (only happens past drain); undo the
                    // registration and stop accepting.
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => return,
        }
    }
}

/// One event worker: drains its registration channel, sweeps its
/// connection state machines, and sleeps briefly only when a full sweep
/// moved nothing. A panicking connection poll is caught, settled through
/// [`Conn::abort`] (counters conserved, permit returned by RAII) and the
/// connection dropped — one poisoned request cannot take down the
/// worker's other connections.
fn event_worker(reg_rx: Receiver<TcpStream>, shared: Arc<Shared>) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let mut disconnected = false;
        loop {
            match reg_rx.try_recv() {
                Ok(stream) => match Conn::new(stream) {
                    Ok(conn) => conns.push(conn),
                    Err(_) => {
                        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                    }
                },
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let draining = shared.draining.load(Ordering::SeqCst);
        let mut progressed = false;
        conns.retain_mut(|conn| {
            let polled = match catch_unwind(AssertUnwindSafe(|| conn.poll(&shared, draining))) {
                Ok(polled) => polled,
                Err(_) => {
                    conn.abort(&shared);
                    Polled {
                        keep: false,
                        progressed: true,
                    }
                }
            };
            progressed |= polled.progressed;
            if !polled.keep {
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            }
            polled.keep
        });
        if disconnected && conns.is_empty() {
            return;
        }
        if !progressed {
            thread::sleep(IDLE_SLEEP);
        }
    }
}
