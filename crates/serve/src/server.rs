//! The front-end: accept loop, per-connection handlers, admission,
//! deadlines, degradation and drain-mode shutdown.
//!
//! ## Request lifecycle
//!
//! ```text
//! decoded ──► accept (counted) ──► gate ──┬─ no permit / injected
//!                                         │  overflow ──► SHED
//!                                         └─ admitted ──┬─ injected
//!                                                       │  conn-drop ──► DROPPED
//!                                                       ├─ engine reply ──► RESPONSE
//!                                                       └─ deadline ──► DEGRADED RESPONSE
//! ```
//!
//! Every decoded request takes exactly one of the arrows on the right —
//! that is the conservation identity
//! `accepts == responses + sheds + dropped_conns` asserted by the
//! contract tests, the chaos harness and the bench bin.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dtt_core::{Config, FaultPlan, FaultPoint, FaultProbe};

use crate::admission::{Gate, ServeStats, ServeStatsSnapshot};
use crate::engine::{Cache, Engine, EngineCmd, EngineConfig, Reply, ViewKind};
use crate::proto::{read_frame, write_frame, Request, Response};

/// How long a handler blocks on a socket read before re-checking the
/// drain flag. Bounds the shutdown latency of an idle connection.
const READ_POLL: Duration = Duration::from_millis(25);

/// Accept-loop poll period while the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server construction knobs. `Default` gives a loopback server on an
/// ephemeral port with the spreadsheet view; the `DTT_SERVE_*` env knobs
/// (see [`ServeConfig::from_env`]) override the admission limits.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Admission-gate permits: concurrent admitted requests.
    pub max_inflight: usize,
    /// Engine mailbox capacity (the bounded accept queue).
    pub queue_cap: usize,
    /// Per-request deadline: how long a handler waits for the engine
    /// before answering from last-committed state.
    pub deadline: Duration,
    /// Runtime worker threads for the served view.
    pub workers: usize,
    /// Which workload chain backs the view.
    pub view: ViewKind,
    /// View dimensions: `(rows, cols)` for the sheet, `(samples,
    /// buckets)` for the pipeline.
    pub dims: (usize, usize),
    /// Fault plan installed into the *runtime* (core points: body
    /// panics, retriggers, ...), for wedge scenarios.
    pub runtime_faults: Option<FaultPlan>,
    /// Fault plan armed into the *serve* probe (conn-drop, client-stall,
    /// accept-overflow).
    pub serve_faults: Option<FaultPlan>,
    /// Commit backoff for the runtime's detached retry loop.
    pub commit_backoff: Option<Duration>,
    /// Body deadline for the runtime (wedge-by-timeout scenarios).
    pub body_deadline: Option<Duration>,
    /// Repair attempts per refresh before the engine degrades.
    pub repair_cap: u32,
    /// Base backoff between repair attempts.
    pub repair_backoff: Duration,
    /// Timeout for the engine's runtime teardown at shutdown.
    pub teardown_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 64,
            queue_cap: 128,
            deadline: Duration::from_millis(100),
            workers: 1,
            view: ViewKind::Sheet,
            dims: (16, 32),
            runtime_faults: None,
            serve_faults: None,
            commit_backoff: Some(Duration::from_micros(50)),
            body_deadline: None,
            repair_cap: 3,
            repair_backoff: Duration::from_millis(1),
            teardown_timeout: Duration::from_secs(10),
        }
    }
}

impl ServeConfig {
    /// Defaults with the `DTT_SERVE_MAX_INFLIGHT`, `DTT_SERVE_QUEUE` and
    /// `DTT_SERVE_DEADLINE_MS` environment knobs applied. Malformed
    /// values fall back to the defaults.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(v) = parse_env_usize("DTT_SERVE_MAX_INFLIGHT") {
            cfg.max_inflight = v;
        }
        if let Some(v) = parse_env_usize("DTT_SERVE_QUEUE") {
            cfg.queue_cap = v.max(1);
        }
        if let Some(v) = parse_env_usize("DTT_SERVE_DEADLINE_MS") {
            cfg.deadline = Duration::from_millis(v as u64);
        }
        cfg
    }

    fn runtime_config(&self) -> Config {
        let mut cfg = Config::default().with_workers(self.workers);
        if let Some(base) = self.commit_backoff {
            cfg = cfg.with_commit_backoff(base);
        }
        if let Some(limit) = self.body_deadline {
            cfg = cfg.with_body_deadline(limit);
        }
        if let Some(plan) = &self.runtime_faults {
            cfg = cfg.with_fault_plan(plan.clone());
        }
        cfg
    }
}

fn parse_env_usize(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// State shared between the accept loop and every handler thread.
struct Shared {
    stats: ServeStats,
    gate: Gate,
    probe: FaultProbe,
    cache: Cache,
    cmd_tx: SyncSender<EngineCmd>,
    draining: AtomicBool,
    active_conns: AtomicUsize,
    deadline: Duration,
}

/// A running front-end. Dropping without [`Server::shutdown`] aborts the
/// accept loop but detaches the engine; call `shutdown` for the graceful
/// path the tests pin.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<thread::JoinHandle<()>>,
    engine_handle: Option<thread::JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the engine and the accept loop, and returns.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (cmd_tx, cmd_rx) = mpsc::sync_channel(cfg.queue_cap.max(1));
        let engine_cfg = EngineConfig {
            kind: cfg.view,
            dims: cfg.dims,
            runtime: cfg.runtime_config(),
            repair_cap: cfg.repair_cap,
            repair_backoff: cfg.repair_backoff,
            seed: cfg.serve_faults.as_ref().map_or(1, |p| p.seed),
        };
        let (cache, engine_handle) = Engine::spawn(engine_cfg, cmd_rx, cfg.teardown_timeout);

        let probe = match &cfg.serve_faults {
            Some(plan) => FaultProbe::from_plan(plan),
            None => FaultProbe::disarmed(),
        };
        let shared = Arc::new(Shared {
            stats: ServeStats::new(),
            gate: Gate::new(cfg.max_inflight),
            probe,
            cache,
            cmd_tx,
            draining: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            deadline: cfg.deadline,
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conn_handles);
        let accept_handle = thread::Builder::new()
            .name("dtt-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_conns))
            .expect("spawn accept thread");

        Ok(Server {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            engine_handle: Some(engine_handle),
            conn_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the request-lifecycle counters.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Serve-layer fault injections so far, indexed by
    /// [`FaultPoint`] discriminant.
    pub fn fault_injections(&self) -> [u64; FaultPoint::COUNT] {
        self.shared.probe.counts()
    }

    /// Drain-mode shutdown: stop accepting, let in-flight connections
    /// finish their current request, then stop the engine and tear the
    /// runtime down. **Idempotent** — a second call finds everything
    /// already joined and returns `Ok` immediately.
    ///
    /// # Errors
    ///
    /// `ErrorKind::TimedOut` if connections are still active at the
    /// deadline; the listener stays closed and a retry can finish the
    /// join later.
    pub fn shutdown(&mut self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "connections still active at drain deadline",
                ));
            }
            thread::sleep(Duration::from_millis(1));
        }
        let handles: Vec<_> = {
            let mut guard = self.conn_handles.lock().expect("conn handle lock");
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(handle) = self.engine_handle.take() {
            let _ = self.shared.cmd_tx.try_send(EngineCmd::Shutdown);
            let _ = handle.join();
        }
        Ok(())
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name("dtt-serve-conn".into())
                    .spawn(move || {
                        handle_conn(stream, &conn_shared);
                        conn_shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection handler");
                conn_handles.lock().expect("conn handle lock").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => return,
        }
    }
}

/// Per-request lifecycle decision; see the module diagram.
enum Decision {
    /// Admission refused (full gate, full mailbox, or injected
    /// overflow): answer `Shed`.
    Shed,
    /// Admitted and answered.
    Respond(Response),
    /// Admitted, then the connection was severed without a response.
    DropConn,
}

fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let Some(request) = Request::decode(&payload) else {
            // Malformed payload: answer once, then desync-close.
            let _ = write_frame(&mut stream, &Response::Err { code: 1 }.encode());
            return;
        };
        shared.stats.on_accept();

        // Injected slow client: stretch the gap between decode and
        // admission; the read-timeout poll (not a wedge) bounds real
        // stalls, this bounds injected ones by the plan's delay.
        if shared.probe.fire(FaultPoint::ClientStall) {
            shared.probe.delay();
        }

        // Admission, decided exactly once per request: an injected queue
        // overflow, a full gate, or a saturated engine mailbox all shed
        // through the same client-visible path.
        let overflow = shared.probe.fire(FaultPoint::AcceptOverflow);
        let decision = if overflow || !shared.gate.try_acquire() {
            Decision::Shed
        } else {
            let decision = gated_request(shared, request);
            shared.gate.release();
            decision
        };
        match decision {
            Decision::Shed => {
                shared.stats.on_shed();
                if write_frame(&mut stream, &Response::Shed.encode()).is_err() {
                    return;
                }
            }
            Decision::DropConn => {
                // Injected mid-batch connection drop: the request was
                // admitted, then its connection severed without a
                // response; conserved via dropped_conns.
                shared.stats.on_admit();
                shared.stats.on_dropped_conn();
                return;
            }
            Decision::Respond(response) => {
                shared.stats.on_admit();
                let degraded = matches!(
                    response,
                    Response::Ok { degraded: true } | Response::Value { degraded: true, .. }
                );
                if degraded {
                    shared.stats.on_degraded();
                }
                // Counted before the write: once the server commits to an
                // answer the request is a response, and the client can
                // observe it (and a test can read the counters) before
                // this thread runs again. A failed write just closes the
                // connection — the answer was produced, delivery is the
                // peer's loss.
                shared.stats.on_response();
                if write_frame(&mut stream, &response.encode()).is_err() {
                    return;
                }
            }
        }
        if shared.draining.load(Ordering::SeqCst) {
            return; // in-flight request finished; close under drain
        }
    }
}

/// Runs one request that holds a gate permit to its decision. A full
/// engine mailbox is a [`Decision::Shed`] — the bounded accept queue is
/// part of admission, so the request has *not* been admitted until its
/// command is enqueued (or it needs no engine round trip).
fn gated_request(shared: &Shared, request: Request) -> Decision {
    if shared.probe.fire(FaultPoint::ConnDrop) {
        return Decision::DropConn;
    }
    match request {
        Request::Ping => Decision::Respond(Response::Pong),
        Request::Put { key, value } => {
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            let cmd = EngineCmd::Put {
                key,
                value,
                reply: reply_tx,
            };
            match shared.cmd_tx.try_send(cmd) {
                Ok(()) => match reply_rx.recv_timeout(shared.deadline) {
                    Ok(Reply::Ok { degraded }) => Decision::Respond(Response::Ok { degraded }),
                    Ok(Reply::Value { .. }) | Err(RecvTimeoutError::Timeout) => {
                        // Deadline passed (or a protocol mixup): the write
                        // is applied but not confirmed fresh.
                        Decision::Respond(Response::Ok { degraded: true })
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        // Engine stopped mid-request (drain race): the
                        // write may or may not land; answer degraded.
                        Decision::Respond(Response::Ok { degraded: true })
                    }
                },
                Err(TrySendError::Full(_)) => Decision::Shed,
                Err(TrySendError::Disconnected(_)) => Decision::Shed,
            }
        }
        Request::Get { query } => {
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            let cmd = EngineCmd::Get {
                query,
                reply: reply_tx,
            };
            let fallback = |shared: &Shared| {
                // Deadline or a stopped engine: serve the last-committed
                // cell, tagged so the client knows freshness was not
                // confirmed. Graceful degradation, not an error.
                let cells = *shared.cache.lock().expect("cache lock");
                Decision::Respond(Response::Value {
                    degraded: true,
                    value: cells[usize::from(query.min(1))],
                })
            };
            match shared.cmd_tx.try_send(cmd) {
                Ok(()) => match reply_rx.recv_timeout(shared.deadline) {
                    Ok(Reply::Value { degraded, value }) => {
                        Decision::Respond(Response::Value { degraded, value })
                    }
                    Ok(Reply::Ok { .. }) => fallback(shared),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                        fallback(shared)
                    }
                },
                Err(TrySendError::Full(_)) => Decision::Shed,
                Err(TrySendError::Disconnected(_)) => fallback(shared),
            }
        }
    }
}
