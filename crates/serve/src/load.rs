//! The open-loop load generator.
//!
//! Closed-loop clients (send, wait, send) self-throttle under overload
//! and hide latency collapse — the coordinated-omission trap. This
//! generator is *open-loop*: every request has a scheduled send instant
//! derived from the target rate alone, and latency is measured from the
//! **scheduled** instant to the response, so time a request spends
//! queued behind a slow server counts against the server. Latencies
//! land in the obs crate's constant-space log2 histograms
//! ([`dtt_obs::LogHistogram`]), which is where the bench's p50/p99 rows
//! come from.

use std::io;
use std::thread;
use std::time::{Duration, Instant};

use dtt_obs::LogHistogram;

use crate::client::Client;
use crate::proto::{Request, Response};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections; the target rate is split evenly.
    pub conns: usize,
    /// Total target request rate, requests/second.
    pub rate: u64,
    /// Run length.
    pub duration: Duration,
    /// Fraction of requests that are writes (the rest are reads), in
    /// tenths: `7` means 70% writes.
    pub write_tenths: u32,
    /// Key space for generated writes (and keyed reads).
    pub key_space: u64,
    /// Keyed-store mode: reads become `GetKey { key }` over `key_space`
    /// (shard-row aggregates) instead of `Get { query }` (global cells).
    pub keyed: bool,
    /// Mix/schedule seed.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:0".to_string(),
            conns: 4,
            rate: 2_000,
            duration: Duration::from_secs(1),
            write_tenths: 7,
            key_space: 512,
            keyed: false,
            seed: 0xD77_5E12,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Non-degraded OK/Value/Pong responses.
    pub ok: u64,
    /// `Shed` responses.
    pub shed: u64,
    /// Degraded (last-committed) responses.
    pub degraded: u64,
    /// Connections dropped by the server mid-request (reconnected).
    pub dropped: u64,
    /// Other I/O errors.
    pub errors: u64,
    /// Latency from scheduled send to response, nanoseconds.
    pub latency: LogHistogram,
    /// Wall-clock run length.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Latency quantile in nanoseconds (from the log2 histogram's
    /// bucket upper bounds).
    pub fn latency_ns(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Responses (including sheds) per second — how fast the server
    /// *answered*, whatever the answer was.
    pub fn response_throughput(&self) -> f64 {
        let answered = self.ok + self.shed + self.degraded;
        answered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of requests answered non-degraded.
    pub fn goodput_fraction(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.ok as f64 / self.sent as f64
    }
}

/// SplitMix64, for deterministic per-thread schedules.
fn mix(state: &mut u64) -> u64 {
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    *state = state.wrapping_add(GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the load and aggregates per-connection results. Each connection
/// thread keeps its own histogram; they merge (log2 buckets are exactly
/// mergeable) into the report.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let conns = cfg.conns.max(1);
    let per_conn_interval =
        Duration::from_nanos((1_000_000_000u128 * conns as u128 / cfg.rate.max(1) as u128) as u64);
    let start = Instant::now();

    let mut handles = Vec::with_capacity(conns);
    for t in 0..conns {
        let addr = cfg.addr.clone();
        let duration = cfg.duration;
        let write_tenths = cfg.write_tenths;
        let key_space = cfg.key_space.max(1);
        let keyed = cfg.keyed;
        let mut rng = cfg.seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        handles.push(thread::spawn(move || -> io::Result<LoadThread> {
            let mut out = LoadThread::default();
            let mut client = Some(Client::connect(&addr)?);
            let mut i: u32 = 0;
            loop {
                let scheduled = start + per_conn_interval * i;
                i += 1;
                if scheduled.duration_since(start) >= duration {
                    break;
                }
                let now = Instant::now();
                if scheduled > now {
                    thread::sleep(scheduled - now);
                }
                let request = if (mix(&mut rng) % 10) < u64::from(write_tenths) {
                    Request::Put {
                        key: mix(&mut rng) % key_space,
                        value: (mix(&mut rng) % 1_000) as i64,
                    }
                } else if keyed {
                    Request::GetKey {
                        key: mix(&mut rng) % key_space,
                    }
                } else {
                    Request::Get {
                        query: (mix(&mut rng) % 2) as u8,
                    }
                };
                let c = match client.as_mut() {
                    Some(c) => c,
                    None => match Client::connect(&addr) {
                        Ok(c) => client.insert(c),
                        Err(_) => {
                            out.errors += 1;
                            continue;
                        }
                    },
                };
                out.sent += 1;
                match c.request(request) {
                    Ok(resp) => {
                        let lat = scheduled.elapsed();
                        out.latency
                            .record(u64::try_from(lat.as_nanos()).unwrap_or(u64::MAX));
                        match resp {
                            Response::Shed => out.shed += 1,
                            Response::Ok { degraded: true }
                            | Response::Value { degraded: true, .. } => out.degraded += 1,
                            Response::Pong
                            | Response::Ok { degraded: false }
                            | Response::Value {
                                degraded: false, ..
                            } => out.ok += 1,
                            Response::Err { .. } => out.errors += 1,
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                        // Server dropped the connection mid-request (the
                        // conn-drop fault); reconnect for the next one.
                        out.dropped += 1;
                        client = None;
                    }
                    Err(_) => {
                        out.errors += 1;
                        client = None;
                    }
                }
            }
            Ok(out)
        }));
    }

    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        shed: 0,
        degraded: 0,
        dropped: 0,
        errors: 0,
        latency: LogHistogram::new(),
        elapsed: Duration::ZERO,
    };
    for handle in handles {
        let t = handle
            .join()
            .map_err(|_| io::Error::other("load thread panicked"))??;
        report.sent += t.sent;
        report.ok += t.ok;
        report.shed += t.shed;
        report.degraded += t.degraded;
        report.dropped += t.dropped;
        report.errors += t.errors;
        report.latency.merge(&t.latency);
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

#[derive(Debug, Default)]
struct LoadThread {
    sent: u64,
    ok: u64,
    shed: u64,
    degraded: u64,
    dropped: u64,
    errors: u64,
    latency: LogHistogram,
}
