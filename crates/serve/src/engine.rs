//! The engine: a single actor thread that owns the served view's
//! [`dtt_core::Runtime`] and applies client batches to it.
//!
//! Handler workers never touch the runtime. They enqueue commands on a
//! *bounded* mailbox and park the request in their connection's state
//! machine until the per-request reply channel answers (or the deadline
//! passes); the engine drains the mailbox in batches — consecutive
//! keyed writes are commutative, so they coalesce into one tracked
//! region and one refresh — and answers every staged command.
//!
//! Degradation is the engine's second job. A refresh can fail: a tthread
//! poisoned by a fault, or timed out against the body deadline. The
//! engine repairs (clear + re-dirty) with bounded retries and
//! exponential backoff (the same [`dtt_core::deadline::backoff_delay`]
//! curve the commit path uses); if the wedge survives the budget, the
//! engine marks itself degraded and keeps answering from the
//! last-committed cache instead of erroring. A later successful refresh
//! clears the flag. Cache access is poison-tolerant everywhere
//! ([`read_cache`]): a panic that poisons the mutex must degrade reads,
//! not take the fallback path down with it.

use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use dtt_core::deadline::backoff_delay;
use dtt_core::{Config, Error, TthreadId};
use dtt_workloads::{KeyMap, ServedKeyed, ServedPipeline, ServedSheet};

/// Which workload chain backs the served view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Spreadsheet chain: grid → row SUMs → TOTAL → AVG. Query `0` reads
    /// the total, `1` the average.
    Sheet,
    /// Pipeline chain: samples → CLAMP → BUCKET → PEAK. Every query reads
    /// the peak.
    Pipeline,
    /// Keyed store: a logical key space folded onto the sheet grid;
    /// `Get {key}` reads the key's shard-row aggregate.
    Keyed,
}

/// The last-committed state the front-end can serve even when the
/// runtime is wedged: the two global cells plus (keyed view only) the
/// per-shard-row aggregates. Updated by the engine after every
/// confirmed-fresh refresh.
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheState {
    /// Global derived cells (total/avg or peak/peak).
    pub cells: [i64; 2],
    /// Per-shard-row aggregates (empty on non-keyed views).
    pub rows: Vec<i64>,
}

/// Shared last-committed cache; lock poisoning is survivable by design.
pub(crate) type Cache = Arc<Mutex<CacheState>>;

/// Poison-tolerant cache read: a panic that poisoned the mutex left the
/// state at whatever the last complete write was — still the best
/// available degraded answer, so take it instead of propagating the
/// panic (the PR-9 `expect("cache lock")` turned one poisoned handler
/// into a permanently burned permit *and* a crash on every fallback).
pub(crate) fn read_cache(cache: &Cache) -> CacheState {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Poison-tolerant cache write (engine side).
fn write_cache(cache: &Cache, state: CacheState) {
    *cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = state;
}

/// Upper bound on commands coalesced into one engine iteration.
const BATCH_CAP: usize = 64;

/// A command from a handler worker.
pub(crate) enum EngineCmd {
    Put {
        key: u64,
        value: i64,
        reply: SyncSender<Reply>,
    },
    Get {
        query: u8,
        reply: SyncSender<Reply>,
    },
    GetKey {
        key: u64,
        reply: SyncSender<Reply>,
    },
    Shutdown,
}

/// The engine's answer; the handler encodes it into a wire response.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Reply {
    Ok { degraded: bool },
    Value { degraded: bool, value: i64 },
}

/// What a staged read wants, normalized across views.
enum GetWhat {
    /// Global cell by selector (`0`/`1`).
    Cell(u8),
    /// Shard-row aggregate by logical key (keyed view; other views
    /// answer cell 0).
    Row(u64),
}

/// One of the served views behind a common verb set.
enum View {
    Sheet(ServedSheet),
    Pipeline(ServedPipeline),
    Keyed(ServedKeyed),
}

impl View {
    fn build(kind: ViewKind, cfg: Config, dims: (usize, usize), key_space: u64) -> View {
        match kind {
            ViewKind::Sheet => View::Sheet(ServedSheet::build(cfg, dims.0, dims.1)),
            ViewKind::Pipeline => View::Pipeline(ServedPipeline::build(cfg, dims.0, dims.1)),
            ViewKind::Keyed => View::Keyed(ServedKeyed::build(cfg, dims.0, dims.1, key_space)),
        }
    }

    /// The keyed view's key → slot mapping; `None` elsewhere.
    fn key_map(&self) -> Option<KeyMap> {
        match self {
            View::Keyed(k) => Some(k.key_map()),
            _ => None,
        }
    }

    fn apply(&mut self, writes: &[(u64, i64)]) {
        match self {
            View::Sheet(s) => {
                let (_, cols) = s.dims();
                let mapped: Vec<(usize, usize, i64)> = writes
                    .iter()
                    .map(|&(k, v)| ((k as usize) / cols, (k as usize) % cols, v))
                    .collect();
                s.apply(&mapped);
            }
            View::Pipeline(p) => {
                let mapped: Vec<(usize, i64)> =
                    writes.iter().map(|&(k, v)| (k as usize, v)).collect();
                p.apply(&mapped);
            }
            View::Keyed(k) => k.apply(writes),
        }
    }

    fn refresh(&mut self) -> dtt_core::Result<()> {
        match self {
            View::Sheet(s) => s.refresh(),
            View::Pipeline(p) => p.refresh(),
            View::Keyed(k) => k.refresh(),
        }
    }

    /// Reads both servable global aggregates (the cache's cell half).
    fn cells(&mut self) -> [i64; 2] {
        match self {
            View::Sheet(s) => {
                let v = s.read();
                [v.total, v.avg]
            }
            View::Pipeline(p) => {
                let v = p.read();
                [v.peak, v.peak]
            }
            View::Keyed(k) => {
                let v = k.read();
                [v.total, v.avg]
            }
        }
    }

    /// Reads the shard-row aggregate for `key` (keyed view); other views
    /// answer their primary cell.
    fn key_row(&mut self, key: u64) -> i64 {
        match self {
            View::Keyed(k) => k.read_key_row(key),
            other => other.cells()[0],
        }
    }

    /// Snapshot of the per-shard-row aggregates (keyed view only).
    fn rows_snapshot(&mut self) -> Vec<i64> {
        match self {
            View::Keyed(k) => k.rows_snapshot(),
            _ => Vec::new(),
        }
    }

    fn repair(&mut self, id: TthreadId, err: &Error) {
        let rt = match self {
            View::Sheet(s) => s.runtime_mut(),
            View::Pipeline(p) => p.runtime_mut(),
            View::Keyed(k) => k.runtime_mut(),
        };
        match err {
            Error::TthreadPoisoned(_) => {
                let _ = rt.clear_poison(id);
            }
            Error::TthreadTimedOut(_) => {
                let _ = rt.clear_timeout(id);
            }
            _ => {}
        }
        // Re-dirty so the next refresh actually re-runs the cleared
        // tthread instead of skipping over stale state.
        let _ = rt.mark_dirty(id);
    }

    fn teardown(self, timeout: Duration) {
        let mut rt = match self {
            View::Sheet(s) => s.into_runtime(),
            View::Pipeline(p) => p.into_runtime(),
            View::Keyed(k) => k.into_runtime(),
        };
        // Drain first (idempotent with any earlier defensive drain), then
        // the consuming shutdown. A straggler past the deadline is
        // detached, not waited on forever.
        let _ = rt.drain(timeout);
        let _ = rt.shutdown(timeout);
    }
}

/// Engine tuning, split from the server config so tests can drive the
/// engine directly.
pub(crate) struct EngineConfig {
    pub kind: ViewKind,
    pub dims: (usize, usize),
    /// Logical key space for [`ViewKind::Keyed`] (ignored elsewhere).
    pub key_space: u64,
    pub runtime: Config,
    /// Repair attempts per refresh before declaring the view degraded.
    pub repair_cap: u32,
    /// Base backoff between repair attempts.
    pub repair_backoff: Duration,
    /// Jitter seed for the repair backoff.
    pub seed: u64,
}

pub(crate) struct Engine {
    view: View,
    cache: Cache,
    degraded: bool,
    repair_cap: u32,
    repair_backoff: Duration,
    rng: u64,
}

impl Engine {
    /// Spawns the engine thread; returns the shared cache, the keyed
    /// view's key map (handlers need it to pick a cached row for
    /// degraded keyed reads) and the join handle. Commands arrive on
    /// `rx`; the thread exits on [`EngineCmd::Shutdown`] or when every
    /// sender is gone, tearing the runtime down within
    /// `teardown_timeout`.
    pub(crate) fn spawn(
        cfg: EngineConfig,
        rx: Receiver<EngineCmd>,
        teardown_timeout: Duration,
    ) -> (Cache, Option<KeyMap>, thread::JoinHandle<()>) {
        let mut engine = Engine {
            view: View::build(cfg.kind, cfg.runtime, cfg.dims, cfg.key_space),
            cache: Arc::new(Mutex::new(CacheState::default())),
            degraded: false,
            repair_cap: cfg.repair_cap,
            repair_backoff: cfg.repair_backoff,
            rng: cfg.seed,
        };
        let key_map = engine.view.key_map();
        write_cache(
            &engine.cache,
            CacheState {
                cells: engine.view.cells(),
                rows: engine.view.rows_snapshot(),
            },
        );
        let cache = Arc::clone(&engine.cache);
        let handle = thread::Builder::new()
            .name("dtt-serve-engine".into())
            .spawn(move || engine.run(rx, teardown_timeout))
            .expect("spawn engine thread");
        (cache, key_map, handle)
    }

    fn run(mut self, rx: Receiver<EngineCmd>, teardown_timeout: Duration) {
        let key_map = self.view.key_map();
        'outer: loop {
            let first = match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            };
            let mut puts: Vec<(u64, i64)> = Vec::new();
            let mut put_replies: Vec<SyncSender<Reply>> = Vec::new();
            let mut gets: Vec<(GetWhat, SyncSender<Reply>)> = Vec::new();
            let mut shutdown = false;
            fn stage(
                cmd: EngineCmd,
                puts: &mut Vec<(u64, i64)>,
                put_replies: &mut Vec<SyncSender<Reply>>,
                gets: &mut Vec<(GetWhat, SyncSender<Reply>)>,
                shutdown: &mut bool,
            ) {
                match cmd {
                    EngineCmd::Put { key, value, reply } => {
                        puts.push((key, value));
                        put_replies.push(reply);
                    }
                    EngineCmd::Get { query, reply } => gets.push((GetWhat::Cell(query), reply)),
                    EngineCmd::GetKey { key, reply } => gets.push((GetWhat::Row(key), reply)),
                    EngineCmd::Shutdown => *shutdown = true,
                }
            }
            stage(first, &mut puts, &mut put_replies, &mut gets, &mut shutdown);
            // Coalesce whatever else is already queued: keyed puts
            // commute, so the whole batch is one tracked region, one
            // refresh, many acknowledgements.
            while puts.len() + gets.len() < BATCH_CAP {
                match rx.try_recv() {
                    Ok(cmd) => stage(cmd, &mut puts, &mut put_replies, &mut gets, &mut shutdown),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }

            if !puts.is_empty() {
                self.view.apply(&puts);
            }
            if !puts.is_empty() || (self.degraded && !gets.is_empty()) {
                // Refresh for new writes, and opportunistically retry a
                // wedged view before serving stale reads.
                self.refresh_with_repair();
            }
            for reply in put_replies {
                let _ = reply.try_send(Reply::Ok {
                    degraded: self.degraded,
                });
            }
            for (what, reply) in gets {
                let value = if self.degraded {
                    let cached = read_cache(&self.cache);
                    match what {
                        GetWhat::Cell(query) => cached.cells[usize::from(query.min(1))],
                        GetWhat::Row(key) => match key_map {
                            Some(map) => cached
                                .rows
                                .get(map.row_of(key))
                                .copied()
                                .unwrap_or(cached.cells[0]),
                            None => cached.cells[0],
                        },
                    }
                } else {
                    match what {
                        GetWhat::Cell(query) => self.view.cells()[usize::from(query.min(1))],
                        GetWhat::Row(key) => self.view.key_row(key),
                    }
                };
                let _ = reply.try_send(Reply::Value {
                    degraded: self.degraded,
                    value,
                });
            }
            if shutdown {
                break 'outer;
            }
        }
        self.view.teardown(teardown_timeout);
    }

    /// Refreshes the view, repairing wedged tthreads with bounded retries
    /// and exponential backoff. Leaves `self.degraded` reflecting the
    /// outcome and the cache updated on success.
    fn refresh_with_repair(&mut self) {
        let mut attempt = 0u32;
        loop {
            match self.view.refresh() {
                Ok(()) => {
                    self.degraded = false;
                    let state = CacheState {
                        cells: self.view.cells(),
                        rows: self.view.rows_snapshot(),
                    };
                    write_cache(&self.cache, state);
                    return;
                }
                Err(err) => {
                    if attempt >= self.repair_cap {
                        self.degraded = true;
                        return;
                    }
                    attempt += 1;
                    if let Error::TthreadPoisoned(id) | Error::TthreadTimedOut(id) = err {
                        self.view.repair(id, &err);
                    }
                    let wait = backoff_delay(self.repair_backoff, attempt, self.draw());
                    if !wait.is_zero() {
                        thread::sleep(wait);
                    }
                }
            }
        }
    }

    /// SplitMix64 step for backoff jitter (same mixer as the core fault
    /// layer, so repair schedules are seed-deterministic).
    fn draw(&mut self) -> u64 {
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        self.rng = self.rng.wrapping_add(GAMMA);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The poison-tolerance regression: a panic while holding the cache
    /// lock poisons the mutex; every later degraded read must still get
    /// the last complete state instead of panicking through `expect`.
    #[test]
    fn poisoned_cache_still_serves_last_committed_state() {
        let cache: Cache = Arc::new(Mutex::new(CacheState {
            cells: [42, 7],
            rows: vec![1, 2, 3],
        }));
        let poisoner = Arc::clone(&cache);
        let _ = std::panic::catch_unwind(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("injected panic while holding the cache lock");
        });
        assert!(cache.lock().is_err(), "the mutex must actually be poisoned");
        let state = read_cache(&cache);
        assert_eq!(state.cells, [42, 7]);
        assert_eq!(state.rows, vec![1, 2, 3]);
        // Writes recover it too.
        write_cache(
            &cache,
            CacheState {
                cells: [1, 1],
                rows: vec![],
            },
        );
        assert_eq!(read_cache(&cache).cells, [1, 1]);
    }
}
