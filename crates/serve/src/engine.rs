//! The engine: a single actor thread that owns the served view's
//! [`dtt_core::Runtime`] and applies client batches to it.
//!
//! Handler threads never touch the runtime. They enqueue commands on a
//! *bounded* mailbox and wait on a per-request reply channel with a
//! deadline; the engine drains the mailbox in batches — consecutive
//! writes coalesce into one tracked region and one refresh, the
//! commutative-batching shape — and answers every staged command.
//!
//! Degradation is the engine's second job. A refresh can fail: a tthread
//! poisoned by a fault, or timed out against the body deadline. The
//! engine repairs (clear + re-dirty) with bounded retries and
//! exponential backoff (the same [`dtt_core::deadline::backoff_delay`]
//! curve the commit path uses); if the wedge survives the budget, the
//! engine marks itself degraded and keeps answering from the
//! last-committed cache instead of erroring. A later successful refresh
//! clears the flag.

use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use dtt_core::deadline::backoff_delay;
use dtt_core::{Config, Error, TthreadId};
use dtt_workloads::{ServedPipeline, ServedSheet};

/// Which workload chain backs the served view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// Spreadsheet chain: grid → row SUMs → TOTAL → AVG. Query `0` reads
    /// the total, `1` the average.
    Sheet,
    /// Pipeline chain: samples → CLAMP → BUCKET → PEAK. Every query reads
    /// the peak.
    Pipeline,
}

/// The derived cells the front-end can serve even when the runtime is
/// wedged: updated by the engine after every confirmed-fresh refresh.
pub(crate) type Cache = Arc<Mutex<[i64; 2]>>;

/// Upper bound on commands coalesced into one engine iteration.
const BATCH_CAP: usize = 64;

/// A command from a handler thread.
pub(crate) enum EngineCmd {
    Put {
        key: u64,
        value: i64,
        reply: SyncSender<Reply>,
    },
    Get {
        query: u8,
        reply: SyncSender<Reply>,
    },
    Shutdown,
}

/// The engine's answer; the handler encodes it into a wire response.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Reply {
    Ok { degraded: bool },
    Value { degraded: bool, value: i64 },
}

/// One of the two served views behind a common verb set.
enum View {
    Sheet(ServedSheet),
    Pipeline(ServedPipeline),
}

impl View {
    fn build(kind: ViewKind, cfg: Config, dims: (usize, usize)) -> View {
        match kind {
            ViewKind::Sheet => View::Sheet(ServedSheet::build(cfg, dims.0, dims.1)),
            ViewKind::Pipeline => View::Pipeline(ServedPipeline::build(cfg, dims.0, dims.1)),
        }
    }

    fn apply(&mut self, writes: &[(u64, i64)]) {
        match self {
            View::Sheet(s) => {
                let (_, cols) = s.dims();
                let mapped: Vec<(usize, usize, i64)> = writes
                    .iter()
                    .map(|&(k, v)| ((k as usize) / cols, (k as usize) % cols, v))
                    .collect();
                s.apply(&mapped);
            }
            View::Pipeline(p) => {
                let mapped: Vec<(usize, i64)> =
                    writes.iter().map(|&(k, v)| (k as usize, v)).collect();
                p.apply(&mapped);
            }
        }
    }

    fn refresh(&mut self) -> dtt_core::Result<()> {
        match self {
            View::Sheet(s) => s.refresh(),
            View::Pipeline(p) => p.refresh(),
        }
    }

    /// Reads both servable aggregates (the cache's shape).
    fn cells(&mut self) -> [i64; 2] {
        match self {
            View::Sheet(s) => {
                let v = s.read();
                [v.total, v.avg]
            }
            View::Pipeline(p) => {
                let v = p.read();
                [v.peak, v.peak]
            }
        }
    }

    fn repair(&mut self, id: TthreadId, err: &Error) {
        let rt = match self {
            View::Sheet(s) => s.runtime_mut(),
            View::Pipeline(p) => p.runtime_mut(),
        };
        match err {
            Error::TthreadPoisoned(_) => {
                let _ = rt.clear_poison(id);
            }
            Error::TthreadTimedOut(_) => {
                let _ = rt.clear_timeout(id);
            }
            _ => {}
        }
        // Re-dirty so the next refresh actually re-runs the cleared
        // tthread instead of skipping over stale state.
        let _ = rt.mark_dirty(id);
    }

    fn teardown(self, timeout: Duration) {
        let mut rt = match self {
            View::Sheet(s) => s.into_runtime(),
            View::Pipeline(p) => p.into_runtime(),
        };
        // Drain first (idempotent with any earlier defensive drain), then
        // the consuming shutdown. A straggler past the deadline is
        // detached, not waited on forever.
        let _ = rt.drain(timeout);
        let _ = rt.shutdown(timeout);
    }
}

/// Engine tuning, split from the server config so tests can drive the
/// engine directly.
pub(crate) struct EngineConfig {
    pub kind: ViewKind,
    pub dims: (usize, usize),
    pub runtime: Config,
    /// Repair attempts per refresh before declaring the view degraded.
    pub repair_cap: u32,
    /// Base backoff between repair attempts.
    pub repair_backoff: Duration,
    /// Jitter seed for the repair backoff.
    pub seed: u64,
}

pub(crate) struct Engine {
    view: View,
    cache: Cache,
    degraded: bool,
    repair_cap: u32,
    repair_backoff: Duration,
    rng: u64,
}

impl Engine {
    /// Spawns the engine thread; returns the shared cache and the join
    /// handle. Commands arrive on `rx`; the thread exits on
    /// [`EngineCmd::Shutdown`] or when every sender is gone, tearing the
    /// runtime down within `teardown_timeout`.
    pub(crate) fn spawn(
        cfg: EngineConfig,
        rx: Receiver<EngineCmd>,
        teardown_timeout: Duration,
    ) -> (Cache, thread::JoinHandle<()>) {
        let mut engine = Engine {
            view: View::build(cfg.kind, cfg.runtime, cfg.dims),
            cache: Arc::new(Mutex::new([0; 2])),
            degraded: false,
            repair_cap: cfg.repair_cap,
            repair_backoff: cfg.repair_backoff,
            rng: cfg.seed,
        };
        *engine.cache.lock().expect("fresh cache") = engine.view.cells();
        let cache = Arc::clone(&engine.cache);
        let handle = thread::Builder::new()
            .name("dtt-serve-engine".into())
            .spawn(move || engine.run(rx, teardown_timeout))
            .expect("spawn engine thread");
        (cache, handle)
    }

    fn run(mut self, rx: Receiver<EngineCmd>, teardown_timeout: Duration) {
        'outer: loop {
            let first = match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            };
            let mut puts: Vec<(u64, i64)> = Vec::new();
            let mut put_replies: Vec<SyncSender<Reply>> = Vec::new();
            let mut gets: Vec<(u8, SyncSender<Reply>)> = Vec::new();
            let mut shutdown = false;
            fn stage(
                cmd: EngineCmd,
                puts: &mut Vec<(u64, i64)>,
                put_replies: &mut Vec<SyncSender<Reply>>,
                gets: &mut Vec<(u8, SyncSender<Reply>)>,
                shutdown: &mut bool,
            ) {
                match cmd {
                    EngineCmd::Put { key, value, reply } => {
                        puts.push((key, value));
                        put_replies.push(reply);
                    }
                    EngineCmd::Get { query, reply } => gets.push((query, reply)),
                    EngineCmd::Shutdown => *shutdown = true,
                }
            }
            stage(first, &mut puts, &mut put_replies, &mut gets, &mut shutdown);
            // Coalesce whatever else is already queued: one tracked
            // region, one refresh, many acknowledgements.
            while puts.len() + gets.len() < BATCH_CAP {
                match rx.try_recv() {
                    Ok(cmd) => stage(cmd, &mut puts, &mut put_replies, &mut gets, &mut shutdown),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }

            if !puts.is_empty() {
                self.view.apply(&puts);
            }
            if !puts.is_empty() || (self.degraded && !gets.is_empty()) {
                // Refresh for new writes, and opportunistically retry a
                // wedged view before serving stale reads.
                self.refresh_with_repair();
            }
            for reply in put_replies {
                let _ = reply.try_send(Reply::Ok {
                    degraded: self.degraded,
                });
            }
            for (query, reply) in gets {
                let value = if self.degraded {
                    let cells = *self.cache.lock().expect("cache lock");
                    cells[usize::from(query.min(1))]
                } else {
                    self.view.cells()[usize::from(query.min(1))]
                };
                let _ = reply.try_send(Reply::Value {
                    degraded: self.degraded,
                    value,
                });
            }
            if shutdown {
                break 'outer;
            }
        }
        self.view.teardown(teardown_timeout);
    }

    /// Refreshes the view, repairing wedged tthreads with bounded retries
    /// and exponential backoff. Leaves `self.degraded` reflecting the
    /// outcome and the cache updated on success.
    fn refresh_with_repair(&mut self) {
        let mut attempt = 0u32;
        loop {
            match self.view.refresh() {
                Ok(()) => {
                    self.degraded = false;
                    *self.cache.lock().expect("cache lock") = self.view.cells();
                    return;
                }
                Err(err) => {
                    if attempt >= self.repair_cap {
                        self.degraded = true;
                        return;
                    }
                    attempt += 1;
                    if let Error::TthreadPoisoned(id) | Error::TthreadTimedOut(id) = err {
                        self.view.repair(id, &err);
                    }
                    let wait = backoff_delay(self.repair_backoff, attempt, self.draw());
                    if !wait.is_zero() {
                        thread::sleep(wait);
                    }
                }
            }
        }
    }

    /// SplitMix64 step for backoff jitter (same mixer as the core fault
    /// layer, so repair schedules are seed-deterministic).
    fn draw(&mut self) -> u64 {
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        self.rng = self.rng.wrapping_add(GAMMA);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
