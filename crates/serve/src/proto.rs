//! The wire protocol: length-prefixed frames with fixed little-endian
//! request/response payloads.
//!
//! A frame is a `u32` little-endian payload length followed by the
//! payload; payloads start with a one-byte opcode. The protocol is
//! deliberately minimal — the front-end's value is the overload behaviour
//! around it, not the transport — but it is strict: oversized frames,
//! unknown opcodes and short payloads are decode errors that close the
//! connection rather than desynchronize it.

use std::io::{self, Read, Write};

/// Frames larger than this are rejected before allocation: a corrupt or
/// hostile length prefix must not balloon server memory.
pub const MAX_FRAME: u32 = 64 * 1024;

/// A client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Write `value` at `key`. Keys map onto the served view's tracked
    /// input (wrapping), so every key is valid.
    Put {
        /// Client key, mapped onto the view's input space.
        key: u64,
        /// Value to store.
        value: i64,
    },
    /// Read the derived aggregate selected by `query` (view-defined:
    /// `0` = total/peak, `1` = avg/peak).
    Get {
        /// Aggregate selector.
        query: u8,
    },
    /// Read the tthread-maintained aggregate of the shard-row `key` maps
    /// to (keyed view). On the non-keyed views this answers the primary
    /// aggregate, like `Get { query: 0 }`.
    GetKey {
        /// Client key, folded onto the keyed view's slot space.
        key: u64,
    },
}

/// A server response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// Write acknowledged. `degraded` means the write was applied but the
    /// derived views could not be confirmed fresh within the request
    /// deadline (commit-race retries exhausted or a wedged tthread).
    Ok {
        /// Freshness could not be confirmed within the deadline.
        degraded: bool,
    },
    /// Read result. `degraded` means the value is the last-committed
    /// state rather than a confirmed-fresh read.
    Value {
        /// Served from last-committed state under overload or a wedge.
        degraded: bool,
        /// The aggregate value.
        value: i64,
    },
    /// Admission control rejected the request: the server is at its
    /// concurrency limit (or its accept queue is full). The client may
    /// retry after a backoff.
    Shed,
    /// Protocol-level error (unknown query, malformed request).
    Err {
        /// Stable error code.
        code: u8,
    },
}

impl Request {
    /// Encodes the request payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            Request::Ping => vec![0],
            Request::Put { key, value } => {
                let mut out = Vec::with_capacity(17);
                out.push(1);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
                out
            }
            Request::Get { query } => vec![2, query],
            Request::GetKey { key } => {
                let mut out = Vec::with_capacity(9);
                out.push(3);
                out.extend_from_slice(&key.to_le_bytes());
                out
            }
        }
    }

    /// Decodes a request payload; `None` on unknown opcode or bad length.
    pub fn decode(buf: &[u8]) -> Option<Request> {
        match (buf.first()?, buf.len()) {
            (0, 1) => Some(Request::Ping),
            (1, 17) => Some(Request::Put {
                key: u64::from_le_bytes(buf[1..9].try_into().ok()?),
                value: i64::from_le_bytes(buf[9..17].try_into().ok()?),
            }),
            (2, 2) => Some(Request::Get { query: buf[1] }),
            (3, 9) => Some(Request::GetKey {
                key: u64::from_le_bytes(buf[1..9].try_into().ok()?),
            }),
            _ => None,
        }
    }
}

impl Response {
    /// Encodes the response payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            Response::Pong => vec![0],
            Response::Ok { degraded } => vec![1, u8::from(degraded)],
            Response::Value { degraded, value } => {
                let mut out = Vec::with_capacity(10);
                out.push(2);
                out.push(u8::from(degraded));
                out.extend_from_slice(&value.to_le_bytes());
                out
            }
            Response::Shed => vec![3],
            Response::Err { code } => vec![4, code],
        }
    }

    /// Decodes a response payload; `None` on unknown opcode or bad length.
    pub fn decode(buf: &[u8]) -> Option<Response> {
        match (buf.first()?, buf.len()) {
            (0, 1) => Some(Response::Pong),
            (1, 2) => Some(Response::Ok {
                degraded: buf[1] != 0,
            }),
            (2, 10) => Some(Response::Value {
                degraded: buf[1] != 0,
                value: i64::from_le_bytes(buf[2..10].try_into().ok()?),
            }),
            (3, 1) => Some(Response::Shed),
            (4, 2) => Some(Response::Err { code: buf[1] }),
            _ => None,
        }
    }
}

/// Writes one frame: `u32` little-endian length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental, resumable frame parser: the per-connection read state.
///
/// The blocking [`read_frame`] loses bytes if a read times out mid-frame
/// — it has nowhere to park a partial length prefix or payload, so a
/// `WouldBlock`/`TimedOut` error after 1–3 length bytes silently drops
/// them and desynchronizes the stream (the PR-9 `handle_conn` bug). The
/// decoder fixes that structurally: callers [`FrameDecoder::extend`] it
/// with whatever bytes a non-blocking read produced — zero, a dribble,
/// or several pipelined frames — and [`FrameDecoder::next_frame`] yields
/// a frame only once it is complete. Partial frames stay buffered across
/// calls indefinitely; a timeout is no longer an error the parser can
/// even observe.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames; compacted
    /// opportunistically so the buffer does not creep.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder (no partial frame).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read off the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: consumed prefixes are dead weight.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame's payload, or `None` if more bytes
    /// are needed (the partial frame stays buffered).
    ///
    /// # Errors
    ///
    /// `ErrorKind::InvalidData` for a length prefix over [`MAX_FRAME`] —
    /// a corrupt or hostile frame must not balloon memory, and the
    /// stream is unrecoverable past it.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4-byte slice"));
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length exceeds MAX_FRAME",
            ));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[4..total].to_vec();
        self.pos += total;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet yielded (partial-frame diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when a partial frame is parked in the buffer.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }
}

/// Reads one frame's payload. `Ok(None)` on a clean EOF at a frame
/// boundary; mid-frame EOF, oversized lengths and read timeouts surface
/// as errors.
///
/// Only safe on **blocking** streams without read timeouts: an error
/// return loses any partially-read frame. Connections with timeouts or
/// non-blocking sockets must use [`FrameDecoder`] instead.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Put {
                key: u64::MAX,
                value: i64::MIN,
            },
            Request::Put { key: 0, value: 0 },
            Request::Get { query: 1 },
            Request::GetKey { key: 0 },
            Request::GetKey { key: u64::MAX },
        ] {
            assert_eq!(Request::decode(&req.encode()), Some(req));
        }
    }

    #[test]
    fn decoder_resumes_across_arbitrary_splits() {
        // Two frames fed one byte at a time: every intermediate call must
        // report "more needed", never drop a byte, and both frames must
        // come out intact — the resumable-state guarantee the blocking
        // read_frame cannot give.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Put { key: 7, value: -3 }.encode()).unwrap();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();

        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            Request::decode(&frames[0]),
            Some(Request::Put { key: 7, value: -3 })
        );
        assert_eq!(Request::decode(&frames[1]), Some(Request::Ping));
        assert!(!dec.mid_frame());
    }

    #[test]
    fn decoder_yields_pipelined_frames_from_one_chunk() {
        let mut wire = Vec::new();
        for q in 0..5u8 {
            write_frame(&mut wire, &Request::Get { query: q }.encode()).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        for q in 0..5u8 {
            assert_eq!(
                Request::decode(&dec.next_frame().unwrap().unwrap()),
                Some(Request::Get { query: q })
            );
        }
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_hostile_lengths_without_allocating() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_buffer_compacts_after_consumption() {
        let mut dec = FrameDecoder::new();
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 1024]).unwrap();
        for _ in 0..16 {
            dec.extend(&wire);
            assert!(dec.next_frame().unwrap().is_some());
        }
        // The consumed prefix must not accumulate across frames.
        assert!(
            dec.buf.len() <= 2 * wire.len(),
            "decoder buffer grew to {} bytes over 16 consumed frames",
            dec.buf.len()
        );
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Pong,
            Response::Ok { degraded: true },
            Response::Ok { degraded: false },
            Response::Value {
                degraded: true,
                value: -7,
            },
            Response::Shed,
            Response::Err { code: 3 },
        ] {
            assert_eq!(Response::decode(&resp.encode()), Some(resp));
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[9]), None);
        assert_eq!(Request::decode(&[1, 0, 0]), None); // short Put
        assert_eq!(Response::decode(&[2, 0]), None); // short Value
        assert_eq!(Response::decode(&[77]), None);
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, &[]).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut r).unwrap(), Some(vec![]));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // A hostile length prefix is rejected before allocation.
        let mut bad = io::Cursor::new((MAX_FRAME + 1).to_le_bytes().to_vec());
        assert!(read_frame(&mut bad).is_err());
    }
}
