//! Admission control and the request-lifecycle counters.
//!
//! The [`Gate`] is a semaphore-style concurrency limiter: a request is
//! *admitted* only if a permit is free, otherwise the server answers
//! [`crate::proto::Response::Shed`] immediately — bounded work, no
//! unbounded buffering. [`ServeStats`] counts every lifecycle edge so two
//! conservation identities can be asserted at any quiescent point:
//!
//! * `accepts == admits + sheds` — every decoded request is decided
//!   exactly once;
//! * `accepts == responses + sheds + dropped_conns` — every request is
//!   answered, shed, or lost with its connection; none vanish.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A semaphore-style concurrency limiter over in-flight admitted
/// requests. Lock-free: `try_acquire` either takes a permit or reports
/// saturation; it never blocks the accept path.
#[derive(Debug)]
pub struct Gate {
    permits: AtomicUsize,
}

impl Gate {
    /// A gate with `max_inflight` permits.
    pub fn new(max_inflight: usize) -> Self {
        Gate {
            permits: AtomicUsize::new(max_inflight),
        }
    }

    /// Takes a permit if one is free.
    ///
    /// Prefer [`Gate::acquire`]: a raw `try_acquire` pairs with a manual
    /// [`Gate::release`], and any panic between the two burns the permit
    /// forever (the PR-9 leak: one poisoned `expect` in a handler and the
    /// server sheds everything until restart).
    pub fn try_acquire(&self) -> bool {
        self.permits
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
            .is_ok()
    }

    /// Returns a permit taken by [`Gate::try_acquire`].
    pub fn release(&self) {
        self.permits.fetch_add(1, Ordering::AcqRel);
    }

    /// Takes a permit as an RAII [`Permit`] guard, or `None` at
    /// saturation. The permit returns on drop — including drops during
    /// unwinding, so a panicking holder cannot leak it.
    pub fn acquire(gate: &Arc<Gate>) -> Option<Permit> {
        gate.try_acquire().then(|| Permit {
            gate: Arc::clone(gate),
        })
    }

    /// Free permits right now (diagnostic).
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Acquire)
    }
}

/// An RAII admission permit: holding one *is* being admitted past the
/// gate. Dropping it — on the normal path, an early return, or a panic
/// unwind — releases the permit exactly once.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// Request-lifecycle counters, updated with relaxed atomics from the
/// handler threads and read as a [`ServeStatsSnapshot`].
#[derive(Debug, Default)]
pub struct ServeStats {
    accepts: AtomicU64,
    admits: AtomicU64,
    sheds: AtomicU64,
    responses: AtomicU64,
    dropped_conns: AtomicU64,
    degraded_reads: AtomicU64,
}

impl ServeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a decoded request.
    pub fn on_accept(&self) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an admission (a gate permit was taken).
    pub fn on_admit(&self) {
        self.admits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a shed (admission refused; a `Shed` response was written).
    pub fn on_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a non-shed response written back to the client.
    pub fn on_response(&self) {
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an admitted request whose connection was severed before its
    /// response could be written.
    pub fn on_dropped_conn(&self) {
        self.dropped_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a response served from last-committed (degraded) state.
    pub fn on_degraded(&self) {
        self.degraded_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            serve_accepts: self.accepts.load(Ordering::Relaxed),
            serve_admits: self.admits.load(Ordering::Relaxed),
            serve_sheds: self.sheds.load(Ordering::Relaxed),
            serve_responses: self.responses.load(Ordering::Relaxed),
            serve_dropped_conns: self.dropped_conns.load(Ordering::Relaxed),
            serve_degraded_reads: self.degraded_reads.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of [`ServeStats`], with the conservation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStatsSnapshot {
    /// Requests decoded off client connections.
    pub serve_accepts: u64,
    /// Requests admitted past the gate.
    pub serve_admits: u64,
    /// Requests refused with a `Shed` response.
    pub serve_sheds: u64,
    /// Non-shed responses written back.
    pub serve_responses: u64,
    /// Admitted requests lost with their connection.
    pub serve_dropped_conns: u64,
    /// Responses served from last-committed (degraded) state.
    pub serve_degraded_reads: u64,
}

impl ServeStatsSnapshot {
    /// `accepts == admits + sheds`: every request decided exactly once.
    pub fn admission_conserved(&self) -> bool {
        self.serve_accepts == self.serve_admits + self.serve_sheds
    }

    /// `accepts == responses + sheds + dropped_conns`: every request
    /// answered, shed, or lost with its connection.
    pub fn lifecycle_conserved(&self) -> bool {
        self.serve_accepts == self.serve_responses + self.serve_sheds + self.serve_dropped_conns
    }

    /// Stable `(name, value)` rows for reports and the CLI.
    pub fn fields(&self) -> [(&'static str, u64); 6] {
        [
            ("serve_accepts", self.serve_accepts),
            ("serve_admits", self.serve_admits),
            ("serve_sheds", self.serve_sheds),
            ("serve_responses", self.serve_responses),
            ("serve_dropped_conns", self.serve_dropped_conns),
            ("serve_degraded_reads", self.serve_degraded_reads),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounds_concurrency() {
        let gate = Gate::new(2);
        assert!(gate.try_acquire());
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire());
        gate.release();
        assert!(gate.try_acquire());
        assert_eq!(gate.available(), 0);
    }

    #[test]
    fn zero_permit_gate_sheds_everything() {
        let gate = Gate::new(0);
        assert!(!gate.try_acquire());
        assert!(Gate::acquire(&Arc::new(gate)).is_none());
    }

    #[test]
    fn permit_guard_releases_on_drop_and_bounds_concurrency() {
        let gate = Arc::new(Gate::new(2));
        let a = Gate::acquire(&gate).expect("first permit");
        let b = Gate::acquire(&gate).expect("second permit");
        assert!(Gate::acquire(&gate).is_none(), "gate saturated");
        drop(a);
        let c = Gate::acquire(&gate).expect("freed permit reusable");
        drop(b);
        drop(c);
        assert_eq!(gate.available(), 2);
    }

    /// The permit-leak regression: a panic while holding a permit must
    /// return it through the unwind. With the raw
    /// `try_acquire`/`release` pairing this leaked — the permit stayed
    /// burned and the gate drifted toward shedding everything.
    #[test]
    fn panicking_permit_holder_cannot_burn_permits() {
        let gate = Arc::new(Gate::new(1));
        for _ in 0..3 {
            let g = Arc::clone(&gate);
            let result = std::panic::catch_unwind(move || {
                let _permit = Gate::acquire(&g).expect("permit free at loop start");
                panic!("injected handler panic while admitted");
            });
            assert!(result.is_err(), "the panic must propagate");
            assert_eq!(
                gate.available(),
                1,
                "permit must be returned by the unwinding drop"
            );
        }
    }

    #[test]
    fn snapshot_checks_conservation() {
        let stats = ServeStats::new();
        for _ in 0..5 {
            stats.on_accept();
        }
        for _ in 0..3 {
            stats.on_admit();
        }
        stats.on_shed();
        stats.on_shed();
        stats.on_response();
        stats.on_response();
        stats.on_dropped_conn();
        let snap = stats.snapshot();
        assert!(snap.admission_conserved());
        assert!(snap.lifecycle_conserved());
        assert_eq!(snap.fields()[0], ("serve_accepts", 5));

        // One unanswered admit breaks lifecycle conservation.
        stats.on_accept();
        stats.on_admit();
        let snap = stats.snapshot();
        assert!(snap.admission_conserved());
        assert!(!snap.lifecycle_conserved());
    }
}
