//! Contract tests for the serve front-end: admission, shedding,
//! deadlines, degraded reads, conservation and drain-mode shutdown.

use std::time::Duration;

use dtt_core::fault::{FaultPlan, ALWAYS};
use dtt_core::FaultPoint;
use dtt_serve::{Client, Request, Response, ServeConfig, Server, ViewKind};

fn quick_config() -> ServeConfig {
    ServeConfig {
        deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

fn assert_conserved(server: &Server) {
    let snap = server.stats();
    assert!(
        snap.admission_conserved(),
        "accepts == admits + sheds violated: {snap:?}"
    );
    assert!(
        snap.lifecycle_conserved(),
        "accepts == responses + sheds + dropped_conns violated: {snap:?}"
    );
}

#[test]
fn ping_put_get_round_trip() {
    let mut server = Server::start(quick_config()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    assert_eq!(client.request(Request::Ping).unwrap(), Response::Pong);
    // Sheet view, 16x32 grid: key 0 is cell (0,0).
    let resp = client.request(Request::Put { key: 0, value: 40 }).unwrap();
    assert_eq!(resp, Response::Ok { degraded: false });
    let resp = client.request(Request::Put { key: 33, value: 2 }).unwrap();
    assert_eq!(resp, Response::Ok { degraded: false });

    // query 0 = total.
    let resp = client.request(Request::Get { query: 0 }).unwrap();
    assert_eq!(
        resp,
        Response::Value {
            degraded: false,
            value: 42
        }
    );

    let snap = server.stats();
    assert_eq!(snap.serve_accepts, 4);
    assert_eq!(snap.serve_admits, 4);
    assert_eq!(snap.serve_sheds, 0);
    assert_eq!(snap.serve_responses, 4);
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn pipeline_view_serves_the_peak() {
    let mut server = Server::start(ServeConfig {
        view: ViewKind::Pipeline,
        dims: (16, 4),
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    // Samples 0 and 4 land in bucket 0; 500 clamps to 99 in bucket 1.
    for (key, value) in [(0u64, 50i64), (4, 30), (1, 500)] {
        client.request(Request::Put { key, value }).unwrap();
    }
    let resp = client.request(Request::Get { query: 0 }).unwrap();
    assert_eq!(
        resp,
        Response::Value {
            degraded: false,
            value: 99
        }
    );
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn zero_permit_gate_sheds_explicitly() {
    let mut server = Server::start(ServeConfig {
        max_inflight: 0,
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..5 {
        assert_eq!(client.request(Request::Ping).unwrap(), Response::Shed);
    }
    let snap = server.stats();
    assert_eq!(snap.serve_accepts, 5);
    assert_eq!(snap.serve_admits, 0);
    assert_eq!(snap.serve_sheds, 5);
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn injected_accept_overflow_sheds_with_budget() {
    let plan = FaultPlan::new(118)
        .with_rate(FaultPoint::AcceptOverflow, ALWAYS)
        .with_budget(FaultPoint::AcceptOverflow, 3);
    let mut server = Server::start(ServeConfig {
        serve_faults: Some(plan),
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let mut sheds = 0;
    for _ in 0..10 {
        if client.request(Request::Ping).unwrap() == Response::Shed {
            sheds += 1;
        }
    }
    assert_eq!(sheds, 3, "budgeted overflow fires exactly three times");
    assert_eq!(
        server.fault_injections()[FaultPoint::AcceptOverflow as usize],
        3
    );
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn injected_conn_drop_is_conserved() {
    let plan = FaultPlan::new(7)
        .with_rate(FaultPoint::ConnDrop, ALWAYS)
        .with_budget(FaultPoint::ConnDrop, 1);
    let mut server = Server::start(ServeConfig {
        serve_faults: Some(plan),
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    // First admitted request: the server severs the connection.
    let err = client
        .request(Request::Put { key: 1, value: 1 })
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    // Budget spent: a fresh connection works.
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.request(Request::Ping).unwrap(), Response::Pong);

    let snap = server.stats();
    assert_eq!(snap.serve_dropped_conns, 1);
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn wedged_tthread_degrades_reads_to_last_committed() {
    // An impossible body deadline wedges every detached recomputation:
    // the engine's bounded repair (clear_timeout + re-dirty + backoff)
    // cannot clear it, so writes apply but freshness is never confirmed
    // and reads fall back to the last-committed cells, tagged.
    let mut server = Server::start(ServeConfig {
        workers: 1,
        body_deadline: Some(Duration::ZERO),
        repair_cap: 2,
        repair_backoff: Duration::from_micros(100),
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client.request(Request::Put { key: 0, value: 9 }).unwrap();
    assert_eq!(resp, Response::Ok { degraded: true });
    let resp = client.request(Request::Get { query: 0 }).unwrap();
    assert_eq!(
        resp,
        Response::Value {
            degraded: true,
            value: 0 // last-committed state: the initial all-zero cells
        }
    );
    let snap = server.stats();
    assert!(snap.serve_degraded_reads >= 2, "{snap:?}");
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn drain_shutdown_finishes_in_flight_and_is_idempotent() {
    let mut server = Server::start(quick_config()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for i in 0..8 {
        client.request(Request::Put { key: i, value: 1 }).unwrap();
    }
    server.shutdown(Duration::from_secs(10)).unwrap();
    // Idempotent: the double-shutdown (drain racing a signal handler)
    // returns Ok without re-joining anything.
    server.shutdown(Duration::from_secs(10)).unwrap();

    // The listener is closed: new connections are refused (or reset).
    assert!(
        Client::connect(&addr).is_err() || {
            // Accept backlog may hand us a socket that immediately EOFs.
            let mut c = Client::connect(&addr).unwrap();
            c.request(Request::Ping).is_err()
        }
    );
    assert_conserved(&server);
}

#[test]
fn overload_sheds_instead_of_collapsing() {
    // A tiny gate against a burst of concurrent clients: some requests
    // shed, every request is answered, nothing is lost.
    let mut server = Server::start(ServeConfig {
        max_inflight: 2,
        queue_cap: 2,
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut handles = Vec::new();
    for t in 0..8 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let mut sheds = 0u64;
            let mut oks = 0u64;
            for i in 0..50 {
                match client
                    .request(Request::Put {
                        key: (t * 64 + i) as u64,
                        value: i,
                    })
                    .unwrap()
                {
                    Response::Shed => sheds += 1,
                    _ => oks += 1,
                }
            }
            (sheds, oks)
        }));
    }
    let mut total_sheds = 0;
    let mut total_oks = 0;
    for handle in handles {
        let (sheds, oks) = handle.join().unwrap();
        total_sheds += sheds;
        total_oks += oks;
    }
    assert_eq!(total_sheds + total_oks, 400, "every request answered");
    let snap = server.stats();
    assert_eq!(snap.serve_accepts, 400);
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn keyed_view_serves_shard_row_aggregates() {
    // 4x8 grid under a 1M logical key space: keys fold onto slots
    // (key % key_space % 32), row-major; GetKey answers the
    // tthread-maintained aggregate of the key's shard row.
    let mut server = Server::start(ServeConfig {
        view: ViewKind::Keyed,
        dims: (4, 8),
        key_space: 1 << 20,
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Key 0 → slot (0,0); key 9 → slot (1,1); key 1_048_577 folds to
    // slot (0,1) — the key space wraps, the grid wraps again.
    for (key, value) in [(0u64, 10i64), (9, 7), (1_048_577, 100)] {
        assert_eq!(
            client.request(Request::Put { key, value }).unwrap(),
            Response::Ok { degraded: false }
        );
    }
    assert_eq!(
        client.request(Request::GetKey { key: 0 }).unwrap(),
        Response::Value {
            degraded: false,
            value: 110 // row 0: key 0 (10) + folded key 1_048_577 (100)
        }
    );
    assert_eq!(
        client.request(Request::GetKey { key: 9 }).unwrap(),
        Response::Value {
            degraded: false,
            value: 7
        }
    );
    // The global aggregate still answers over all shard rows.
    assert_eq!(
        client.request(Request::Get { query: 0 }).unwrap(),
        Response::Value {
            degraded: false,
            value: 117
        }
    );
    // Colliding keys share a slot: last write wins (37 % 32 == 5).
    client.request(Request::Put { key: 5, value: 1 }).unwrap();
    client.request(Request::Put { key: 37, value: 2 }).unwrap();
    assert_eq!(
        client.request(Request::GetKey { key: 5 }).unwrap(),
        Response::Value {
            degraded: false,
            value: 112 // row 0: 10 + 100 + 2
        }
    );
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn wedged_keyed_view_degrades_getkey_to_cached_rows() {
    // Same wedge as the sheet test, keyed view: GetKey must fall back to
    // the last-committed shard-row cache, tagged degraded — not error,
    // not panic through a poisoned cache.
    let mut server = Server::start(ServeConfig {
        view: ViewKind::Keyed,
        dims: (4, 8),
        key_space: 1 << 16,
        workers: 1,
        body_deadline: Some(Duration::ZERO),
        repair_cap: 2,
        repair_backoff: Duration::from_micros(100),
        ..quick_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let resp = client.request(Request::Put { key: 3, value: 5 }).unwrap();
    assert_eq!(resp, Response::Ok { degraded: true });
    let resp = client.request(Request::GetKey { key: 3 }).unwrap();
    assert_eq!(
        resp,
        Response::Value {
            degraded: true,
            value: 0 // last-committed rows: the initial all-zero grid
        }
    );
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn getkey_on_unkeyed_view_answers_primary_aggregate() {
    let mut server = Server::start(quick_config()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.request(Request::Put { key: 0, value: 21 }).unwrap();
    client.request(Request::Put { key: 1, value: 21 }).unwrap();
    // Sheet view: GetKey degrades gracefully to `Get { query: 0 }`.
    assert_eq!(
        client.request(Request::GetKey { key: 999 }).unwrap(),
        Response::Value {
            degraded: false,
            value: 42
        }
    );
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

#[test]
fn env_knobs_shape_the_config() {
    // Setting env vars here would race other tests in this binary, so
    // only the unset/default path is pinned; the CLI tests exercise the
    // override path in-process.
    let cfg = ServeConfig::from_env();
    assert!(cfg.max_inflight > 0);
    assert!(cfg.queue_cap > 0);
    assert!(!cfg.deadline.is_zero());
}
