//! Regression tests for the four serve-layer bugs fixed by the
//! event-driven rewrite, plus the env-knob hygiene that rode along:
//!
//! 1. **Mid-frame read-timeout desync** — a client dribbling a frame one
//!    byte at a time used to lose its partial bytes whenever the old
//!    blocking `read_frame` timed out mid-frame; the stream desynced and
//!    every later frame decoded as garbage. The resumable
//!    `FrameDecoder` parks partial frames across polls.
//! 2. **Shutdown hang with a saturated mailbox** — `shutdown` used
//!    `try_send(EngineCmd::Shutdown)`; with the bounded engine mailbox
//!    full at drain the command was silently dropped and
//!    `engine_handle.join()` blocked forever. The stop is now a blocking
//!    (bounded) send.
//! 3. **Permit leak** — the raw `try_acquire`/`release` pairing burned a
//!    permit on any panic between the two (unit-pinned in
//!    `admission::tests::panicking_permit_holder_cannot_burn_permits`);
//!    here the system-level cousin: a one-permit gate must survive
//!    repeated severed-while-admitted requests without drifting into
//!    shedding everything.
//! 4. **Unbounded `conn_handles` growth** — one `JoinHandle` (and one OS
//!    thread) per connection, drained only at shutdown. The event loop
//!    owns connections as state machines: OS threads stay at the pool
//!    size under a thousand held connections, and ten thousand churned
//!    connections leave nothing behind.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use dtt_core::fault::{FaultPlan, ALWAYS};
use dtt_core::FaultPoint;
use dtt_serve::{Client, FrameDecoder, Request, Response, ServeConfig, Server};

fn assert_conserved(server: &Server) {
    let snap = server.stats();
    assert!(
        snap.admission_conserved(),
        "accepts == admits + sheds violated: {snap:?}"
    );
    assert!(
        snap.lifecycle_conserved(),
        "accepts == responses + sheds + dropped_conns violated: {snap:?}"
    );
}

/// Reads one framed response off a raw socket.
fn read_response(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Response {
    let mut buf = [0u8; 256];
    loop {
        if let Some(payload) = dec.next_frame().unwrap() {
            return Response::decode(&payload).expect("decodable response");
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed mid-response");
        dec.extend(&buf[..n]);
    }
}

/// Bug 1: a frame dribbled one byte per 30 ms spans dozens of server
/// polls; every partial prefix must survive suspension. The old path
/// dropped the bytes read before each 25 ms socket timeout.
#[test]
fn dribbling_client_does_not_desync_the_stream() {
    let mut server = Server::start(ServeConfig {
        deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut dec = FrameDecoder::new();

    // A 21-byte Put frame (4-byte header + 17-byte payload), one byte
    // every 30 ms: ~630 ms of mid-frame suspensions.
    let mut wire = Vec::new();
    let payload = Request::Put { key: 0, value: 40 }.encode();
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    for &byte in &wire {
        stream.write_all(&[byte]).unwrap();
        thread::sleep(Duration::from_millis(30));
    }
    assert_eq!(
        read_response(&mut stream, &mut dec),
        Response::Ok { degraded: false }
    );

    // The stream is still in sync: a normally-sent read answers with the
    // dribbled write's value.
    let mut wire = Vec::new();
    let payload = Request::Get { query: 0 }.encode();
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    stream.write_all(&wire).unwrap();
    assert_eq!(
        read_response(&mut stream, &mut dec),
        Response::Value {
            degraded: false,
            value: 40
        }
    );

    let snap = server.stats();
    assert_eq!(snap.serve_accepts, 2);
    assert_eq!(snap.serve_responses, 2);
    assert_conserved(&server);
    drop(stream);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

/// Bug 2: shutdown while the one-slot engine mailbox is saturated by a
/// wedged, slow engine. The old `try_send` dropped the Shutdown command
/// here and `join` hung forever; the blocking send waits for the slot
/// the draining engine is guaranteed to free.
#[test]
fn shutdown_drains_even_with_a_saturated_engine_mailbox() {
    let mut server = Server::start(ServeConfig {
        queue_cap: 1,
        max_inflight: 8,
        deadline: Duration::from_millis(20),
        // Wedge every refresh and make repair slow: each put batch holds
        // the engine for several backoff rounds, so the mailbox is full
        // essentially always.
        body_deadline: Some(Duration::ZERO),
        repair_cap: 2,
        repair_backoff: Duration::from_millis(25),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..4 {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut client = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                // Errors mean the server is draining us — done.
                if client
                    .request(Request::Put {
                        key: t * 64 + i,
                        value: 1,
                    })
                    .is_err()
                {
                    return;
                }
            }
        }));
    }
    // Let the writers saturate the mailbox against the wedged engine.
    thread::sleep(Duration::from_millis(300));

    let (done_tx, done_rx) = mpsc::channel();
    let shutdown_thread = thread::spawn(move || {
        let result = server.shutdown(Duration::from_secs(10));
        let _ = done_tx.send(());
        (server, result)
    });
    let finished = done_rx.recv_timeout(Duration::from_secs(8));
    stop.store(true, Ordering::Relaxed);
    assert!(
        finished.is_ok(),
        "shutdown hung past 8s with a saturated engine mailbox"
    );
    let (server, result) = shutdown_thread.join().unwrap();
    result.unwrap();
    for w in writers {
        let _ = w.join();
    }
    assert_conserved(&server);
}

/// Bug 3, system level: a one-permit gate under repeated
/// severed-while-admitted requests (the injected conn-drop fires on
/// every admission) must keep admitting on fresh connections — a leaked
/// permit would turn every later request into a shed.
#[test]
fn one_permit_gate_survives_repeated_severed_admissions() {
    let plan = FaultPlan::new(41)
        .with_rate(FaultPoint::ConnDrop, ALWAYS)
        .with_budget(FaultPoint::ConnDrop, 10);
    let mut server = Server::start(ServeConfig {
        max_inflight: 1,
        serve_faults: Some(plan),
        deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    for _ in 0..10 {
        let mut client = Client::connect(&addr).unwrap();
        let err = client.request(Request::Ping).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
    // Budget spent; if any severed admission had leaked its permit the
    // one-permit gate would now shed everything.
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..5 {
        assert_eq!(client.request(Request::Ping).unwrap(), Response::Pong);
    }
    let snap = server.stats();
    assert_eq!(snap.serve_dropped_conns, 10);
    assert_eq!(snap.serve_sheds, 0, "no permit was leaked");
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

/// OS threads of this process, from /proc/self/status.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Bug 4: connections are state machines, not threads. A thousand held
/// connections add zero OS threads; ten thousand churned connections
/// leave no handles, no threads and no active-connection residue.
#[test]
fn connection_churn_stays_bounded_in_threads_and_memory() {
    let mut server = Server::start(ServeConfig {
        event_workers: 2,
        deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Phase A: hold 1024 concurrent connections from this one thread.
    let baseline_threads = thread_count();
    let mut held = Vec::with_capacity(1024);
    for _ in 0..1024 {
        held.push(TcpStream::connect(addr).unwrap());
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_conn_count() < 1024 {
        assert!(
            Instant::now() < deadline,
            "registration stalled at {} connections",
            server.active_conn_count()
        );
        thread::sleep(Duration::from_millis(2));
    }
    // Slack of 64 absorbs threads that sibling tests in this binary may
    // spawn concurrently; the per-connection regression would add ~1024.
    let held_threads = thread_count();
    assert!(
        held_threads <= baseline_threads + 64,
        "1024 held connections grew OS threads {baseline_threads} -> {held_threads}; \
         the event pool must not scale with connections"
    );
    drop(held);

    // Phase B: churn 10_000 connections (16 client threads x 625), one
    // request each.
    let mut churners = Vec::new();
    for t in 0..16u64 {
        churners.push(thread::spawn(move || {
            for i in 0..625u64 {
                let mut client = Client::connect(&addr.to_string()).unwrap();
                let resp = client
                    .request(Request::Put {
                        key: (t * 625 + i) % 512,
                        value: 1,
                    })
                    .unwrap();
                assert!(!matches!(resp, Response::Err { .. }));
            }
        }));
    }
    for c in churners {
        c.join().unwrap();
    }

    // Everything reaped: no per-connection residue survives the churn.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_conn_count() > 0 {
        assert!(
            Instant::now() < deadline,
            "{} connections never reaped",
            server.active_conn_count()
        );
        thread::sleep(Duration::from_millis(2));
    }
    let after_threads = thread_count();
    assert!(
        after_threads <= baseline_threads + 64,
        "thread count drifted across 10k churned connections: \
         {baseline_threads} -> {after_threads}"
    );
    let snap = server.stats();
    assert_eq!(
        snap.serve_accepts, 10_000,
        "one decoded request per churned connection"
    );
    assert_conserved(&server);
    server.shutdown(Duration::from_secs(10)).unwrap();
}

/// Env hygiene: malformed `DTT_SERVE_*` values fall back to defaults
/// (and warn once on stderr — the warning itself is visually checked in
/// CI logs; the fallback is what's pinned here). This is the only test
/// in this binary touching these variables, so no cross-test races.
#[test]
fn malformed_env_knobs_fall_back_to_defaults() {
    std::env::set_var("DTT_SERVE_MAX_INFLIGHT", "banana");
    std::env::set_var("DTT_SERVE_QUEUE", "12.5");
    std::env::set_var("DTT_SERVE_DEADLINE_MS", "");
    std::env::set_var("DTT_SERVE_WORKERS", "4");
    std::env::set_var("DTT_SERVE_KEYSPACE", "65536");
    let defaults = ServeConfig::default();
    let cfg = ServeConfig::from_env();
    assert_eq!(cfg.max_inflight, defaults.max_inflight);
    assert_eq!(cfg.queue_cap, defaults.queue_cap);
    assert_eq!(cfg.deadline, defaults.deadline);
    // Valid values still apply alongside the malformed ones.
    assert_eq!(cfg.event_workers, 4);
    assert_eq!(cfg.key_space, 65_536);
    for var in [
        "DTT_SERVE_MAX_INFLIGHT",
        "DTT_SERVE_QUEUE",
        "DTT_SERVE_DEADLINE_MS",
        "DTT_SERVE_WORKERS",
        "DTT_SERVE_KEYSPACE",
    ] {
        std::env::remove_var(var);
    }
}
