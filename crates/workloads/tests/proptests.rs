//! Property tests over the workload suite: the DTT transformation must be
//! semantics-preserving under *any* runtime configuration, and kernel
//! helpers must satisfy their algebraic properties.

use dtt_core::{Config, Granularity, OverflowPolicy};
use dtt_workloads::bzip2::compress_block;
use dtt_workloads::gzip::lz77_tokens;
use dtt_workloads::parser::parse_sentence;
use dtt_workloads::twolf::{net_hpwl, pack_xy};
use dtt_workloads::vpr::{critical_path, manhattan};
use dtt_workloads::{suite, Scale};
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = Config> {
    (
        0usize..3, // workers
        prop_oneof![
            Just(Granularity::Exact),
            Just(Granularity::Word),
            Just(Granularity::Line)
        ],
        prop::bool::ANY, // suppress silent stores
        prop::bool::ANY, // coalesce
        1usize..8,       // queue capacity
        prop_oneof![
            Just(OverflowPolicy::ExecuteInline),
            Just(OverflowPolicy::DeferToJoin)
        ],
    )
        .prop_map(|(workers, g, suppress, coalesce, queue, overflow)| {
            Config::default()
                .with_workers(workers)
                .with_granularity(g)
                .with_silent_store_suppression(suppress)
                .with_coalescing(coalesce)
                .with_queue_capacity(queue)
                .with_overflow(overflow)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The flagship invariant under arbitrary configurations, on the two
    /// kernels with the most intricate DTT plumbing.
    #[test]
    fn mcf_and_equake_preserve_semantics(cfg in configs()) {
        for w in suite(Scale::Test).into_iter().take(2) {
            prop_assert_eq!(
                w.run_baseline(),
                w.run_dtt(cfg.clone()).digest,
                "{} diverged under {:?}", w.name(), cfg
            );
        }
    }
}

proptest! {
    /// BWT+MTF+RLE output length is bounded by 2n and deterministic.
    #[test]
    fn compress_block_bounds(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let (len, sum) = compress_block(&data);
        prop_assert!(len as usize <= 2 * data.len());
        prop_assert_eq!((len, sum), compress_block(&data));
    }

    /// LZ77 emits at most one token per input byte, and token count is
    /// monotone under pure repetition (a doubled input never needs more
    /// than twice the tokens plus one).
    #[test]
    fn lz77_token_bounds(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let tokens = lz77_tokens(&data);
        prop_assert!(tokens.len() <= data.len());
        let mut doubled = data.clone();
        doubled.extend_from_slice(&data);
        let tokens2 = lz77_tokens(&doubled);
        prop_assert!(tokens2.len() <= 2 * tokens.len() + 1);
    }

    /// Parse scores are at least the all-singles score (the DP maximizes).
    #[test]
    fn parse_score_dominates_singles(
        weights in prop::collection::vec(1u32..1000, 4..32),
        tokens in prop::collection::vec(0u16..4, 0..16),
    ) {
        let singles: i64 = tokens.iter().map(|&t| weights[t as usize] as i64).sum();
        prop_assert!(parse_sentence(&weights, &tokens) >= singles);
    }

    /// HPWL is translation-invariant and zero for single-cell nets.
    #[test]
    fn hpwl_properties(
        xs in prop::collection::vec((0u32..200, 0u32..200), 1..8),
        dx in 0u32..50,
        dy in 0u32..50,
    ) {
        let pos: Vec<u64> = xs.iter().map(|&(x, y)| pack_xy(x, y)).collect();
        let moved: Vec<u64> = xs.iter().map(|&(x, y)| pack_xy(x + dx, y + dy)).collect();
        let net: Vec<u32> = (0..pos.len() as u32).collect();
        prop_assert_eq!(net_hpwl(&pos, &net), net_hpwl(&moved, &net));
        prop_assert_eq!(net_hpwl(&pos, &net[..1]), 0);
    }

    /// Manhattan distance is a metric (symmetry + triangle inequality).
    #[test]
    fn manhattan_is_a_metric(
        a in (0u32..1000, 0u32..1000),
        b in (0u32..1000, 0u32..1000),
        c in (0u32..1000, 0u32..1000),
    ) {
        let (pa, pb, pc) = (pack_xy(a.0, a.1), pack_xy(b.0, b.1), pack_xy(c.0, c.1));
        prop_assert_eq!(manhattan(pa, pb), manhattan(pb, pa));
        prop_assert_eq!(manhattan(pa, pa), 0);
        prop_assert!(manhattan(pa, pc) <= manhattan(pa, pb) + manhattan(pb, pc));
    }

    /// Critical path never decreases when an edge is added.
    #[test]
    fn critical_path_monotone_in_edges(
        n in 3usize..12,
        seed_edges in prop::collection::vec((0u32..11, 1u32..12), 1..20),
    ) {
        let pos: Vec<u64> = (0..n).map(|i| pack_xy(i as u32 * 3, i as u32)).collect();
        let mut edges: Vec<(u32, u32)> = seed_edges
            .into_iter()
            .filter(|&(u, v)| (u as usize) < n && (v as usize) < n && u < v)
            .collect();
        if edges.is_empty() {
            edges.push((0, 1));
        }
        edges.sort_unstable();
        edges.dedup();
        let mut arrival = vec![0u64; n];
        let full = critical_path(&pos, &edges, &mut arrival);
        let partial = critical_path(&pos, &edges[..edges.len() - 1], &mut arrival);
        prop_assert!(full >= partial);
    }
}
