//! `equake` — sparse matrix–vector seismic time-stepper (after SPEC
//! 183.equake).
//!
//! equake's hot loop is `smvp`, a sparse matrix–vector product inside a
//! time-stepping loop. The stiffness matrix is static and the excitation
//! vector is *sparse in time*: each step only the nodes near the source
//! change, while the solver rewrites the rest of the vector with unchanged
//! values. Partitioning the product by column blocks turns each block's
//! partial result into a tthread triggered by changes to its slice of the
//! excitation vector — blocks whose slice saw only silent stores are
//! skipped.
//!
//! Model: matrix `A` in coordinate form grouped by column block,
//! per-block partial vectors `contribution[b]`, excitation `dx` (tracked),
//! and a per-step consumer `y[i] = Σ_b contribution[b][i]` folded into the
//! digest.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const DX_BASE: u64 = 0x1000_0000;
const VAL_BASE: u64 = 0x2000_0000;
const CONTRIB_BASE: u64 = 0x3000_0000;
const CONTRIB_STRIDE: u64 = 0x10_0000;
const VEL_BASE: u64 = 0x4000_0000;

/// One excitation write scheduled for a timestep.
#[derive(Debug, Clone, Copy)]
struct Excite {
    index: usize,
    value: f64,
}

/// The equake workload instance.
#[derive(Debug, Clone)]
pub struct Equake {
    n: usize,
    blocks: usize,
    /// Per block: `(row, col, value)` entries, rows ascending.
    entries: Vec<Vec<(u32, u32, f64)>>,
    dx0: Vec<f64>,
    /// Per step: the writes applied to `dx` (many silent).
    schedule: Vec<Vec<Excite>>,
}

impl Equake {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (n, blocks, nnz_per_row, steps, writes_per_step) = match scale {
            Scale::Test => (64, 4, 4, 12, 6),
            Scale::Train => (1_000, 8, 4, 100, 16),
            Scale::Reference => (4_000, 16, 4, 200, 24),
        };
        let mut rng = StdRng::seed_from_u64(0x6571_7561 + n as u64);
        let block_len = n / blocks;
        let mut entries: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); blocks];
        for row in 0..n {
            for _ in 0..nnz_per_row {
                let col = rng.gen_range(0..n);
                let val: f64 = rng.gen_range(-1.0..1.0);
                let b = (col / block_len).min(blocks - 1);
                entries[b].push((row as u32, col as u32, val));
            }
        }
        for block in &mut entries {
            block.sort_by_key(|&(r, c, _)| (r, c));
        }
        let dx0: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.1..0.1)).collect();

        // Excitation schedule: per step, a batch of writes. Most rewrite the
        // existing value (sensor refresh); the source writes rotate through
        // one block per step and really change.
        let mut dx = dx0.clone();
        let mut schedule = Vec::with_capacity(steps);
        for step in 0..steps {
            let mut writes = Vec::with_capacity(writes_per_step);
            let hot_block = step % blocks;
            for w in 0..writes_per_step {
                if w < writes_per_step / 4 {
                    // Genuine source excitation in one of several rotating
                    // blocks (the wavefront spans a growing region).
                    let hot_block = (hot_block + w) % blocks;
                    let idx = hot_block * block_len + rng.gen_range(0..block_len);
                    let value = rng.gen_range(-1.0..1.0);
                    dx[idx] = value;
                    writes.push(Excite { index: idx, value });
                } else {
                    // Silent refresh anywhere.
                    let idx = rng.gen_range(0..n);
                    writes.push(Excite {
                        index: idx,
                        value: dx[idx],
                    });
                }
            }
            schedule.push(writes);
        }
        Equake {
            n,
            blocks,
            entries,
            dx0,
            schedule,
        }
    }

    /// Problem size (rows/columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of column blocks (= tthreads).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Number of timesteps.
    pub fn steps(&self) -> usize {
        self.schedule.len()
    }

    fn block_len(&self) -> usize {
        self.n / self.blocks
    }

    fn kernel<P: Probe>(&self, p: &mut P, tts: &[u32]) -> u64 {
        let n = self.n;
        let mut dx = self.dx0.clone();
        let mut contribution = vec![vec![0.0f64; n]; self.blocks];
        let mut vel = vec![0.0f64; n];
        let mut digest = Digest::new();
        // Program initialization: load the excitation vector into memory.
        for (i, &v) in dx.iter().enumerate() {
            util::store_f64(p, 0, DX_BASE, i, v);
        }
        for writes in &self.schedule {
            for w in writes {
                util::store_f64(p, 1, DX_BASE, w.index, w.value);
                dx[w.index] = w.value;
            }
            for b in 0..self.blocks {
                p.region_begin(tts[b]);
                let contrib = &mut contribution[b];
                contrib.iter_mut().for_each(|v| *v = 0.0);
                p.compute(n as u64 / 8);
                for &(row, col, val) in &self.entries[b] {
                    let v = util::load_f64(p, 2, VAL_BASE, (b << 16) | row as usize, val);
                    let x = util::load_f64(p, 3, DX_BASE, col as usize, dx[col as usize]);
                    contrib[row as usize] += v * x;
                    p.compute(2);
                }
                util::store_f64(
                    p,
                    4,
                    CONTRIB_BASE + b as u64 * CONTRIB_STRIDE,
                    0,
                    contrib[0],
                );
                p.region_end(tts[b]);
                p.join(tts[b]);
            }
            // Consumer: assemble y, integrate the velocity field, and fold
            // a norm into the digest.
            let mut norm = 0.0f64;
            for i in 0..n {
                let mut y = 0.0f64;
                for (b, contrib) in contribution.iter().enumerate() {
                    y += util::load_f64(
                        p,
                        5,
                        CONTRIB_BASE + b as u64 * CONTRIB_STRIDE,
                        i,
                        contrib[i],
                    );
                }
                let v = util::load_f64(p, 6, VEL_BASE, i, vel[i]) + 0.02 * y;
                vel[i] = v;
                util::store_f64(p, 7, VEL_BASE, i, v);
                norm += v * v;
                p.compute(8);
            }
            digest.push_f64(norm);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct EquakeUser {
    entries: Vec<Vec<(u32, u32, f64)>>,
    contribution: Vec<Vec<f64>>,
    dx_scratch: Vec<f64>,
}

impl Workload for Equake {
    fn name(&self) -> &'static str {
        "equake"
    }

    fn spec_inspiration(&self) -> &'static str {
        "183.equake"
    }

    fn description(&self) -> &'static str {
        "column-blocked sparse matrix-vector product; excitation changes touch one block per step"
    }

    fn run_baseline(&self) -> u64 {
        let tts: Vec<u32> = (0..self.blocks as u32).collect();
        self.kernel(&mut NoProbe, &tts)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let n = self.n;
        let block_len = self.block_len();
        let mut rt = Runtime::new(
            cfg,
            EquakeUser {
                entries: self.entries.clone(),
                contribution: vec![vec![0.0f64; n]; self.blocks],
                dx_scratch: Vec::new(),
            },
        );
        let dx: TrackedArray<f64> = rt
            .alloc_array_from(&self.dx0)
            .expect("arena sized for workload");
        let mut tts = Vec::with_capacity(self.blocks);
        for b in 0..self.blocks {
            let tt = rt.register(&format!("smvp_block_{b}"), move |ctx| {
                // Mirror the baseline arithmetic exactly: zero, then
                // accumulate entries in order. The block only touches its
                // own dx slice, which we snapshot in one bulk read.
                let mut dxs = std::mem::take(&mut ctx.user_mut().dx_scratch);
                ctx.read_slice_into(dx, b * block_len, (b + 1) * block_len, &mut dxs);
                let user = ctx.user_mut();
                user.contribution[b].iter_mut().for_each(|v| *v = 0.0);
                for &(row, col, val) in &user.entries[b] {
                    let x = dxs[col as usize - b * block_len];
                    user.contribution[b][row as usize] += val * x;
                }
                user.dx_scratch = dxs;
            });
            rt.watch(tt, dx.range_of(b * block_len, (b + 1) * block_len))
                .expect("region in arena");
            rt.mark_dirty(tt).expect("registered tthread");
            tts.push(tt);
        }

        let mut digest = Digest::new();
        let mut vel = vec![0.0f64; n];
        for writes in &self.schedule {
            rt.with(|ctx| {
                for w in writes {
                    ctx.write(dx, w.index, w.value);
                }
            });
            for &tt in &tts {
                util::must_join(&mut rt, tt);
            }
            let norm = rt.with(|ctx| {
                let contribution = &ctx.user().contribution;
                let mut norm = 0.0f64;
                for (i, v) in vel.iter_mut().enumerate() {
                    let mut y = 0.0f64;
                    for contrib in contribution.iter() {
                        y += contrib[i];
                    }
                    *v += 0.02 * y;
                    norm += *v * *v;
                }
                norm
            });
            digest.push_f64(norm);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let block_len = self.block_len();
        let tts: Vec<u32> = (0..self.blocks)
            .map(|i| {
                let tt = b.declare_tthread(&format!("smvp_block_{i}"));
                b.declare_watch(
                    tt,
                    DX_BASE + (i * block_len) as u64 * 8,
                    block_len as u64 * 8,
                );
                tt
            })
            .collect();
        self.kernel(&mut b, &tts);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtt_matches_baseline() {
        let w = Equake::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Equake::new(Scale::Test);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default().with_workers(3)).digest
        );
    }

    #[test]
    fn cold_blocks_are_skipped() {
        let w = Equake::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let skips: u64 = run.tthreads.iter().map(|t| t.skips).sum();
        let execs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        // One hot block per step out of four: most joins skip.
        assert!(skips > execs, "skips={skips} execs={execs}");
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn trace_declares_one_watch_per_block() {
        let w = Equake::new(Scale::Test);
        let tr = w.trace();
        assert_eq!(tr.watches().len(), w.blocks());
        assert_eq!(tr.tthread_names().len(), w.blocks());
        assert!(tr.loads() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Equake::new(Scale::Test).run_baseline(),
            Equake::new(Scale::Test).run_baseline()
        );
    }
}
