//! Shared helpers: digesting, probed memory access, DTT run plumbing.

use dtt_core::{AddrRange, Error, Runtime, TthreadId};
use dtt_trace::{Probe, SiteId};

use crate::suite::{DttRun, TthreadReport};

/// FNV-1a accumulator for order-sensitive output digests.
///
/// # Examples
///
/// ```
/// use dtt_workloads::util::Digest;
/// let mut d = Digest::new();
/// d.push_u64(1);
/// d.push_f64(2.5);
/// let a = d.finish();
/// let mut e = Digest::new();
/// e.push_u64(1);
/// e.push_f64(2.5);
/// assert_eq!(a, e.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Creates a fresh accumulator.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds a `u64` into the digest.
    pub fn push_u64(&mut self, v: u64) {
        let mut h = self.0;
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        self.0 = h;
    }

    /// Folds an `f64` into the digest (by bit pattern).
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Returns the accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Reads `v` while reporting the load to the probe; returns `v`.
#[inline]
pub fn load_f64<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: f64) -> f64 {
    p.load(site, base + 8 * idx as u64, 8, v.to_bits());
    v
}

/// Reads `v` (u64) while reporting the load to the probe; returns `v`.
#[inline]
pub fn load_u64<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: u64) -> u64 {
    p.load(site, base + 8 * idx as u64, 8, v);
    v
}

/// Reads `v` (u32) while reporting the load to the probe; returns `v`.
#[inline]
pub fn load_u32<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: u32) -> u32 {
    p.load(site, base + 4 * idx as u64, 4, v as u64);
    v
}

/// Reads `v` (u8) while reporting the load to the probe; returns `v`.
#[inline]
pub fn load_u8<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: u8) -> u8 {
    p.load(site, base + idx as u64, 1, v as u64);
    v
}

/// Reports a store of an `f64` to the probe.
#[inline]
pub fn store_f64<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: f64) {
    p.store(site, base + 8 * idx as u64, 8, v.to_bits());
}

/// Reports a store of a `u64` to the probe.
#[inline]
pub fn store_u64<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: u64) {
    p.store(site, base + 8 * idx as u64, 8, v);
}

/// Reports a store of a `u32` to the probe.
#[inline]
pub fn store_u32<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: u32) {
    p.store(site, base + 4 * idx as u64, 4, v as u64);
}

/// Reports a store of a `u8` to the probe.
#[inline]
pub fn store_u8<P: Probe>(p: &mut P, site: SiteId, base: u64, idx: usize, v: u8) {
    p.store(site, base + idx as u64, 1, v as u64);
}

/// Collects the standard [`DttRun`] report from a finished runtime.
pub fn dtt_run_report<U: Send + 'static>(rt: &Runtime<U>, digest: u64) -> DttRun {
    let tthreads = rt
        .tthread_counters()
        .into_iter()
        .map(|(id, executions, skips, triggers)| TthreadReport {
            name: rt.tthread_name(id).unwrap_or_default(),
            executions,
            skips,
            triggers,
        })
        .collect();
    let edges = rt
        .graph_edges()
        .into_iter()
        .map(|e| {
            (
                rt.tthread_name(e.writer).unwrap_or_default(),
                rt.tthread_name(e.reader).unwrap_or_default(),
            )
        })
        .collect();
    DttRun {
        digest,
        stats: rt.stats(),
        tthreads,
        edges,
        obs: rt.is_observing().then(|| rt.obs_drain()),
    }
}

/// Declares `range` as `tt`'s output region, tolerating a
/// [`Error::TriggerCycle`] rejection. Coarse trigger granularities can
/// alias neighboring aggregate cells into one line and close *false*
/// cycles in the declared edge map; the declared edges are advisory
/// (cascades flow through the trigger table either way), so the workload
/// drops the declaration instead of failing. Any other error is a bug.
pub fn declare_output<U: Send + 'static>(rt: &mut Runtime<U>, tt: TthreadId, range: AddrRange) {
    match rt.declare_output(tt, range) {
        Ok(()) | Err(Error::TriggerCycle { .. }) => {}
        Err(other) => panic!("declaring a registered tthread's output region failed: {other:?}"),
    }
}

/// Joins `tt` and panics with a workload-labelled message on failure
/// (workload code only ever joins ids it registered).
pub fn must_join<U: Send + 'static>(rt: &mut Runtime<U>, tt: TthreadId) {
    rt.join(tt)
        .expect("joining a registered tthread cannot fail");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_trace::TraceBuilder;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.push_u64(1);
        a.push_u64(2);
        let mut b = Digest::new();
        b.push_u64(2);
        b.push_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_distinguishes_float_bits() {
        let mut a = Digest::new();
        a.push_f64(0.0);
        let mut b = Digest::new();
        b.push_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn probed_loads_emit_events_and_pass_through() {
        let mut b = TraceBuilder::new();
        assert_eq!(load_f64(&mut b, 1, 0x100, 2, 1.5), 1.5);
        assert_eq!(load_u64(&mut b, 1, 0x200, 0, 9), 9);
        assert_eq!(load_u32(&mut b, 1, 0x300, 1, 7), 7);
        assert_eq!(load_u8(&mut b, 1, 0x400, 3, 255), 255);
        store_f64(&mut b, 2, 0x100, 2, 2.5);
        store_u64(&mut b, 2, 0x200, 0, 1);
        store_u32(&mut b, 2, 0x300, 1, 2);
        store_u8(&mut b, 2, 0x400, 3, 3);
        let tr = b.finish().unwrap();
        assert_eq!(tr.loads(), 4);
        assert_eq!(tr.stores(), 4);
        // Addresses scale with the element size.
        let ev = tr.events();
        assert!(format!("{:?}", ev[0]).contains("272")); // 0x100 + 16
    }
}
