//! `pipeline` — a 3-stage dataflow pipeline (the multi-stage variant of
//! the R-Fig.12 wall-clock rows).
//!
//! A sensor-style ingest path: raw samples are CLAMPED to a valid range,
//! the clamped stream is folded into per-BUCKET sums, and a PEAK stage
//! tracks the maximum bucket. Each stage is a tthread watching the
//! previous stage's output array, so one raw-sample store walks a
//! three-deep trigger wave through the dependency graph.
//!
//! The stage functions are chosen to shed work at every depth: saturated
//! samples change the input but not the clamp (the wave dies at depth 0),
//! in-range samples ripple into the bucket sums but usually leave the
//! maximum alone (a depth-2 cutoff at PEAK), and repeated samples are
//! silent at the source. Disabling [`Config::early_cutoff`] turns every
//! saturated store into a full three-stage recomputation.

use dtt_core::{Config, Runtime};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const INPUT_BASE: u64 = 0x1000_0000;
const CLAMP_BASE: u64 = 0x2000_0000;
const BUCKET_BASE: u64 = 0x3000_0000;
const PEAK_BASE: u64 = 0x4000_0000;

/// Valid sample range; stores outside it saturate at the clamp stage.
const LO: i64 = 0;
const HI: i64 = 99;

/// The pipeline workload instance: initial samples plus store schedule.
#[derive(Debug, Clone)]
pub struct Pipeline {
    samples: usize,
    buckets: usize,
    input0: Vec<i64>,
    /// `(index, value)` raw-sample stores, one per step.
    stores: Vec<(usize, i64)>,
}

impl Pipeline {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (samples, buckets, steps) = match scale {
            Scale::Test => (96, 8, 50),
            Scale::Train => (256, 8, 400),
            Scale::Reference => (2_048, 16, 2_000),
        };
        let mut rng = StdRng::seed_from_u64(0x5069_7065 + samples as u64);
        // Roughly a third of the initial samples saturate.
        let input0: Vec<i64> = (0..samples).map(|_| rng.gen_range(-60..160)).collect();

        // Store schedule: ~4/10 saturated tweaks (input changes, clamp
        // does not), ~3/10 in-range changes, ~3/10 silent rewrites.
        let mut input = input0.clone();
        let mut stores = Vec::with_capacity(steps);
        for _ in 0..steps {
            let i = rng.gen_range(0..samples);
            let roll: u32 = rng.gen_range(0..10);
            let v = if roll < 4 {
                // A different value on the same side of the same bound as
                // the current one when possible, else push it out of range.
                if input[i] > HI {
                    HI + rng.gen_range(1..=60i64)
                } else if input[i] < LO {
                    LO - rng.gen_range(1..=60i64)
                } else {
                    HI + rng.gen_range(1..=60i64)
                }
            } else if roll < 7 {
                rng.gen_range(LO..=HI)
            } else {
                input[i]
            };
            input[i] = v;
            stores.push((i, v));
        }
        Pipeline {
            samples,
            buckets,
            input0,
            stores,
        }
    }

    /// Number of raw samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of steps in the store schedule.
    pub fn steps(&self) -> usize {
        self.stores.len()
    }

    fn bucket_of(&self, i: usize) -> usize {
        i % self.buckets
    }

    /// The baseline/traced kernel: rerun all three stages after every store.
    fn kernel<P: Probe>(&self, p: &mut P, tt_clamp: u32, tt_bucket: u32, tt_peak: u32) -> u64 {
        let (n, b) = (self.samples, self.buckets);
        let mut input = self.input0.clone();
        let mut clamped = vec![0i64; n];
        let mut sums = vec![0i64; b];
        let mut digest = Digest::new();
        for (i, &v) in input.iter().enumerate() {
            util::store_u64(p, 0, INPUT_BASE, i, v as u64);
        }
        // One initial recompute pass (no digest) before the store stream,
        // mirroring the runtime's forced initial mark-dirty joins so the
        // simulator's region-instance counts align with the software
        // runtime's execution counts.
        for store in std::iter::once(None).chain(self.stores.iter().map(Some)) {
            if let Some(&(idx, v)) = store {
                util::store_u64(p, 1, INPUT_BASE, idx, v as u64);
                input[idx] = v;
            }

            // Stage 1: clamp every sample.
            p.region_begin(tt_clamp);
            for i in 0..n {
                let raw = util::load_u64(p, 2, INPUT_BASE, i, input[i] as u64) as i64;
                clamped[i] = raw.clamp(LO, HI);
                util::store_u64(p, 3, CLAMP_BASE, i, clamped[i] as u64);
                p.compute(1);
            }
            p.region_end(tt_clamp);
            p.join(tt_clamp);

            // Stage 2: per-bucket sums.
            p.region_begin(tt_bucket);
            sums.fill(0);
            for i in 0..n {
                let c = util::load_u64(p, 4, CLAMP_BASE, i, clamped[i] as u64) as i64;
                sums[self.bucket_of(i)] += c;
            }
            for (j, &s) in sums.iter().enumerate() {
                util::store_u64(p, 5, BUCKET_BASE, j, s as u64);
            }
            p.compute(n as u64);
            p.region_end(tt_bucket);
            p.join(tt_bucket);

            // Stage 3: peak bucket.
            p.region_begin(tt_peak);
            let mut peak = i64::MIN;
            for (j, &s) in sums.iter().enumerate() {
                let c = util::load_u64(p, 6, BUCKET_BASE, j, s as u64) as i64;
                peak = peak.max(c);
            }
            util::store_u64(p, 7, PEAK_BASE, 0, peak as u64);
            p.compute(b as u64);
            p.region_end(tt_peak);
            p.join(tt_peak);

            if store.is_some() {
                digest.push_u64(peak as u64);
            }
        }
        digest.finish()
    }
}

impl Workload for Pipeline {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn spec_inspiration(&self) -> &'static str {
        "3-stage dataflow chain (R-Fig.12 multi-stage variant)"
    }

    fn description(&self) -> &'static str {
        "clamp→bucket→peak tthread chain; saturated and off-peak stores shed downstream stages"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0, 1, 2)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let (n, b) = (self.samples, self.buckets);
        let buckets = self.buckets;
        let mut rt = Runtime::new(cfg, ());
        let input = rt.alloc_array::<i64>(n).expect("arena sized for workload");
        let clamped = rt.alloc_array::<i64>(n).expect("arena sized for workload");
        let sums = rt.alloc_array::<i64>(b).expect("arena sized for workload");
        let peak_cell = rt.alloc_array::<i64>(1).expect("arena sized for workload");

        rt.with(|ctx| {
            for (i, &v) in self.input0.iter().enumerate() {
                ctx.write(input, i, v);
            }
        });

        let clamp_tt = rt.register("clamp", move |ctx| {
            for i in 0..n {
                let raw = ctx.read(input, i);
                ctx.write(clamped, i, raw.clamp(LO, HI));
            }
        });
        rt.watch(clamp_tt, input.range()).expect("region in arena");
        util::declare_output(&mut rt, clamp_tt, clamped.range());

        let bucket_tt = rt.register("bucket", move |ctx| {
            let mut acc = vec![0i64; b];
            for i in 0..n {
                acc[i % buckets] += ctx.read(clamped, i);
            }
            for (j, &s) in acc.iter().enumerate() {
                ctx.write(sums, j, s);
            }
        });
        rt.watch(bucket_tt, clamped.range())
            .expect("region in arena");
        util::declare_output(&mut rt, bucket_tt, sums.range());

        let peak_tt = rt.register("peak", move |ctx| {
            let mut peak = i64::MIN;
            for j in 0..b {
                peak = peak.max(ctx.read(sums, j));
            }
            ctx.write(peak_cell, 0, peak);
        });
        rt.watch(peak_tt, sums.range()).expect("region in arena");
        util::declare_output(&mut rt, peak_tt, peak_cell.range());

        for tt in [clamp_tt, bucket_tt, peak_tt] {
            rt.mark_dirty(tt).expect("registered tthread");
            util::must_join(&mut rt, tt);
        }

        let mut digest = Digest::new();
        for &(idx, v) in &self.stores {
            rt.with(|ctx| ctx.write(input, idx, v));
            util::must_join(&mut rt, clamp_tt);
            util::must_join(&mut rt, bucket_tt);
            util::must_join(&mut rt, peak_tt);
            digest.push_u64(rt.with(|ctx| ctx.read(peak_cell, 0)) as u64);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt_clamp = b.declare_tthread("clamp");
        let tt_bucket = b.declare_tthread("bucket");
        let tt_peak = b.declare_tthread("peak");
        b.declare_watch(tt_clamp, INPUT_BASE, 8 * self.samples as u64);
        b.declare_watch(tt_bucket, CLAMP_BASE, 8 * self.samples as u64);
        b.declare_watch(tt_peak, BUCKET_BASE, 8 * self.buckets as u64);
        self.kernel(&mut b, tt_clamp, tt_bucket, tt_peak);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_core::Config;

    #[test]
    fn dtt_matches_baseline() {
        let w = Pipeline::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Pipeline::new(Scale::Test);
        let base = w.run_baseline();
        assert_eq!(base, w.run_dtt(Config::default().with_workers(2)).digest);
    }

    #[test]
    fn dtt_matches_baseline_without_early_cutoff() {
        let w = Pipeline::new(Scale::Test);
        let base = w.run_baseline();
        assert_eq!(
            base,
            w.run_dtt(Config::default().with_early_cutoff(false)).digest
        );
    }

    #[test]
    fn waves_cascade_and_cut_off() {
        let w = Pipeline::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let c = run.stats.counters();
        assert!(c.cascades > 0, "in-range stores must ripple downstream");
        assert!(
            c.cascade_cutoffs > 0,
            "off-peak bucket changes must cut off at PEAK"
        );
        assert_eq!(
            c.cascades,
            c.cascade_enqueues + c.cascade_coalesced + c.cascade_cutoffs,
            "wave conservation"
        );
    }

    #[test]
    fn cutoff_off_recomputes_more() {
        let w = Pipeline::new(Scale::Test);
        let on = w.run_dtt(Config::default());
        let off = w.run_dtt(Config::default().with_early_cutoff(false));
        assert_eq!(on.digest, off.digest);
        assert!(
            off.stats.counters().executions > on.stats.counters().executions,
            "off={} on={}",
            off.stats.counters().executions,
            on.stats.counters().executions
        );
    }

    #[test]
    fn trace_is_well_formed() {
        let w = Pipeline::new(Scale::Test);
        let tr = w.trace();
        assert_eq!(
            tr.tthread_names(),
            &[
                "clamp".to_string(),
                "bucket".to_string(),
                "peak".to_string()
            ]
        );
        assert_eq!(tr.watches().len(), 3);
        assert!(tr.instructions() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Pipeline::new(Scale::Test).run_baseline(),
            Pipeline::new(Scale::Test).run_baseline()
        );
    }
}
