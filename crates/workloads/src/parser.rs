//! `parser` — dictionary-driven sentence analysis (after SPEC 197.parser).
//!
//! The link-grammar parser re-derives per-sentence structures from its
//! dictionary on every pass, although the dictionary is effectively
//! immutable during a run. We model a service that re-analyzes its corpus
//! every round (the baseline cannot know the dictionary is unchanged);
//! occasional dictionary maintenance really changes a few entries, and
//! no-op maintenance writes the same weights back. Each sentence batch is a
//! tthread watching the dictionary.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const DICT_BASE: u64 = 0x1000_0000;
const SCORE_BASE: u64 = 0x2000_0000;
const TOKEN_BASE: u64 = 0x3000_0000;

/// Scores one sentence against the dictionary with a two-state Viterbi-like
/// dynamic program: each token either stands alone (its weight) or fuses
/// with the previous token (a bigram bonus).
///
/// # Examples
///
/// ```
/// use dtt_workloads::parser::parse_sentence;
/// let dict = vec![5, 7, 11];
/// assert_eq!(parse_sentence(&dict, &[0]), 5);
/// // With two tokens, the fused path may beat the sum of singles.
/// assert!(parse_sentence(&dict, &[0, 1]) >= 12);
/// ```
pub fn parse_sentence(dict: &[u32], tokens: &[u16]) -> i64 {
    parse_sentence_with(&mut |t| dict[t as usize] as i64, tokens)
}

/// [`parse_sentence`] generalized over the weight lookup, so the DTT
/// implementation can read weights on demand from tracked memory with the
/// exact same arithmetic.
pub fn parse_sentence_with<W: FnMut(u16) -> i64>(w: &mut W, tokens: &[u16]) -> i64 {
    if tokens.is_empty() {
        return 0;
    }
    // One weight lookup per token: the previous token's weight is carried
    // across iterations (the dictionary is stable within a sentence).
    let mut w_prev = w(tokens[0]);
    let mut prev2 = 0i64; // score up to t-2
    let mut prev1 = w_prev; // score up to t-1
    for &tok in &tokens[1..] {
        let w_cur = w(tok);
        let single = prev1 + w_cur;
        let fused = prev2 + (w_prev * w_cur) % 97 + 3;
        let cur = single.max(fused);
        prev2 = prev1;
        prev1 = cur;
        w_prev = w_cur;
    }
    prev1
}

/// One dictionary maintenance event.
#[derive(Debug, Clone)]
struct Maintenance {
    /// `(entry, weight)` writes; silent when the weight is unchanged.
    writes: Vec<(usize, u32)>,
}

/// The parser workload instance.
#[derive(Debug, Clone)]
pub struct Parser {
    dict_len: usize,
    groups: usize,
    dict0: Vec<u32>,
    /// Sentences grouped into batches (one tthread per batch).
    batches: Vec<Vec<Vec<u16>>>,
    maintenance: Vec<Maintenance>,
}

impl Parser {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (dict_len, groups, sentences_per_group, sentence_len, rounds, real_period) = match scale
        {
            Scale::Test => (64, 4, 4, 8, 10, 3),
            Scale::Train => (2_048, 8, 24, 20, 60, 5),
            Scale::Reference => (8_192, 16, 40, 24, 120, 5),
        };
        let mut rng = StdRng::seed_from_u64(0x7061_7273 + dict_len as u64);
        let dict0: Vec<u32> = (0..dict_len).map(|_| rng.gen_range(1..1000)).collect();
        let batches: Vec<Vec<Vec<u16>>> = (0..groups)
            .map(|_| {
                (0..sentences_per_group)
                    .map(|_| {
                        (0..sentence_len)
                            .map(|_| rng.gen_range(0..dict_len) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut dict = dict0.clone();
        let maintenance = (0..rounds)
            .map(|round| {
                let mut writes = Vec::new();
                if round % real_period == real_period - 1 {
                    for _ in 0..3 {
                        let e = rng.gen_range(0..dict_len);
                        let v = rng.gen_range(1..1000);
                        dict[e] = v;
                        writes.push((e, v));
                    }
                } else {
                    for _ in 0..3 {
                        let e = rng.gen_range(0..dict_len);
                        writes.push((e, dict[e]));
                    }
                }
                Maintenance { writes }
            })
            .collect();
        Parser {
            dict_len,
            groups,
            dict0,
            batches,
            maintenance,
        }
    }

    /// Dictionary entries.
    pub fn dict_len(&self) -> usize {
        self.dict_len
    }

    /// Sentence batches (= tthreads).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Analysis rounds.
    pub fn rounds(&self) -> usize {
        self.maintenance.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tts: &[u32]) -> u64 {
        let mut dict = self.dict0.clone();
        let mut scores = vec![0i64; self.groups];
        let mut digest = Digest::new();
        // Program initialization: load the dictionary.
        for (e, &v) in dict.iter().enumerate() {
            util::store_u32(p, 0, DICT_BASE, e, v);
        }
        for maint in &self.maintenance {
            for &(e, v) in &maint.writes {
                util::store_u32(p, 1, DICT_BASE, e, v);
                dict[e] = v;
            }
            for (g, batch) in self.batches.iter().enumerate() {
                p.region_begin(tts[g]);
                let mut total = 0i64;
                for sentence in batch {
                    for &t in sentence {
                        util::load_u32(p, 2, DICT_BASE, t as usize, dict[t as usize]);
                    }
                    p.compute(6 * sentence.len() as u64);
                    total += parse_sentence(&dict, sentence);
                }
                scores[g] = total;
                util::store_u64(p, 3, SCORE_BASE, g, total as u64);
                p.region_end(tts[g]);
                p.join(tts[g]);
            }
            for &s in &scores {
                digest.push_u64(s as u64);
            }
            // Query pass: the service answers lookups against the cached
            // analyses every round, scanning the token streams.
            let mut answer = 0i64;
            for (g, batch) in self.batches.iter().enumerate() {
                let base = TOKEN_BASE + ((g as u64) << 20);
                let mut off = 0usize;
                for sentence in batch {
                    for &t in sentence {
                        util::load_u32(p, 4, base, off, t as u32);
                        off += 1;
                        answer += scores[g] % 1000 + t as i64;
                    }
                    p.compute(12 * sentence.len() as u64);
                }
            }
            digest.push_u64(answer as u64);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct ParserUser {
    batches: Vec<Vec<Vec<u16>>>,
    scores: Vec<i64>,
}

impl Workload for Parser {
    fn name(&self) -> &'static str {
        "parser"
    }

    fn spec_inspiration(&self) -> &'static str {
        "197.parser"
    }

    fn description(&self) -> &'static str {
        "per-batch sentence re-analysis gated on dictionary changes; most maintenance is silent"
    }

    fn run_baseline(&self) -> u64 {
        let tts: Vec<u32> = (0..self.groups as u32).collect();
        self.kernel(&mut NoProbe, &tts)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let dict_len = self.dict_len;
        let mut rt = Runtime::new(
            cfg,
            ParserUser {
                batches: self.batches.clone(),
                scores: vec![0i64; self.groups],
            },
        );
        let dict: TrackedArray<u32> = rt
            .alloc_array_from(&self.dict0)
            .expect("arena sized for workload");
        let mut tts = Vec::with_capacity(self.groups);
        for g in 0..self.groups {
            let tt = rt.register(&format!("parse_batch_{g}"), move |ctx| {
                // Read dictionary weights on demand: each batch touches only
                // a small slice of the dictionary.
                let batch = std::mem::take(&mut ctx.user_mut().batches[g]);
                let total = batch
                    .iter()
                    .map(|s| parse_sentence_with(&mut |t| ctx.read(dict, t as usize) as i64, s))
                    .sum::<i64>();
                let user = ctx.user_mut();
                user.batches[g] = batch;
                user.scores[g] = total;
                let _ = dict_len;
            });
            rt.watch(tt, dict.range()).expect("region in arena");
            rt.mark_dirty(tt).expect("registered tthread");
            tts.push(tt);
        }

        let mut digest = Digest::new();
        // Let worker contexts pick up the initially-dirty batches before the
        // maintenance stream starts: their detached re-parses then run
        // concurrently with the first rounds' dictionary stores (the overlap
        // `dtt-cli obs timeline` visualizes). A no-op under the deferred
        // executor (workers = 0), and semantics-neutral everywhere — a body
        // whose inputs change mid-flight re-runs at commit.
        std::thread::yield_now();
        for maint in &self.maintenance {
            rt.with(|ctx| {
                for &(e, v) in &maint.writes {
                    ctx.write(dict, e, v);
                }
            });
            for &tt in &tts {
                util::must_join(&mut rt, tt);
            }
            rt.with(|ctx| {
                let user = ctx.user();
                for &s in &user.scores {
                    digest.push_u64(s as u64);
                }
                let mut answer = 0i64;
                for (g, batch) in user.batches.iter().enumerate() {
                    for sentence in batch {
                        for &t in sentence {
                            answer += user.scores[g] % 1000 + t as i64;
                        }
                    }
                }
                digest.push_u64(answer as u64);
            });
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tts: Vec<u32> = (0..self.groups)
            .map(|g| {
                let tt = b.declare_tthread(&format!("parse_batch_{g}"));
                b.declare_watch(tt, DICT_BASE, 4 * self.dict_len as u64);
                tt
            })
            .collect();
        self.kernel(&mut b, &tts);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_dp_prefers_best_path() {
        let dict = vec![10, 10, 10];
        // Three singles = 30; any fusion = 10 + (100 % 97 + 3) = 16 at best
        // for the pair plus 10 for the remaining single = 26.
        assert_eq!(parse_sentence(&dict, &[0, 1, 2]), 30);
        assert_eq!(parse_sentence(&dict, &[]), 0);
    }

    #[test]
    fn fused_path_wins_when_bonus_is_large() {
        // w=1: singles 1+1=2; fused = (1*1)%97+3 = 4.
        let dict = vec![1, 1];
        assert_eq!(parse_sentence(&dict, &[0, 1]), 4);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Parser::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn silent_maintenance_skips_all_batches() {
        let w = Parser::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let skips: u64 = run.tthreads.iter().map(|t| t.skips).sum();
        let execs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        assert!(skips > execs, "skips={skips} execs={execs}");
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Parser::new(Scale::Test);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default().with_workers(2)).digest
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Parser::new(Scale::Test).run_baseline(),
            Parser::new(Scale::Test).run_baseline()
        );
    }
}
