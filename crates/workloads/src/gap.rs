//! `gap` — computer-algebra operation tables (after SPEC 254.gap).
//!
//! gap manipulates algebraic structures through operation tables and
//! repeatedly re-derives element properties (orders, inverses) that only
//! change when the table itself changes. Sessions alternate long
//! read-only computations with rare table edits — and table "normalization"
//! passes that rewrite entries unchanged. The derived-property pass is a
//! tthread watching the operation table (a [`dtt_core::TrackedMatrix`]).

use dtt_core::{Config, Runtime, TrackedMatrix};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const TABLE_BASE: u64 = 0x1000_0000;
const ORDER_BASE: u64 = 0x2000_0000;

/// Derives the "order" of every element: the number of self-applications
/// of `x` (through the table) before revisiting a value, capped at `n`.
/// Also derives each element's right-inverse if one exists.
pub fn derive_orders(table: &[u32], n: usize) -> (Vec<u32>, Vec<i32>) {
    let mut orders = vec![0u32; n];
    let mut inverses = vec![-1i32; n];
    for x in 0..n {
        // Walk x, x*x, (x*x)*x, ... until a repeat or the cap.
        let mut seen = vec![false; n];
        let mut cur = x;
        let mut steps = 0u32;
        while !seen[cur] && (steps as usize) < n {
            seen[cur] = true;
            cur = table[cur * n + x] as usize % n;
            steps += 1;
        }
        orders[x] = steps;
        for y in 0..n {
            if (table[x * n + y] as usize).is_multiple_of(n) {
                inverses[x] = y as i32;
                break;
            }
        }
    }
    (orders, inverses)
}

/// One session round.
#[derive(Debug, Clone)]
struct Round {
    /// Table writes `(row, col, value)`; normalization passes rewrite the
    /// current value.
    writes: Vec<(usize, usize, u32)>,
    /// Words to evaluate: sequences of element indexes folded through the
    /// table.
    words: Vec<Vec<u16>>,
}

/// The gap workload instance.
#[derive(Debug, Clone)]
pub struct Gap {
    n: usize,
    table0: Vec<u32>,
    rounds: Vec<Round>,
}

impl Gap {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (n, rounds_n, words_n, word_len, edit_period) = match scale {
            Scale::Test => (12, 10, 6, 6, 3),
            Scale::Train => (64, 80, 64, 16, 4),
            Scale::Reference => (96, 200, 96, 20, 4),
        };
        let mut rng = StdRng::seed_from_u64(0x6761_7000 + n as u64);
        // A cyclic-group-flavoured table with noise: closed but not a group.
        let table0: Vec<u32> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                ((r + c) % n) as u32
            })
            .collect();
        let mut table = table0.clone();
        let rounds = (0..rounds_n)
            .map(|round| {
                let mut writes = Vec::new();
                for k in 0..4 {
                    let r = rng.gen_range(0..n);
                    let c = rng.gen_range(0..n);
                    if k == 0 && round % edit_period == edit_period - 1 {
                        let v = rng.gen_range(0..n) as u32;
                        table[r * n + c] = v;
                        writes.push((r, c, v));
                    } else {
                        // Normalization pass: rewrite in place.
                        writes.push((r, c, table[r * n + c]));
                    }
                }
                let words = (0..words_n)
                    .map(|_| (0..word_len).map(|_| rng.gen_range(0..n) as u16).collect())
                    .collect();
                Round { writes, words }
            })
            .collect();
        Gap { n, table0, rounds }
    }

    /// Elements in the structure (table is `n × n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Session rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tt: u32) -> u64 {
        let n = self.n;
        let mut table = self.table0.clone();
        let mut orders = vec![0u32; n];
        let mut inverses = vec![-1i32; n];
        let mut digest = Digest::new();
        // Program initialization: load the operation table.
        for (i, &v) in table.iter().enumerate() {
            util::store_u32(p, 0, TABLE_BASE, i, v);
        }
        for round in &self.rounds {
            for &(r, c, v) in &round.writes {
                util::store_u32(p, 1, TABLE_BASE, r * n + c, v);
                table[r * n + c] = v;
            }
            // Derived-property pass (the tthread region).
            p.region_begin(tt);
            for (i, &v) in table.iter().enumerate() {
                util::load_u32(p, 2, TABLE_BASE, i, v);
            }
            p.compute((n * n * 3) as u64);
            let derived = derive_orders(&table, n);
            orders = derived.0;
            inverses = derived.1;
            util::store_u32(p, 3, ORDER_BASE, 0, orders[0]);
            p.region_end(tt);
            p.join(tt);

            // Word evaluation: fold each word through the table, scoring
            // with the derived orders.
            let mut answer = 0u64;
            for word in &round.words {
                let mut cur = 0usize;
                for &e in word {
                    let v = util::load_u32(
                        p,
                        4,
                        TABLE_BASE,
                        cur * n + e as usize,
                        table[cur * n + e as usize],
                    );
                    cur = v as usize % n;
                    p.compute(3);
                }
                answer = answer
                    .wrapping_mul(31)
                    .wrapping_add(cur as u64 + orders[cur] as u64 + inverses[cur] as u64);
            }
            digest.push_u64(answer);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct GapUser {
    orders: Vec<u32>,
    inverses: Vec<i32>,
    scratch: Vec<u32>,
}

impl Workload for Gap {
    fn name(&self) -> &'static str {
        "gap"
    }

    fn spec_inspiration(&self) -> &'static str {
        "254.gap"
    }

    fn description(&self) -> &'static str {
        "algebraic derived-property pass gated on operation-table edits; normalization is silent"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let n = self.n;
        let mut rt = Runtime::new(
            cfg,
            GapUser {
                orders: vec![0; n],
                inverses: vec![-1; n],
                scratch: Vec::new(),
            },
        );
        let table: TrackedMatrix<u32> = rt.alloc_matrix(n, n).expect("arena sized for workload");
        rt.with(|ctx| {
            for (i, &v) in self.table0.iter().enumerate() {
                ctx.init_at(table.as_array(), i, v);
            }
        });
        let derive = rt.register("derive_orders", move |ctx| {
            let mut scratch = std::mem::take(&mut ctx.user_mut().scratch);
            ctx.read_all_into(table.as_array(), &mut scratch);
            let (orders, inverses) = derive_orders(&scratch, n);
            let user = ctx.user_mut();
            user.scratch = scratch;
            user.orders = orders;
            user.inverses = inverses;
        });
        rt.watch(derive, table.range()).expect("region in arena");
        rt.mark_dirty(derive).expect("registered tthread");

        let mut shadow = self.table0.clone();
        let mut digest = Digest::new();
        for round in &self.rounds {
            rt.with(|ctx| {
                for &(r, c, v) in &round.writes {
                    ctx.set(table.at(r, c), v);
                    shadow[r * n + c] = v;
                }
            });
            util::must_join(&mut rt, derive);
            let answer = rt.with(|ctx| {
                let user = ctx.user();
                let mut answer = 0u64;
                for word in &round.words {
                    let mut cur = 0usize;
                    for &e in word {
                        cur = shadow[cur * n + e as usize] as usize % n;
                    }
                    answer = answer.wrapping_mul(31).wrapping_add(
                        cur as u64 + user.orders[cur] as u64 + user.inverses[cur] as u64,
                    );
                }
                answer
            });
            digest.push_u64(answer);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt = b.declare_tthread("derive_orders");
        b.declare_watch(tt, TABLE_BASE, 4 * (self.n * self.n) as u64);
        self.kernel(&mut b, tt);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_of_cyclic_table() {
        // Cyclic table: t[r][c] = (r+c) mod n. Walking x -> x*x gives the
        // additive orbit of x.
        let n = 6;
        let table: Vec<u32> = (0..n * n).map(|i| ((i / n + i % n) % n) as u32).collect();
        let (orders, inverses) = derive_orders(&table, n);
        // Element 0 is the identity: 0*0 = 0, so its walk stops after 1.
        assert_eq!(orders[0], 1);
        // Every element has an additive inverse in Z6.
        assert!(inverses.iter().all(|&i| i >= 0));
        assert_eq!(inverses[2], 4); // 2 + 4 = 0 (mod 6)
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Gap::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn normalization_rounds_skip_derivation() {
        let w = Gap::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let tt = &run.tthreads[0];
        assert!(tt.skips > 0);
        assert!(tt.executions < w.rounds() as u64);
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Gap::new(Scale::Test);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default().with_workers(2)).digest
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Gap::new(Scale::Test).run_baseline(),
            Gap::new(Scale::Test).run_baseline()
        );
    }
}
