//! The workload abstraction and the benchmark suite registry.

use std::fmt;

use dtt_core::{Config, ObsRecording, StatsSnapshot};
use dtt_trace::Trace;

/// Input scale of a workload run, mirroring SPEC's test/train/ref inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests.
    Test,
    /// Medium inputs for quick experiments.
    #[default]
    Train,
    /// Full-size inputs for the headline numbers.
    Reference,
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scale::Test => "test",
            Scale::Train => "train",
            Scale::Reference => "ref",
        })
    }
}

/// Per-tthread report from a DTT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TthreadReport {
    /// Name the tthread was registered under.
    pub name: String,
    /// Times the tthread body executed.
    pub executions: u64,
    /// Joins that skipped because the tthread was clean.
    pub skips: u64,
    /// Triggers raised for the tthread.
    pub triggers: u64,
}

/// Result of running a workload's DTT implementation.
#[derive(Debug, Clone)]
pub struct DttRun {
    /// Digest of the computation's outputs; must equal the baseline digest.
    pub digest: u64,
    /// Runtime statistics.
    pub stats: StatsSnapshot,
    /// Per-tthread counters.
    pub tthreads: Vec<TthreadReport>,
    /// Declared dependency-graph edges as `(writer, reader)` tthread name
    /// pairs — nonempty only for the multi-stage kernels that call
    /// [`dtt_core::Runtime::declare_output`].
    pub edges: Vec<(String, String)>,
    /// Drained lifecycle events, present when the run's [`Config`] enabled
    /// observability (see [`Config::with_observability`]).
    pub obs: Option<ObsRecording>,
}

/// A benchmark kernel with baseline, DTT, and traced implementations.
///
/// Implementations guarantee that [`Workload::run_baseline`] and
/// [`Workload::run_dtt`] compute bit-identical digests — the DTT refactoring
/// is semantics-preserving — and that [`Workload::trace`] replays the
/// baseline computation with region/watch annotations.
pub trait Workload {
    /// Short kernel name (`"mcf"`, `"equake"`, …).
    fn name(&self) -> &'static str;

    /// The SPEC benchmark this kernel is modelled after.
    fn spec_inspiration(&self) -> &'static str;

    /// One-line description of the kernel and its redundancy structure.
    fn description(&self) -> &'static str;

    /// Runs the un-instrumented baseline and returns the output digest.
    fn run_baseline(&self) -> u64;

    /// Runs the DTT implementation on a fresh runtime configured by `cfg`.
    fn run_dtt(&self, cfg: Config) -> DttRun;

    /// Emits the annotated program trace of the baseline execution.
    fn trace(&self) -> Trace;
}

/// Builds the full suite at the given scale, in the paper's listing order.
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::mcf::Mcf::new(scale)),
        Box::new(crate::equake::Equake::new(scale)),
        Box::new(crate::art::Art::new(scale)),
        Box::new(crate::ammp::Ammp::new(scale)),
        Box::new(crate::bzip2::Bzip2::new(scale)),
        Box::new(crate::gzip::Gzip::new(scale)),
        Box::new(crate::parser::Parser::new(scale)),
        Box::new(crate::twolf::Twolf::new(scale)),
        Box::new(crate::vpr::Vpr::new(scale)),
        Box::new(crate::mesa::Mesa::new(scale)),
        Box::new(crate::vortex::Vortex::new(scale)),
        Box::new(crate::crafty::Crafty::new(scale)),
        Box::new(crate::gap::Gap::new(scale)),
        Box::new(crate::perlbmk::Perlbmk::new(scale)),
        Box::new(crate::spreadsheet::Spreadsheet::new(scale)),
        Box::new(crate::pipeline::Pipeline::new(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_sixteen_distinct_kernels() {
        let s = suite(Scale::Test);
        assert_eq!(s.len(), 16);
        let mut names: Vec<_> = s.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn every_kernel_names_its_spec_model() {
        for w in suite(Scale::Test) {
            assert!(!w.spec_inspiration().is_empty());
            assert!(!w.description().is_empty());
        }
    }

    #[test]
    fn scale_display() {
        assert_eq!(Scale::Test.to_string(), "test");
        assert_eq!(Scale::Train.to_string(), "train");
        assert_eq!(Scale::Reference.to_string(), "ref");
        assert_eq!(Scale::default(), Scale::Train);
    }
}
