//! `art` — adaptive resonance theory image recognizer (after SPEC 179.art).
//!
//! art scans a stream of images against a set of category weight vectors.
//! During recognition the weights are read-only; they change only on the
//! occasional training update — yet the original code recomputes the
//! weight-derived F1-layer terms (per-category norms and normalized
//! weights) for every image. DTT attaches that normalization to the weight
//! matrix: it reruns only after a real training update, and training
//! updates that rewrite identical weights are silent.
//!
//! Model: `weights[c][j]` (tracked), per-category `norm[c]` and normalized
//! weights (the tthread outputs), and a per-image sparse activation match
//! over the normalized weights (the consumer).

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const WEIGHTS_BASE: u64 = 0x1000_0000;
const NORM_BASE: u64 = 0x2000_0000;
const WNORM_BASE: u64 = 0x3000_0000;

/// One training update applied before an image batch.
#[derive(Debug, Clone)]
struct Training {
    /// `(category, feature, new_weight)` writes; many rewrite the old value.
    writes: Vec<(usize, usize, f64)>,
}

/// The art workload instance.
#[derive(Debug, Clone)]
pub struct Art {
    categories: usize,
    features: usize,
    weights0: Vec<f64>,
    /// Per image: active feature indices (sparse).
    images: Vec<Vec<u32>>,
    /// Training events, one per image (mostly empty / silent writes).
    training: Vec<Training>,
}

impl Art {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (categories, features, images, active, train_period) = match scale {
            Scale::Test => (8, 32, 24, 12, 4),
            Scale::Train => (32, 128, 200, 56, 3),
            Scale::Reference => (64, 256, 500, 112, 3),
        };
        let mut rng = StdRng::seed_from_u64(0x6172_7400 + features as u64);
        let weights0: Vec<f64> = (0..categories * features)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let images_v: Vec<Vec<u32>> = (0..images)
            .map(|_| {
                (0..active)
                    .map(|_| rng.gen_range(0..features) as u32)
                    .collect()
            })
            .collect();
        let mut weights = weights0.clone();
        let training = (0..images)
            .map(|i| {
                let mut writes = Vec::new();
                if i % train_period == train_period - 1 {
                    // Real update: nudge a handful of weights in one category.
                    let c = rng.gen_range(0..categories);
                    for _ in 0..4 {
                        let j = rng.gen_range(0..features);
                        let v = rng.gen_range(0.0..1.0);
                        weights[c * features + j] = v;
                        writes.push((c, j, v));
                    }
                } else {
                    // Reinforcement pass that lands on the same values.
                    let c = rng.gen_range(0..categories);
                    for _ in 0..2 {
                        let j = rng.gen_range(0..features);
                        writes.push((c, j, weights[c * features + j]));
                    }
                }
                Training { writes }
            })
            .collect();
        Art {
            categories,
            features,
            weights0,
            images: images_v,
            training,
        }
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Features per category.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of images scanned.
    pub fn images(&self) -> usize {
        self.images.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tt: u32) -> u64 {
        let (cats, feats) = (self.categories, self.features);
        let mut weights = self.weights0.clone();
        let mut norm = vec![0.0f64; cats];
        let mut wnorm = vec![0.0f64; cats * feats];
        let mut digest = Digest::new();
        // Program initialization: load the trained weights into memory.
        for (i, &w) in weights.iter().enumerate() {
            util::store_f64(p, 0, WEIGHTS_BASE, i, w);
        }
        for (img, train) in self.images.iter().zip(&self.training) {
            for &(c, j, v) in &train.writes {
                util::store_f64(p, 1, WEIGHTS_BASE, c * feats + j, v);
                weights[c * feats + j] = v;
            }

            // F1 layer: norms + normalized weights (the tthread region).
            p.region_begin(tt);
            for c in 0..cats {
                let mut s = 0.0f64;
                for j in 0..feats {
                    s += util::load_f64(p, 2, WEIGHTS_BASE, c * feats + j, weights[c * feats + j]);
                }
                let total = s + 1.0;
                norm[c] = total;
                util::store_f64(p, 3, NORM_BASE, c, total);
                for j in 0..feats {
                    let w = weights[c * feats + j] / total;
                    wnorm[c * feats + j] = w;
                    util::store_f64(p, 4, WNORM_BASE, c * feats + j, w);
                }
                p.compute(2 * feats as u64 + 2);
            }
            p.region_end(tt);
            p.join(tt);

            // Recognition: sparse activation over normalized weights.
            let mut best = 0usize;
            let mut best_act = f64::MIN;
            for c in 0..cats {
                let mut act = 0.0f64;
                for &j in img {
                    act += util::load_f64(
                        p,
                        5,
                        WNORM_BASE,
                        c * feats + j as usize,
                        wnorm[c * feats + j as usize],
                    );
                }
                p.compute(img.len() as u64);
                if act > best_act {
                    best_act = act;
                    best = c;
                }
            }
            digest.push_u64(best as u64);
            digest.push_f64(best_act);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct ArtUser {
    norm: Vec<f64>,
    wnorm: Vec<f64>,
    weights_copy: Vec<f64>,
}

impl Workload for Art {
    fn name(&self) -> &'static str {
        "art"
    }

    fn spec_inspiration(&self) -> &'static str {
        "179.art"
    }

    fn description(&self) -> &'static str {
        "neural-net F1-layer normalization recomputed per image; weights change only on training"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let (cats, feats) = (self.categories, self.features);
        let mut rt = Runtime::new(
            cfg,
            ArtUser {
                norm: vec![0.0f64; cats],
                wnorm: vec![0.0f64; cats * feats],
                weights_copy: Vec::new(),
            },
        );
        let weights: TrackedArray<f64> = rt
            .alloc_array_from(&self.weights0)
            .expect("arena sized for workload");
        let f1 = rt.register("f1_layer", move |ctx| {
            let mut w = std::mem::take(&mut ctx.user_mut().weights_copy);
            ctx.read_all_into(weights, &mut w);
            let user = ctx.user_mut();
            for c in 0..cats {
                let mut s = 0.0f64;
                for j in 0..feats {
                    s += w[c * feats + j];
                }
                let total = s + 1.0;
                user.norm[c] = total;
                for j in 0..feats {
                    user.wnorm[c * feats + j] = w[c * feats + j] / total;
                }
            }
            user.weights_copy = w;
        });
        rt.watch(f1, weights.range()).expect("region in arena");
        rt.mark_dirty(f1).expect("registered tthread");

        let mut digest = Digest::new();
        for (img, train) in self.images.iter().zip(&self.training) {
            rt.with(|ctx| {
                for &(c, j, v) in &train.writes {
                    ctx.write(weights, c * feats + j, v);
                }
            });
            util::must_join(&mut rt, f1);
            let (best, best_act) = rt.with(|ctx| {
                let wnorm = &ctx.user().wnorm;
                let mut best = 0usize;
                let mut best_act = f64::MIN;
                for c in 0..cats {
                    let mut act = 0.0f64;
                    for &j in img {
                        act += wnorm[c * feats + j as usize];
                    }
                    if act > best_act {
                        best_act = act;
                        best = c;
                    }
                }
                (best, best_act)
            });
            digest.push_u64(best as u64);
            digest.push_f64(best_act);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt = b.declare_tthread("f1_layer");
        b.declare_watch(
            tt,
            WEIGHTS_BASE,
            (self.categories * self.features * 8) as u64,
        );
        self.kernel(&mut b, tt);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtt_matches_baseline() {
        let w = Art::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn reinforcement_passes_are_silent() {
        let w = Art::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        assert!(run.stats.counters().silent_stores > 0);
        let tt = &run.tthreads[0];
        // Training period 4: roughly a quarter of images retrain.
        assert!(tt.skips > tt.executions);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Art::new(Scale::Test);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default().with_workers(2)).digest
        );
    }

    #[test]
    fn trace_watches_whole_weight_matrix() {
        let w = Art::new(Scale::Test);
        let tr = w.trace();
        assert_eq!(tr.watches().len(), 1);
        assert_eq!(
            tr.watches()[0].len,
            (w.categories() * w.features() * 8) as u64
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Art::new(Scale::Test).run_baseline(),
            Art::new(Scale::Test).run_baseline()
        );
    }
}
