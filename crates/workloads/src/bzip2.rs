//! `bzip2` — block-sorting compression of a mutating buffer (after SPEC
//! 256.bzip2).
//!
//! A recurring pattern around compressors: the same buffer is recompressed
//! round after round (checkpointing, sync, archival) even though only a few
//! blocks changed since last time. Writing each version over the old one
//! makes the unchanged blocks pure silent stores, so a per-block
//! compression tthread (BWT + move-to-front + run-length encoding) only
//! reruns for blocks that really changed.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const DATA_BASE: u64 = 0x1000_0000;
const OUT_BASE: u64 = 0x2000_0000;
const SCRATCH_BASE: u64 = 0x3000_0000;

/// Burrows–Wheeler transform + MTF + RLE of one block; returns the encoded
/// length and an FNV checksum of the encoded stream.
///
/// # Examples
///
/// ```
/// use dtt_workloads::bzip2::compress_block;
/// let (len_a, sum_a) = compress_block(b"banana_banana_banana");
/// let (len_b, sum_b) = compress_block(b"banana_banana_banana");
/// assert_eq!((len_a, sum_a), (len_b, sum_b));
/// // Highly repetitive data encodes shorter than its input.
/// assert!(len_a as usize <= 2 * 20);
/// ```
pub fn compress_block(data: &[u8]) -> (u32, u64) {
    let out = compress_block_bytes(data);
    (out.len() as u32, encoded_checksum(&out))
}

/// Checksum of an encoded stream, as folded into workload digests.
pub fn encoded_checksum(out: &[u8]) -> u64 {
    let mut d = Digest::new();
    for &b in out {
        d.push_u64(b as u64);
    }
    d.finish()
}

/// The raw BWT+MTF+RLE encoding of one block.
pub fn compress_block_bytes(data: &[u8]) -> Vec<u8> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    // BWT: sort cyclic rotations, emit last column.
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        for k in 0..n {
            let ca = data[(a + k) % n];
            let cb = data[(b + k) % n];
            if ca != cb {
                return ca.cmp(&cb);
            }
        }
        a.cmp(&b) // identical rotations: stable by index
    });
    let bwt: Vec<u8> = idx
        .iter()
        .map(|&i| data[(i as usize + n - 1) % n])
        .collect();

    // Move-to-front.
    let mut table: Vec<u8> = (0..=255).collect();
    let mut mtf = Vec::with_capacity(n);
    for &b in &bwt {
        let pos = table.iter().position(|&t| t == b).expect("byte in table") as u8;
        mtf.push(pos);
        table.remove(pos as usize);
        table.insert(0, b);
    }

    // Run-length encode.
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while i < mtf.len() {
        let v = mtf[i];
        let mut run = 1usize;
        while i + run < mtf.len() && mtf[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(v);
        out.push(run as u8);
        i += run;
    }

    out
}

/// The bzip2 workload instance.
#[derive(Debug, Clone)]
pub struct Bzip2 {
    blocks: usize,
    block_len: usize,
    /// Buffer versions, one per round (full buffer each).
    versions: Vec<Vec<u8>>,
}

impl Bzip2 {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (blocks, block_len, rounds, edits_per_round) = match scale {
            Scale::Test => (8, 64, 8, 1),
            Scale::Train => (24, 128, 40, 10),
            Scale::Reference => (48, 192, 80, 20),
        };
        let mut rng = StdRng::seed_from_u64(0x627a_6970 + blocks as u64);
        // Compressible initial content: small alphabet with runs.
        let mut buf: Vec<u8> = Vec::with_capacity(blocks * block_len);
        while buf.len() < blocks * block_len {
            let symbol = rng.gen_range(b'a'..=b'f');
            let run = rng.gen_range(1..8usize).min(blocks * block_len - buf.len());
            buf.extend(std::iter::repeat_n(symbol, run));
        }
        let mut versions = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            // Edit a few random blocks, leave the rest byte-identical.
            for _ in 0..edits_per_round {
                let b = rng.gen_range(0..blocks);
                let at = b * block_len + rng.gen_range(0..block_len);
                buf[at] = rng.gen_range(b'a'..=b'f');
            }
            versions.push(buf.clone());
        }
        Bzip2 {
            blocks,
            block_len,
            versions,
        }
    }

    /// Number of blocks (= tthreads).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Block length in bytes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Number of buffer versions compressed.
    pub fn rounds(&self) -> usize {
        self.versions.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tts: &[u32]) -> u64 {
        let mut digest = Digest::new();
        let mut results = vec![(0u32, 0u64); self.blocks];
        for version in &self.versions {
            // The new version arrives: write the full buffer.
            for (i, &byte) in version.iter().enumerate() {
                util::store_u8(p, 1, DATA_BASE, i, byte);
            }
            for b in 0..self.blocks {
                p.region_begin(tts[b]);
                let block = &version[b * self.block_len..(b + 1) * self.block_len];
                for (k, &byte) in block.iter().enumerate() {
                    util::load_u8(p, 2, DATA_BASE, b * self.block_len + k, byte);
                }
                // Sort + MTF + RLE cost estimate.
                p.compute((self.block_len * 24) as u64);
                let out = compress_block_bytes(block);
                // The encoder's output buffer is reused across blocks, so
                // reading it back (to append to the archive) observes fresh
                // values — genuine non-redundant working-set traffic.
                for (k, &byte) in out.iter().enumerate() {
                    util::load_u8(p, 5, SCRATCH_BASE, k, byte);
                }
                results[b] = (out.len() as u32, encoded_checksum(&out));
                util::store_u64(p, 3, OUT_BASE, b, results[b].1);
                p.region_end(tts[b]);
                p.join(tts[b]);
            }
            for &(len, sum) in &results {
                digest.push_u64(len as u64);
                digest.push_u64(sum);
            }
            // Archive output pass: the tool always re-reads the buffer to
            // compute the archive checksum and emit headers.
            let mut crc = 0u64;
            for (i, &byte) in version.iter().enumerate() {
                util::load_u8(p, 4, DATA_BASE, i, byte);
                crc = crc.wrapping_mul(31).wrapping_add(byte as u64);
                p.compute(6);
            }
            digest.push_u64(crc);
        }
        digest.finish()
    }
}

impl Workload for Bzip2 {
    fn name(&self) -> &'static str {
        "bzip2"
    }

    fn spec_inspiration(&self) -> &'static str {
        "256.bzip2"
    }

    fn description(&self) -> &'static str {
        "per-block BWT+MTF+RLE recompression of a buffer whose versions differ in a few blocks"
    }

    fn run_baseline(&self) -> u64 {
        let tts: Vec<u32> = (0..self.blocks as u32).collect();
        self.kernel(&mut NoProbe, &tts)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let mut rt = Runtime::new(cfg, vec![(0u32, 0u64); self.blocks]);
        let data: TrackedArray<u8> = rt
            .alloc_array_from(&self.versions[0].iter().map(|_| 0u8).collect::<Vec<_>>())
            .expect("arena sized for workload");
        let block_len = self.block_len;
        let mut tts = Vec::with_capacity(self.blocks);
        for b in 0..self.blocks {
            let tt = rt.register(&format!("compress_block_{b}"), move |ctx| {
                let mut block = Vec::new();
                ctx.read_slice_into(data, b * block_len, (b + 1) * block_len, &mut block);
                ctx.user_mut()[b] = compress_block(&block);
            });
            rt.watch(tt, data.range_of(b * block_len, (b + 1) * block_len))
                .expect("region in arena");
            rt.mark_dirty(tt).expect("registered tthread");
            tts.push(tt);
        }

        let mut digest = Digest::new();
        for version in &self.versions {
            rt.with(|ctx| ctx.write_slice(data, 0, version));
            for &tt in &tts {
                util::must_join(&mut rt, tt);
            }
            rt.with(|ctx| {
                for &(len, sum) in ctx.user().iter() {
                    digest.push_u64(len as u64);
                    digest.push_u64(sum);
                }
            });
            let mut crc = 0u64;
            for &byte in version {
                crc = crc.wrapping_mul(31).wrapping_add(byte as u64);
            }
            digest.push_u64(crc);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tts: Vec<u32> = (0..self.blocks)
            .map(|i| {
                let tt = b.declare_tthread(&format!("compress_block_{i}"));
                b.declare_watch(
                    tt,
                    DATA_BASE + (i * self.block_len) as u64,
                    self.block_len as u64,
                );
                tt
            })
            .collect();
        self.kernel(&mut b, &tts);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_is_deterministic_and_run_sensitive() {
        let (l1, c1) = compress_block(b"aaaaaaaabbbbbbbb");
        let (l2, c2) = compress_block(b"aaaaaaaabbbbbbbb");
        assert_eq!((l1, c1), (l2, c2));
        let (l3, _) = compress_block(b"abcdefghabcdefgh");
        // The run-heavy input RLE-encodes shorter than the alternating one.
        assert!(l1 <= l3);
    }

    #[test]
    fn empty_block_compresses_to_nothing() {
        assert_eq!(compress_block(&[]).0, 0);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Bzip2::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn unchanged_blocks_skip_recompression() {
        let w = Bzip2::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let skips: u64 = run.tthreads.iter().map(|t| t.skips).sum();
        let execs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        // One edit per round across eight blocks: most blocks unchanged.
        assert!(skips > execs, "skips={skips} execs={execs}");
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn trace_has_one_region_per_block_per_round() {
        let w = Bzip2::new(Scale::Test);
        let tr = w.trace();
        let begins = tr
            .events()
            .iter()
            .filter(|e| matches!(e, dtt_trace::Event::RegionBegin { .. }))
            .count();
        assert_eq!(begins, w.blocks() * w.rounds());
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Bzip2::new(Scale::Test).run_baseline(),
            Bzip2::new(Scale::Test).run_baseline()
        );
    }
}
