//! `mesa` — software vertex-transform pipeline (after SPEC 177.mesa).
//!
//! A classic software-GL pattern: the application reloads the model-view-
//! projection matrix every frame (`glLoadMatrix`) even when the camera has
//! not moved, and the pipeline dutifully re-transforms every vertex. The
//! matrix reload is a textbook silent store; attaching the
//! transform-and-project stage to the matrix (and the vertex buffer) as a
//! tthread makes it run only when the camera actually moves or geometry
//! changes.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const MATRIX_BASE: u64 = 0x1000_0000;
const VERTEX_BASE: u64 = 0x2000_0000;
const SCREEN_BASE: u64 = 0x3000_0000;

/// Transforms one vertex by a row-major 4×4 matrix and projects to 2D.
pub fn transform_vertex(m: &[f64], v: &[f64; 3]) -> (f64, f64) {
    let x = m[0] * v[0] + m[1] * v[1] + m[2] * v[2] + m[3];
    let y = m[4] * v[0] + m[5] * v[1] + m[6] * v[2] + m[7];
    let _z = m[8] * v[0] + m[9] * v[1] + m[10] * v[2] + m[11];
    let w = m[12] * v[0] + m[13] * v[1] + m[14] * v[2] + m[15];
    let inv = 1.0 / (w + 4.0); // softened perspective divide
    (x * inv, y * inv)
}

/// The mesa workload instance.
#[derive(Debug, Clone)]
pub struct Mesa {
    vertices: Vec<[f64; 3]>,
    /// Per frame: the matrix the app loads (often identical to the last).
    frames: Vec<[f64; 16]>,
}

impl Mesa {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (verts, frames_n, camera_period) = match scale {
            Scale::Test => (48, 12, 3),
            Scale::Train => (2_000, 100, 3),
            Scale::Reference => (8_000, 240, 3),
        };
        let mut rng = StdRng::seed_from_u64(0x6d65_7361 + verts as u64);
        let vertices: Vec<[f64; 3]> = (0..verts)
            .map(|_| {
                [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]
            })
            .collect();
        let mut matrix = identityish(&mut rng);
        let frames = (0..frames_n)
            .map(|f| {
                if f % camera_period == camera_period - 1 {
                    matrix = identityish(&mut rng);
                }
                matrix
            })
            .collect();
        Mesa { vertices, frames }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of frames rendered.
    pub fn frames(&self) -> usize {
        self.frames.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tt: u32) -> u64 {
        let n = self.vertices.len();
        let mut screen = vec![(0.0f64, 0.0f64); n];
        let mut digest = Digest::new();
        for matrix in &self.frames {
            // glLoadMatrix: the app reloads the MVP matrix every frame.
            for (k, &m) in matrix.iter().enumerate() {
                util::store_f64(p, 1, MATRIX_BASE, k, m);
            }
            // Transform + project (the tthread region).
            p.region_begin(tt);
            for (k, &m) in matrix.iter().enumerate() {
                util::load_f64(p, 2, MATRIX_BASE, k, m);
            }
            for (i, v) in self.vertices.iter().enumerate() {
                util::load_f64(p, 3, VERTEX_BASE, 3 * i, v[0]);
                screen[i] = transform_vertex(matrix, v);
                util::store_f64(p, 4, SCREEN_BASE, 2 * i, screen[i].0);
                util::store_f64(p, 4, SCREEN_BASE, 2 * i + 1, screen[i].1);
                p.compute(20);
            }
            p.region_end(tt);
            p.join(tt);

            // Rasterization proxy: bin vertices into a 64x64 grid and fold
            // the occupancy pattern.
            let mut acc = 0u64;
            for (i, &(sx, sy)) in screen.iter().enumerate() {
                util::load_f64(p, 5, SCREEN_BASE, 2 * i, sx);
                let px = ((sx * 32.0 + 32.0).clamp(0.0, 63.0)) as u64;
                let py = ((sy * 32.0 + 32.0).clamp(0.0, 63.0)) as u64;
                acc = acc.wrapping_mul(31).wrapping_add(px * 64 + py);
                p.compute(9);
            }
            digest.push_u64(acc);
        }
        digest.finish()
    }
}

fn identityish(rng: &mut StdRng) -> [f64; 16] {
    let mut m = [0.0f64; 16];
    for (i, slot) in m.iter_mut().enumerate() {
        *slot = if i % 5 == 0 { 1.0 } else { 0.0 };
        *slot += rng.gen_range(-0.2..0.2);
    }
    m
}

/// Untracked state of the DTT implementation.
struct MesaUser {
    vertices: Vec<[f64; 3]>,
    screen: Vec<(f64, f64)>,
    matrix_copy: [f64; 16],
}

impl Workload for Mesa {
    fn name(&self) -> &'static str {
        "mesa"
    }

    fn spec_inspiration(&self) -> &'static str {
        "177.mesa"
    }

    fn description(&self) -> &'static str {
        "vertex transform gated on the MVP matrix; per-frame matrix reloads are usually silent"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let n = self.vertices.len();
        let mut rt = Runtime::new(
            cfg,
            MesaUser {
                vertices: self.vertices.clone(),
                screen: vec![(0.0, 0.0); n],
                matrix_copy: [0.0; 16],
            },
        );
        let matrix: TrackedArray<f64> =
            rt.alloc_array::<f64>(16).expect("arena sized for workload");
        let transform = rt.register("vertex_transform", move |ctx| {
            for k in 0..16 {
                let v = ctx.read(matrix, k);
                ctx.user_mut().matrix_copy[k] = v;
            }
            for i in 0..n {
                let user = ctx.user();
                let projected = transform_vertex(&user.matrix_copy, &user.vertices[i]);
                ctx.user_mut().screen[i] = projected;
            }
        });
        rt.watch(transform, matrix.range())
            .expect("region in arena");
        rt.mark_dirty(transform).expect("registered tthread");

        let mut digest = Digest::new();
        for frame in &self.frames {
            rt.with(|ctx| {
                for (k, &m) in frame.iter().enumerate() {
                    ctx.write(matrix, k, m);
                }
            });
            util::must_join(&mut rt, transform);
            let acc = rt.with(|ctx| {
                let mut acc = 0u64;
                for &(sx, sy) in &ctx.user().screen {
                    let px = ((sx * 32.0 + 32.0).clamp(0.0, 63.0)) as u64;
                    let py = ((sy * 32.0 + 32.0).clamp(0.0, 63.0)) as u64;
                    acc = acc.wrapping_mul(31).wrapping_add(px * 64 + py);
                }
                acc
            });
            digest.push_u64(acc);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt = b.declare_tthread("vertex_transform");
        b.declare_watch(tt, MATRIX_BASE, 16 * 8);
        self.kernel(&mut b, tt);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_is_affine_for_identity() {
        let mut m = [0.0f64; 16];
        m[0] = 1.0;
        m[5] = 1.0;
        m[10] = 1.0;
        m[15] = 1.0;
        let (x, y) = transform_vertex(&m, &[2.0, 3.0, 4.0]);
        // w = 1, softened divide by 5.
        assert!((x - 0.4).abs() < 1e-12);
        assert!((y - 0.6).abs() < 1e-12);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Mesa::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn static_camera_frames_skip_transform() {
        let w = Mesa::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let tt = &run.tthreads[0];
        // Camera period 3: about a third of frames move the camera.
        assert!(tt.skips > 0);
        assert!(tt.executions < w.frames() as u64);
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Mesa::new(Scale::Test);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default().with_workers(2)).digest
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Mesa::new(Scale::Test).run_baseline(),
            Mesa::new(Scale::Test).run_baseline()
        );
    }
}
