//! `gzip` — LZ77 chunk compression of an append-mostly log (after SPEC
//! 164.gzip).
//!
//! Same archival pattern as [`crate::bzip2`] with a different kernel:
//! greedy LZ77 with a 3-byte hash-chain matcher over fixed chunks. Each
//! round rewrites the whole buffer; only the chunks near the append point
//! change, so per-chunk compression tthreads skip the frozen prefix.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const DATA_BASE: u64 = 0x1000_0000;
const OUT_BASE: u64 = 0x2000_0000;
const TOKBUF_BASE: u64 = 0x3000_0000;

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 64;

/// Greedy LZ77 of one chunk; returns `(token_count, checksum)` of the
/// emitted literal/match stream.
///
/// # Examples
///
/// ```
/// use dtt_workloads::gzip::lz77_chunk;
/// let repetitive = b"abcabcabcabcabcabc";
/// let (tokens, _) = lz77_chunk(repetitive);
/// assert!(tokens < repetitive.len() as u32); // matches found
/// ```
pub fn lz77_chunk(data: &[u8]) -> (u32, u64) {
    let tokens = lz77_tokens(data);
    let mut digest = Digest::new();
    for &t in &tokens {
        digest.push_u64(t);
    }
    (tokens.len() as u32, digest.finish())
}

/// The raw LZ77 token stream (literals and matches) of one chunk.
pub fn lz77_tokens(data: &[u8]) -> Vec<u64> {
    let n = data.len();
    let mut head: Vec<i32> = vec![-1; 1 << 12];
    let mut prev: Vec<i32> = vec![-1; n];
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let hash = |d: &[u8], at: usize| -> usize {
        ((d[at] as usize) << 6 ^ (d[at + 1] as usize) << 3 ^ d[at + 2] as usize) & 0xfff
    };
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand >= 0 && chain < 16 {
                let c = cand as usize;
                let mut len = 0usize;
                let max = (n - i).min(MAX_MATCH);
                while len < max && data[c + len] == data[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH && len > best_len {
                    best_len = len;
                    best_dist = i - c;
                }
                cand = prev[c];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i as i32;
        }
        if best_len >= MIN_MATCH {
            tokens.push(0x4d00_0000 | ((best_dist as u64) << 8) | best_len as u64);
            // Insert hash entries for the matched span so later matches see
            // it (gzip's lazy insertion, simplified).
            for k in 1..best_len {
                if i + k + MIN_MATCH <= n {
                    let h = hash(data, i + k);
                    prev[i + k] = head[h];
                    head[h] = (i + k) as i32;
                }
            }
            i += best_len;
        } else {
            tokens.push(0x4c00_0000 | data[i] as u64);
            i += 1;
        }
    }
    tokens
}

/// The gzip workload instance.
#[derive(Debug, Clone)]
pub struct Gzip {
    chunks: usize,
    chunk_len: usize,
    versions: Vec<Vec<u8>>,
}

impl Gzip {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (chunks, chunk_len, rounds) = match scale {
            Scale::Test => (8, 96, 8),
            Scale::Train => (16, 512, 40),
            Scale::Reference => (32, 1_024, 80),
        };
        let mut rng = StdRng::seed_from_u64(0x677a_6970 + chunks as u64);
        let total = chunks * chunk_len;
        // Log-like content: repeated phrases from a small vocabulary.
        let words: Vec<&[u8]> = vec![
            b"GET /index ",
            b"POST /api ",
            b"200 OK ",
            b"404 NF ",
            b"user=alice ",
            b"user=bob ",
        ];
        let mut buf = Vec::with_capacity(total);
        while buf.len() < total {
            let w = words[rng.gen_range(0..words.len())];
            let take = w.len().min(total - buf.len());
            buf.extend_from_slice(&w[..take]);
        }
        let mut versions = Vec::with_capacity(rounds);
        for round in 0..rounds {
            // Append-style churn: overwrite windows in several rotating
            // chunks of the upper half, leaving the frozen prefix untouched.
            for k in 0..5 {
                let hot = chunks / 2 + (round + k) % (chunks / 2);
                let at = hot * chunk_len + rng.gen_range(0..chunk_len / 2);
                let w = words[rng.gen_range(0..words.len())];
                for (j, &byte) in w.iter().enumerate() {
                    if at + j < total {
                        buf[at + j] = byte;
                    }
                }
            }
            versions.push(buf.clone());
        }
        Gzip {
            chunks,
            chunk_len,
            versions,
        }
    }

    /// Number of chunks (= tthreads).
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Chunk length in bytes.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Number of buffer versions compressed.
    pub fn rounds(&self) -> usize {
        self.versions.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tts: &[u32]) -> u64 {
        let mut digest = Digest::new();
        let mut results = vec![(0u32, 0u64); self.chunks];
        for version in &self.versions {
            for (i, &byte) in version.iter().enumerate() {
                util::store_u8(p, 1, DATA_BASE, i, byte);
            }
            for c in 0..self.chunks {
                p.region_begin(tts[c]);
                let chunk = &version[c * self.chunk_len..(c + 1) * self.chunk_len];
                for (k, &byte) in chunk.iter().enumerate() {
                    util::load_u8(p, 2, DATA_BASE, c * self.chunk_len + k, byte);
                }
                p.compute((self.chunk_len * 20) as u64);
                let tokens = lz77_tokens(chunk);
                // The token buffer is shared across chunks; the bit-packer
                // reads it back with fresh values every chunk.
                let mut tdigest = Digest::new();
                for (k, &t) in tokens.iter().enumerate() {
                    util::load_u64(p, 5, TOKBUF_BASE, k, t);
                    tdigest.push_u64(t);
                }
                results[c] = (tokens.len() as u32, tdigest.finish());
                util::store_u64(p, 3, OUT_BASE, c, results[c].1);
                p.region_end(tts[c]);
                p.join(tts[c]);
            }
            for &(tokens, sum) in &results {
                digest.push_u64(tokens as u64);
                digest.push_u64(sum);
            }
            // Archive output pass: CRC over the whole buffer every round.
            let mut crc = 0u64;
            for (i, &byte) in version.iter().enumerate() {
                util::load_u8(p, 4, DATA_BASE, i, byte);
                crc = crc.wrapping_mul(33).wrapping_add(byte as u64);
                p.compute(3);
            }
            digest.push_u64(crc);
        }
        digest.finish()
    }
}

impl Workload for Gzip {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn spec_inspiration(&self) -> &'static str {
        "164.gzip"
    }

    fn description(&self) -> &'static str {
        "per-chunk LZ77 recompression of an append-mostly log; frozen chunks store silently"
    }

    fn run_baseline(&self) -> u64 {
        let tts: Vec<u32> = (0..self.chunks as u32).collect();
        self.kernel(&mut NoProbe, &tts)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let mut rt = Runtime::new(cfg, vec![(0u32, 0u64); self.chunks]);
        let data: TrackedArray<u8> = rt
            .alloc_array::<u8>(self.chunks * self.chunk_len)
            .expect("arena sized for workload");
        let chunk_len = self.chunk_len;
        let mut tts = Vec::with_capacity(self.chunks);
        for c in 0..self.chunks {
            let tt = rt.register(&format!("deflate_chunk_{c}"), move |ctx| {
                let mut chunk = Vec::new();
                ctx.read_slice_into(data, c * chunk_len, (c + 1) * chunk_len, &mut chunk);
                ctx.user_mut()[c] = lz77_chunk(&chunk);
            });
            rt.watch(tt, data.range_of(c * chunk_len, (c + 1) * chunk_len))
                .expect("region in arena");
            rt.mark_dirty(tt).expect("registered tthread");
            tts.push(tt);
        }

        let mut digest = Digest::new();
        for version in &self.versions {
            rt.with(|ctx| ctx.write_slice(data, 0, version));
            for &tt in &tts {
                util::must_join(&mut rt, tt);
            }
            rt.with(|ctx| {
                for &(tokens, sum) in ctx.user().iter() {
                    digest.push_u64(tokens as u64);
                    digest.push_u64(sum);
                }
            });
            let mut crc = 0u64;
            for &byte in version {
                crc = crc.wrapping_mul(33).wrapping_add(byte as u64);
            }
            digest.push_u64(crc);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tts: Vec<u32> = (0..self.chunks)
            .map(|i| {
                let tt = b.declare_tthread(&format!("deflate_chunk_{i}"));
                b.declare_watch(
                    tt,
                    DATA_BASE + (i * self.chunk_len) as u64,
                    self.chunk_len as u64,
                );
                tt
            })
            .collect();
        self.kernel(&mut b, &tts);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lz77_compresses_repetition() {
        let (tok_rep, _) = lz77_chunk(b"the cat the cat the cat the cat ");
        let (tok_rand, _) = lz77_chunk(b"q8Zp!kT2vXw9@aLmC4#yR7sD1%fGh5^j");
        assert!(tok_rep < tok_rand);
    }

    #[test]
    fn lz77_round_trips_token_determinism() {
        let a = lz77_chunk(b"GET /index GET /index 200 OK ");
        let b = lz77_chunk(b"GET /index GET /index 200 OK ");
        assert_eq!(a, b);
    }

    #[test]
    fn lz77_handles_tiny_inputs() {
        assert_eq!(lz77_chunk(&[]).0, 0);
        assert_eq!(lz77_chunk(b"a").0, 1);
        assert_eq!(lz77_chunk(b"ab").0, 2);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Gzip::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn frozen_prefix_chunks_skip() {
        let w = Gzip::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        // The first chunks never change after round 0.
        let first = &run.tthreads[0];
        assert_eq!(first.executions, 1);
        assert!(first.skips as usize >= w.rounds() - 1);
    }

    #[test]
    fn trace_watches_every_chunk() {
        let w = Gzip::new(Scale::Test);
        assert_eq!(w.trace().watches().len(), w.chunks());
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Gzip::new(Scale::Test).run_baseline(),
            Gzip::new(Scale::Test).run_baseline()
        );
    }
}
