//! `served` — long-lived, servable variants of the multi-stage workloads.
//!
//! The batch workloads ([`crate::Spreadsheet`], [`crate::Pipeline`]) own
//! their runtime for the length of one scripted run. The serve front-end
//! (`dtt-serve`) instead needs the same dependency-graph views as
//! *long-lived state*: client writes batch into tracked stores, tthreads
//! maintain the derived aggregates, and reads are answered from the
//! last-committed derived cells. This module packages the two view shapes
//! for that lifecycle:
//!
//! * [`ServedSheet`] — grid → per-row SUM tthreads → TOTAL → AVG (the
//!   `spreadsheet` chain);
//! * [`ServedPipeline`] — raw samples → CLAMP → per-BUCKET sums → PEAK
//!   (the `pipeline` chain);
//! * [`ServedKeyed`] — a logical `key_space` (millions of keys) folded
//!   onto the sheet grid via [`KeyMap`], so `Put {key}`/`Get {key}`
//!   address per-shard-row tthread-maintained aggregates.
//!
//! Both expose the same verbs: `apply` a write to tracked input,
//! `refresh` the derived chain (joins in topological order, propagating
//! poison/timeout errors to the caller instead of panicking — the serve
//! engine repairs and retries), and cheap reads of the derived cells.
//! Unlike the batch kernels, `refresh` returns a [`dtt_core::Result`]: a
//! wedged tthread is a condition the front-end degrades around, not a
//! test failure.

use dtt_core::{Config, Runtime, TrackedArray, TrackedMatrix, TthreadId};

use crate::util;

/// Valid sample range for [`ServedPipeline`]; mirrors the batch kernel.
const LO: i64 = 0;
const HI: i64 = 99;

/// A read of the sheet's derived cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SheetView {
    /// Grand total over the grid.
    pub total: i64,
    /// Integer mean per cell.
    pub avg: i64,
}

/// The long-lived spreadsheet view: a tracked grid whose per-row SUM,
/// TOTAL and AVG aggregates are maintained by cascading tthreads.
pub struct ServedSheet {
    rt: Runtime<()>,
    rows: usize,
    cols: usize,
    grid: TrackedMatrix<i64>,
    row_sums: TrackedArray<i64>,
    total_cell: TrackedArray<i64>,
    avg_cell: TrackedArray<i64>,
    row_tts: Vec<TthreadId>,
    total_tt: TthreadId,
    avg_tt: TthreadId,
}

impl ServedSheet {
    /// Builds the view: allocates the grid (zero-filled), registers the
    /// SUM → TOTAL → AVG chain and runs the initial recomputation.
    pub fn build(cfg: Config, rows: usize, cols: usize) -> Self {
        let cells = (rows * cols) as i64;
        let mut rt = Runtime::new(cfg, ());
        let grid = rt
            .alloc_matrix::<i64>(rows, cols)
            .expect("arena sized for view");
        let row_sums = rt.alloc_array::<i64>(rows).expect("arena sized for view");
        let total_cell = rt.alloc_array::<i64>(1).expect("arena sized for view");
        let avg_cell = rt.alloc_array::<i64>(1).expect("arena sized for view");

        let row_tts: Vec<TthreadId> = (0..rows)
            .map(|r| {
                let id = rt.register(&format!("row_sum{r}"), move |ctx| {
                    let mut s = 0i64;
                    for c in 0..cols {
                        s += ctx.get(grid.at(r, c));
                    }
                    ctx.write(row_sums, r, s);
                });
                rt.watch(id, grid.row_range(r)).expect("region in arena");
                util::declare_output(&mut rt, id, row_sums.range_of(r, r + 1));
                id
            })
            .collect();

        let total_tt = rt.register("total", move |ctx| {
            let mut t = 0i64;
            for r in 0..rows {
                t += ctx.read(row_sums, r);
            }
            ctx.write(total_cell, 0, t);
        });
        rt.watch(total_tt, row_sums.range())
            .expect("region in arena");
        util::declare_output(&mut rt, total_tt, total_cell.range());

        let avg_tt = rt.register("avg", move |ctx| {
            let t = ctx.read(total_cell, 0);
            ctx.write(avg_cell, 0, t / cells);
        });
        rt.watch(avg_tt, total_cell.range())
            .expect("region in arena");
        util::declare_output(&mut rt, avg_tt, avg_cell.range());

        let mut sheet = ServedSheet {
            rt,
            rows,
            cols,
            grid,
            row_sums,
            total_cell,
            avg_cell,
            row_tts,
            total_tt,
            avg_tt,
        };
        for tt in sheet.topo_order() {
            sheet.rt.mark_dirty(tt).expect("registered tthread");
        }
        // A fault plan or an impossible body deadline can wedge even this
        // initial refresh; the view is then born degraded (all-zero
        // derived cells) and the serve engine's repair loop owns it.
        let _ = sheet.refresh();
        sheet
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Applies a batch of `(row, col, value)` stores in one tracked
    /// region; out-of-range coordinates wrap, so any client key is valid.
    pub fn apply(&mut self, writes: &[(usize, usize, i64)]) {
        let (rows, cols, grid) = (self.rows, self.cols, self.grid);
        self.rt.with(|ctx| {
            for &(r, c, v) in writes {
                ctx.set(grid.at(r % rows, c % cols), v);
            }
        });
    }

    fn topo_order(&self) -> Vec<TthreadId> {
        let mut order = self.row_tts.clone();
        order.push(self.total_tt);
        order.push(self.avg_tt);
        order
    }

    /// Joins the chain in topological order so every commit cascades
    /// before its consumer is joined. Errors (poisoned/timed-out
    /// tthreads) propagate; the caller repairs via
    /// [`ServedSheet::runtime_mut`] and retries.
    pub fn refresh(&mut self) -> dtt_core::Result<()> {
        for tt in self.topo_order() {
            self.rt.join(tt)?;
        }
        Ok(())
    }

    /// Reads the derived cells (no refresh: last-committed state).
    pub fn read(&mut self) -> SheetView {
        let (total_cell, avg_cell) = (self.total_cell, self.avg_cell);
        let (total, avg) = self
            .rt
            .with(|ctx| (ctx.read(total_cell, 0), ctx.read(avg_cell, 0)));
        SheetView { total, avg }
    }

    /// Reads one row's tthread-maintained SUM (no refresh); out-of-range
    /// rows wrap, matching [`ServedSheet::apply`].
    pub fn read_row(&mut self, row: usize) -> i64 {
        let (rows, row_sums) = (self.rows, self.row_sums);
        self.rt.with(|ctx| ctx.read(row_sums, row % rows))
    }

    /// Snapshot of every row SUM (last-committed), for degraded-read
    /// caches.
    pub fn rows_snapshot(&mut self) -> Vec<i64> {
        let (rows, row_sums) = (self.rows, self.row_sums);
        self.rt
            .with(|ctx| (0..rows).map(|r| ctx.read(row_sums, r)).collect())
    }

    /// The underlying runtime, for stats, drain and repair verbs.
    pub fn runtime_mut(&mut self) -> &mut Runtime<()> {
        &mut self.rt
    }

    /// Consumes the view, returning the runtime for a final shutdown.
    pub fn into_runtime(self) -> Runtime<()> {
        self.rt
    }
}

/// A read of the pipeline's derived cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineView {
    /// Maximum bucket sum.
    pub peak: i64,
}

/// The long-lived pipeline view: tracked raw samples whose CLAMP →
/// BUCKET → PEAK stages are maintained by cascading tthreads.
pub struct ServedPipeline {
    rt: Runtime<()>,
    samples: usize,
    input: TrackedArray<i64>,
    peak_cell: TrackedArray<i64>,
    clamp_tt: TthreadId,
    bucket_tt: TthreadId,
    peak_tt: TthreadId,
}

impl ServedPipeline {
    /// Builds the view: allocates `samples` zeroed inputs, registers the
    /// CLAMP → BUCKET → PEAK chain and runs the initial recomputation.
    pub fn build(cfg: Config, samples: usize, buckets: usize) -> Self {
        let (n, b) = (samples, buckets);
        let mut rt = Runtime::new(cfg, ());
        let input = rt.alloc_array::<i64>(n).expect("arena sized for view");
        let clamped = rt.alloc_array::<i64>(n).expect("arena sized for view");
        let sums = rt.alloc_array::<i64>(b).expect("arena sized for view");
        let peak_cell = rt.alloc_array::<i64>(1).expect("arena sized for view");

        let clamp_tt = rt.register("clamp", move |ctx| {
            for i in 0..n {
                let raw = ctx.read(input, i);
                ctx.write(clamped, i, raw.clamp(LO, HI));
            }
        });
        rt.watch(clamp_tt, input.range()).expect("region in arena");
        util::declare_output(&mut rt, clamp_tt, clamped.range());

        let bucket_tt = rt.register("bucket", move |ctx| {
            let mut acc = vec![0i64; b];
            for i in 0..n {
                acc[i % b] += ctx.read(clamped, i);
            }
            for (j, &s) in acc.iter().enumerate() {
                ctx.write(sums, j, s);
            }
        });
        rt.watch(bucket_tt, clamped.range())
            .expect("region in arena");
        util::declare_output(&mut rt, bucket_tt, sums.range());

        let peak_tt = rt.register("peak", move |ctx| {
            let mut peak = i64::MIN;
            for j in 0..b {
                peak = peak.max(ctx.read(sums, j));
            }
            ctx.write(peak_cell, 0, peak);
        });
        rt.watch(peak_tt, sums.range()).expect("region in arena");
        util::declare_output(&mut rt, peak_tt, peak_cell.range());

        let mut pipe = ServedPipeline {
            rt,
            samples,
            input,
            peak_cell,
            clamp_tt,
            bucket_tt,
            peak_tt,
        };
        for tt in [pipe.clamp_tt, pipe.bucket_tt, pipe.peak_tt] {
            pipe.rt.mark_dirty(tt).expect("registered tthread");
        }
        // Tolerate a wedged initial refresh (see [`ServedSheet::build`]).
        let _ = pipe.refresh();
        pipe
    }

    /// Number of raw samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Applies a batch of `(index, value)` raw-sample stores in one
    /// tracked region; indices wrap, so any client key is valid.
    pub fn apply(&mut self, writes: &[(usize, i64)]) {
        let (n, input) = (self.samples, self.input);
        self.rt.with(|ctx| {
            for &(i, v) in writes {
                ctx.write(input, i % n, v);
            }
        });
    }

    /// Joins the chain in topological order; errors propagate for the
    /// caller to repair (see [`ServedSheet::refresh`]).
    pub fn refresh(&mut self) -> dtt_core::Result<()> {
        for tt in [self.clamp_tt, self.bucket_tt, self.peak_tt] {
            self.rt.join(tt)?;
        }
        Ok(())
    }

    /// Reads the derived peak (no refresh: last-committed state).
    pub fn read(&mut self) -> PipelineView {
        let peak_cell = self.peak_cell;
        let peak = self.rt.with(|ctx| ctx.read(peak_cell, 0));
        PipelineView { peak }
    }

    /// The underlying runtime, for stats, drain and repair verbs.
    pub fn runtime_mut(&mut self) -> &mut Runtime<()> {
        &mut self.rt
    }

    /// Consumes the view, returning the runtime for a final shutdown.
    pub fn into_runtime(self) -> Runtime<()> {
        self.rt
    }
}

/// The deterministic logical-key → shard-slot mapping of a
/// [`ServedKeyed`] view, small and `Copy` so front-end handlers can map
/// keys to shard-rows (for degraded-read caches) without touching the
/// runtime.
///
/// `key_space` logical keys fold onto `rows × cols` physical slots in
/// row-major order: `slot = key % (rows * cols)`, `row = slot / cols`.
/// Many logical keys share a slot (that is the point — millions of keys
/// over a bounded arena); within a slot, last write wins, and each
/// shard-row's aggregate is tthread-maintained over whatever its slots
/// hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyMap {
    /// Shard-rows in the backing grid.
    pub rows: usize,
    /// Slots per shard-row.
    pub cols: usize,
    /// Logical keys addressable by clients.
    pub key_space: u64,
}

impl KeyMap {
    /// The physical `(row, col)` slot a logical key folds onto.
    pub fn slot_of(&self, key: u64) -> (usize, usize) {
        let cells = (self.rows * self.cols).max(1) as u64;
        let slot = (key % self.key_space.max(1)) % cells;
        ((slot as usize) / self.cols, (slot as usize) % self.cols)
    }

    /// The shard-row a logical key's aggregate lives in.
    pub fn row_of(&self, key: u64) -> usize {
        self.slot_of(key).0
    }
}

/// The keyed store view: a `key_space` of logical keys (millions) folded
/// onto a `rows × cols` tracked grid, with the same SUM → TOTAL → AVG
/// tthread chain as [`ServedSheet`] maintaining one aggregate per
/// shard-row plus the global cells. `Put {key}` writes the key's slot;
/// `Get {key}` reads the key's *shard-row* aggregate — the paper's
/// skip path means an untouched row costs nothing to keep fresh, so the
/// served key space scales with traffic, not with key count.
///
/// Keyed writes are commutative across rows (PAPERS.md, "Flexible
/// Support for Fast Parallel Commutative Updates"): independent keyed
/// puts coalesce into one tracked-store batch with no ordering cost, and
/// only the rows the batch actually touched recompute.
pub struct ServedKeyed {
    sheet: ServedSheet,
    map: KeyMap,
}

impl ServedKeyed {
    /// Builds the view over a `rows × cols` grid serving `key_space`
    /// logical keys.
    pub fn build(cfg: Config, rows: usize, cols: usize, key_space: u64) -> Self {
        let sheet = ServedSheet::build(cfg, rows, cols);
        ServedKeyed {
            map: KeyMap {
                rows,
                cols,
                key_space: key_space.max(1),
            },
            sheet,
        }
    }

    /// The key → slot mapping (copyable; share it with handlers).
    pub fn key_map(&self) -> KeyMap {
        self.map
    }

    /// Applies a batch of `(key, value)` keyed puts in one tracked
    /// region. Keys fold per [`KeyMap`]; every client key is valid.
    pub fn apply(&mut self, writes: &[(u64, i64)]) {
        let map = self.map;
        let mapped: Vec<(usize, usize, i64)> = writes
            .iter()
            .map(|&(k, v)| {
                let (r, c) = map.slot_of(k);
                (r, c, v)
            })
            .collect();
        self.sheet.apply(&mapped);
    }

    /// Joins the chain in topological order; errors propagate for the
    /// caller to repair (see [`ServedSheet::refresh`]).
    pub fn refresh(&mut self) -> dtt_core::Result<()> {
        self.sheet.refresh()
    }

    /// Reads the global derived cells (total/avg; no refresh).
    pub fn read(&mut self) -> SheetView {
        self.sheet.read()
    }

    /// Reads the tthread-maintained aggregate of `key`'s shard-row.
    pub fn read_key_row(&mut self, key: u64) -> i64 {
        let row = self.map.row_of(key);
        self.sheet.read_row(row)
    }

    /// Snapshot of every shard-row aggregate (last-committed), the
    /// degraded-read cache's keyed half.
    pub fn rows_snapshot(&mut self) -> Vec<i64> {
        self.sheet.rows_snapshot()
    }

    /// The underlying runtime, for stats, drain and repair verbs.
    pub fn runtime_mut(&mut self) -> &mut Runtime<()> {
        self.sheet.runtime_mut()
    }

    /// Consumes the view, returning the runtime for a final shutdown.
    pub fn into_runtime(self) -> Runtime<()> {
        self.sheet.into_runtime()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheet_serves_fresh_aggregates() {
        let mut sheet = ServedSheet::build(Config::default(), 4, 8);
        assert_eq!(sheet.read(), SheetView { total: 0, avg: 0 });
        sheet.apply(&[(0, 0, 10), (1, 3, 22), (3, 7, 64)]);
        sheet.refresh().unwrap();
        assert_eq!(sheet.read().total, 96);
        assert_eq!(sheet.read().avg, 96 / 32);
        // Wrapping keys: (4, 8) lands on (0, 0).
        sheet.apply(&[(4, 8, 42)]);
        sheet.refresh().unwrap();
        assert_eq!(sheet.read().total, 96 - 10 + 42);
    }

    #[test]
    fn sheet_skips_silent_batches() {
        let mut sheet = ServedSheet::build(Config::default(), 2, 4);
        sheet.apply(&[(0, 0, 5)]);
        sheet.refresh().unwrap();
        let execs0 = sheet.runtime_mut().stats().counters().executions;
        // Rewriting the same value is silent: no tthread runs.
        sheet.apply(&[(0, 0, 5)]);
        sheet.refresh().unwrap();
        let c = sheet.runtime_mut().stats();
        assert_eq!(c.counters().executions, execs0);
        assert!(c.counters().skips > 0);
    }

    #[test]
    fn pipeline_serves_fresh_peak_with_clamping() {
        let mut pipe = ServedPipeline::build(Config::default(), 16, 4);
        pipe.apply(&[(0, 50), (4, 30), (1, 500)]);
        pipe.refresh().unwrap();
        // Bucket 0 holds samples 0,4,8,12 → 50+30; sample 1 saturates at 99.
        assert_eq!(pipe.read().peak, 99);
        pipe.apply(&[(8, 40)]);
        pipe.refresh().unwrap();
        assert_eq!(pipe.read().peak, 120);
    }

    #[test]
    fn keyed_view_folds_keys_and_serves_row_aggregates() {
        // 4 rows x 8 cols = 32 slots serving a 1M key space.
        let mut keyed = ServedKeyed::build(Config::default(), 4, 8, 1 << 20);
        let map = keyed.key_map();
        assert_eq!(map.slot_of(0), (0, 0));
        assert_eq!(map.slot_of(9), (1, 1));
        // Keys 32 apart share a slot: last write wins.
        assert_eq!(map.slot_of(5), map.slot_of(37));

        keyed.apply(&[(0, 10), (9, 7), (5, 100)]);
        keyed.refresh().unwrap();
        assert_eq!(keyed.read_key_row(0), 110); // row 0: slots 0 and 5
        assert_eq!(keyed.read_key_row(9), 7); // row 1: slot 9
        assert_eq!(keyed.read().total, 117);

        // Slot collision: key 37 overwrites key 5's slot.
        keyed.apply(&[(37, 1)]);
        keyed.refresh().unwrap();
        assert_eq!(keyed.read_key_row(5), 11);
        assert_eq!(keyed.rows_snapshot(), vec![11, 7, 0, 0]);
    }

    #[test]
    fn keyed_rows_skip_when_untouched() {
        let mut keyed = ServedKeyed::build(Config::default(), 4, 8, 1 << 20);
        keyed.apply(&[(0, 3)]);
        keyed.refresh().unwrap();
        let execs0 = keyed.runtime_mut().stats().counters().executions;
        // A put to a different shard-row must not recompute row 0's SUM
        // more than the cascade requires; an identical rewrite is silent.
        keyed.apply(&[(0, 3)]);
        keyed.refresh().unwrap();
        let c = keyed.runtime_mut().stats();
        assert_eq!(c.counters().executions, execs0);
        assert!(c.counters().skips > 0);
    }

    #[test]
    fn served_views_work_with_workers_and_drain() {
        use std::time::Duration;
        let mut sheet = ServedSheet::build(Config::default().with_workers(2), 4, 8);
        sheet.apply(&[(2, 2, 7)]);
        sheet.refresh().unwrap();
        assert_eq!(sheet.read().total, 7);
        sheet.runtime_mut().drain(Duration::from_secs(10)).unwrap();
        // Still servable (deferred) after a drain.
        sheet.apply(&[(2, 3, 3)]);
        sheet.refresh().unwrap();
        assert_eq!(sheet.read().total, 10);
        sheet
            .into_runtime()
            .shutdown(Duration::from_secs(10))
            .unwrap();
    }
}
