//! `crafty` — chess position evaluation (after SPEC 186.crafty).
//!
//! A chess engine's static evaluation is a pure function of the board, but
//! engines recompute big slices of it (pawn structure, king safety,
//! mobility tables) far more often than the relevant pieces move. The
//! search loop also performs streams of bookkeeping writes — hash-clock
//! updates, repetition-list refreshes — that usually store unchanged
//! values. Attaching the positional evaluation to the board as a tthread
//! makes it recompute only on real moves.
//!
//! Model: a 64-square board (tracked, piece codes), an evaluation tthread
//! publishing material/positional scores, and a move-scoring consumer that
//! prices candidate moves against the published evaluation.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const BOARD_BASE: u64 = 0x1000_0000;
const EVAL_BASE: u64 = 0x2000_0000;

/// Piece codes: 0 empty, 1..=6 white P N B R Q K, 7..=12 black.
pub const EMPTY: u32 = 0;

/// Static material value of a piece code.
pub fn piece_value(piece: u32) -> i64 {
    if piece == EMPTY {
        return 0;
    }
    let kind = if piece <= 6 { piece } else { piece - 6 };
    let base = match kind {
        1 => 100,
        2 => 320,
        3 => 330,
        4 => 500,
        5 => 900,
        6 => 20_000,
        _ => 0,
    };
    if piece <= 6 {
        base
    } else {
        -base
    }
}

/// Full static evaluation: material + centralization + pawn files.
/// Deterministic function of the board, shared by all implementations.
pub fn evaluate(board: &[u32]) -> (i64, i64, i64) {
    let mut material = 0i64;
    let mut position = 0i64;
    let mut pawn_files = [0i64; 8];
    for (sq, &piece) in board.iter().enumerate() {
        material += piece_value(piece);
        if piece != EMPTY {
            let (rank, file) = (sq / 8, sq % 8);
            let kind = if piece <= 6 { piece } else { piece - 6 };
            // Centralization bonus, sign by side.
            let center = 3 - (file as i64 - 3).abs().min((rank as i64 - 3).abs() + 1);
            position += if piece <= 6 { center } else { -center };
            if kind == 1 {
                pawn_files[file] += if piece <= 6 { 1 } else { -1 };
            }
        }
    }
    // Doubled-pawn penalty per file.
    let pawns: i64 = pawn_files.iter().map(|&c| -8 * (c.abs() - 1).max(0)).sum();
    (material, position, pawns)
}

/// One search iteration's scripted actions.
#[derive(Debug, Clone)]
struct Iteration {
    /// Bookkeeping writes `(square, piece)` — always unchanged values.
    bookkeeping: Vec<(usize, u32)>,
    /// An actual move applied to the board, if any: `(from, to, piece)`.
    real_move: Option<(usize, usize, u32)>,
    /// Candidate moves to price: `(from, to)` pairs.
    candidates: Vec<(usize, usize)>,
}

/// The crafty workload instance.
#[derive(Debug, Clone)]
pub struct Crafty {
    board0: Vec<u32>,
    iterations: Vec<Iteration>,
}

impl Crafty {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (iters, move_period, candidates_n, bookkeeping_n) = match scale {
            Scale::Test => (12, 3, 8, 4),
            Scale::Train => (150, 4, 96, 16),
            Scale::Reference => (400, 4, 128, 24),
        };
        let mut rng = StdRng::seed_from_u64(0x6372_6166);
        // Opening-like position: back ranks + pawns.
        let mut board0 = vec![EMPTY; 64];
        let back = [4u32, 2, 3, 5, 6, 3, 2, 4];
        for f in 0..8 {
            board0[f] = back[f]; // white back rank
            board0[8 + f] = 1; // white pawns
            board0[48 + f] = 7; // black pawns
            board0[56 + f] = back[f] + 6; // black back rank
        }
        let mut board = board0.clone();
        let iterations = (0..iters)
            .map(|i| {
                let occupied: Vec<usize> = (0..64).filter(|&s| board[s] != EMPTY).collect();
                let bookkeeping = (0..bookkeeping_n)
                    .map(|_| {
                        let s = rng.gen_range(0..64);
                        (s, board[s])
                    })
                    .collect();
                let real_move = if i % move_period == move_period - 1 {
                    // Move a random piece to a random empty square.
                    let from = occupied[rng.gen_range(0..occupied.len())];
                    let empties: Vec<usize> = (0..64).filter(|&s| board[s] == EMPTY).collect();
                    let to = empties[rng.gen_range(0..empties.len())];
                    let piece = board[from];
                    board[from] = EMPTY;
                    board[to] = piece;
                    Some((from, to, piece))
                } else {
                    None
                };
                let candidates = (0..candidates_n)
                    .map(|_| (rng.gen_range(0..64), rng.gen_range(0..64)))
                    .collect();
                Iteration {
                    bookkeeping,
                    real_move,
                    candidates,
                }
            })
            .collect();
        Crafty { board0, iterations }
    }

    /// Search iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tt: u32) -> u64 {
        let mut board = self.board0.clone();
        let mut digest = Digest::new();
        // Program initialization: set up the board.
        for (s, &piece) in board.iter().enumerate() {
            util::store_u32(p, 0, BOARD_BASE, s, piece);
        }
        for it in &self.iterations {
            // Bookkeeping writes (always silent).
            for &(s, piece) in &it.bookkeeping {
                util::store_u32(p, 1, BOARD_BASE, s, piece);
                board[s] = piece;
            }
            // The occasional real move.
            if let Some((from, to, piece)) = it.real_move {
                util::store_u32(p, 2, BOARD_BASE, from, EMPTY);
                util::store_u32(p, 2, BOARD_BASE, to, piece);
                board[from] = EMPTY;
                board[to] = piece;
            }
            // Static evaluation (the tthread region).
            p.region_begin(tt);
            for (s, &piece) in board.iter().enumerate() {
                util::load_u32(p, 3, BOARD_BASE, s, piece);
            }
            p.compute(64 * 9 + 64);
            let eval = evaluate(&board);
            util::store_u64(p, 4, EVAL_BASE, 0, eval.0 as u64);
            util::store_u64(p, 4, EVAL_BASE, 1, eval.1 as u64);
            util::store_u64(p, 4, EVAL_BASE, 2, eval.2 as u64);
            p.region_end(tt);
            p.join(tt);

            // Move scoring: price candidates against the evaluation.
            let base_score = eval.0 + eval.1 + eval.2;
            let mut best = i64::MIN;
            for &(from, to) in &it.candidates {
                let victim = util::load_u32(p, 5, BOARD_BASE, to, board[to]);
                let mover = util::load_u32(p, 5, BOARD_BASE, from, board[from]);
                let gain = piece_value(victim).abs() - piece_value(mover).abs() / 10;
                let score = base_score + gain;
                if score > best {
                    best = score;
                }
                p.compute(8);
            }
            digest.push_u64(best as u64);
        }
        digest.finish()
    }
}

impl Workload for Crafty {
    fn name(&self) -> &'static str {
        "crafty"
    }

    fn spec_inspiration(&self) -> &'static str {
        "186.crafty"
    }

    fn description(&self) -> &'static str {
        "chess static evaluation gated on board changes; bookkeeping writes are silent"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let mut rt = Runtime::new(cfg, ((0i64, 0i64, 0i64), Vec::<u32>::new()));
        let board: TrackedArray<u32> = rt
            .alloc_array_from(&self.board0)
            .expect("arena sized for workload");
        let eval_tt = rt.register("static_eval", move |ctx| {
            let mut snapshot = std::mem::take(&mut ctx.user_mut().1);
            ctx.read_all_into(board, &mut snapshot);
            let eval = evaluate(&snapshot);
            let user = ctx.user_mut();
            user.0 = eval;
            user.1 = snapshot;
        });
        rt.watch(eval_tt, board.range()).expect("region in arena");
        rt.mark_dirty(eval_tt).expect("registered tthread");

        let mut shadow = self.board0.clone();
        let mut digest = Digest::new();
        for it in &self.iterations {
            rt.with(|ctx| {
                for &(s, piece) in &it.bookkeeping {
                    ctx.write(board, s, piece);
                    shadow[s] = piece;
                }
                if let Some((from, to, piece)) = it.real_move {
                    ctx.write(board, from, EMPTY);
                    ctx.write(board, to, piece);
                    shadow[from] = EMPTY;
                    shadow[to] = piece;
                }
            });
            util::must_join(&mut rt, eval_tt);
            let eval = rt.with(|ctx| ctx.user().0);
            let base_score = eval.0 + eval.1 + eval.2;
            let mut best = i64::MIN;
            for &(from, to) in &it.candidates {
                let gain = piece_value(shadow[to]).abs() - piece_value(shadow[from]).abs() / 10;
                best = best.max(base_score + gain);
            }
            digest.push_u64(best as u64);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt = b.declare_tthread("static_eval");
        b.declare_watch(tt, BOARD_BASE, 4 * 64);
        self.kernel(&mut b, tt);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_balance_is_zero_at_start() {
        let w = Crafty::new(Scale::Test);
        let (material, _, pawns) = evaluate(&w.board0);
        assert_eq!(material, 0, "symmetric opening position");
        assert_eq!(pawns, 0, "no doubled pawns at the start");
    }

    #[test]
    fn piece_values_are_signed_by_side() {
        assert_eq!(piece_value(1), 100); // white pawn
        assert_eq!(piece_value(7), -100); // black pawn
        assert_eq!(piece_value(8), -320); // black knight
        assert_eq!(piece_value(5), 900); // white queen
        assert_eq!(piece_value(12), -20_000); // black king
        assert_eq!(piece_value(EMPTY), 0);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Crafty::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn bookkeeping_iterations_skip_evaluation() {
        let w = Crafty::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let tt = &run.tthreads[0];
        // One real move every 3 iterations at test scale.
        assert!(
            tt.skips > tt.executions,
            "skips={} execs={}",
            tt.skips,
            tt.executions
        );
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Crafty::new(Scale::Test).run_baseline(),
            Crafty::new(Scale::Test).run_baseline()
        );
    }
}
