//! `spreadsheet` — materialized-view recalculation over a grid of cells.
//!
//! The classic incremental-computation workload: a spreadsheet keeps a
//! chain of derived aggregates (per-row SUMs, a grand TOTAL, an AVG cell)
//! over a grid, and a stream of interactive edits lands on individual
//! cells. A batch engine recomputes every stage after every edit; the DTT
//! engine lets the stages *trigger each other* through the dependency
//! graph: an edit fires only its row's SUM tthread, whose commit cascades
//! to TOTAL, whose commit cascades to AVG — and the wave stops early
//! wherever a stage recomputes to the same value (early cutoff).
//!
//! The edit mix is tuned so every wave shape occurs: value edits ripple
//! all three stages (AVG often recomputes silently — a depth-2 cutoff),
//! sum-preserving swaps change the grid but leave the row SUM silent (the
//! wave dies at depth 0 with no cascade at all), and plain rewrites are
//! silent at the grid and never trigger anything. With
//! [`Config::early_cutoff`] disabled, silent commits propagate anyway
//! (invalidate-on-write), so the cutoff-off ablation recomputes TOTAL and
//! AVG after every swap — that executions gap is what `graph_throughput`
//! measures.

use dtt_core::{Config, Runtime, TthreadId};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const GRID_BASE: u64 = 0x1000_0000;
const ROWSUM_BASE: u64 = 0x2000_0000;
const TOTAL_BASE: u64 = 0x3000_0000;
const AVG_BASE: u64 = 0x4000_0000;

/// One edit step: writes applied to cells of a single row.
#[derive(Debug, Clone)]
struct Edit {
    row: usize,
    /// `(col, value)` stores, applied in order.
    writes: Vec<(usize, i64)>,
}

/// The spreadsheet workload instance: initial grid plus edit schedule.
#[derive(Debug, Clone)]
pub struct Spreadsheet {
    rows: usize,
    cols: usize,
    grid0: Vec<i64>,
    edits: Vec<Edit>,
}

impl Spreadsheet {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (rows, cols, steps) = match scale {
            Scale::Test => (4, 32, 60),
            Scale::Train => (16, 32, 400),
            Scale::Reference => (64, 64, 2_000),
        };
        let mut rng = StdRng::seed_from_u64(0x5370_7264 + (rows * cols) as u64);
        let grid0: Vec<i64> = (0..rows * cols).map(|_| rng.gen_range(0..100)).collect();

        // Edit schedule, replayed against a shadow grid so silent edits are
        // genuinely silent and swaps genuinely preserve the row sum.
        // Mix: 1/10 value edits, 6/10 swaps, 3/10 silent rewrites.
        let mut grid = grid0.clone();
        let mut edits = Vec::with_capacity(steps);
        for _ in 0..steps {
            let r = rng.gen_range(0..rows);
            let roll: u32 = rng.gen_range(0..10);
            let writes = if roll == 0 {
                // Value edit: nudge one cell by a small nonzero delta. The
                // row sum and total always change; the AVG cell (integer
                // mean per cell) usually does not — a depth-2 cutoff.
                let c = rng.gen_range(0..cols);
                let mut delta = rng.gen_range(1..=3i64);
                if rng.gen_range(0..2u32) == 0 {
                    delta = -delta;
                }
                vec![(c, grid[r * cols + c] + delta)]
            } else if roll <= 6 {
                // Swap two unequal cells in the row: both stores change the
                // grid, but the row SUM recomputes to the same value.
                let mut a = rng.gen_range(0..cols);
                let mut b = rng.gen_range(0..cols);
                for _ in 0..8 {
                    if a != b && grid[r * cols + a] != grid[r * cols + b] {
                        break;
                    }
                    a = rng.gen_range(0..cols);
                    b = rng.gen_range(0..cols);
                }
                vec![(a, grid[r * cols + b]), (b, grid[r * cols + a])]
            } else {
                // Silent rewrite: store the value already there.
                let c = rng.gen_range(0..cols);
                vec![(c, grid[r * cols + c])]
            };
            for &(c, v) in &writes {
                grid[r * cols + c] = v;
            }
            edits.push(Edit { row: r, writes });
        }
        Spreadsheet {
            rows,
            cols,
            grid0,
            edits,
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of edit steps.
    pub fn steps(&self) -> usize {
        self.edits.len()
    }

    /// The baseline/traced kernel: recompute every stage after every edit.
    /// Each row SUM is its own region (`tt_rows[r]`), mirroring the
    /// one-tthread-per-row runtime structure, so the simulator can skip
    /// the rows an edit did not touch.
    fn kernel<P: Probe>(&self, p: &mut P, tt_rows: &[u32], tt_total: u32, tt_avg: u32) -> u64 {
        let (rows, cols) = (self.rows, self.cols);
        let cells = (rows * cols) as i64;
        let mut grid = self.grid0.clone();
        let mut row_sums = vec![0i64; rows];
        let mut digest = Digest::new();
        // Program initialization: populate the grid.
        for (i, &v) in grid.iter().enumerate() {
            util::store_u64(p, 0, GRID_BASE, i, v as u64);
        }
        // One initial recompute pass (no digest) before the edit stream,
        // mirroring the runtime's forced initial mark-dirty joins so the
        // simulator's region-instance counts align with the software
        // runtime's execution counts.
        for edit in std::iter::once(None).chain(self.edits.iter().map(Some)) {
            if let Some(edit) = edit {
                for &(c, v) in &edit.writes {
                    util::store_u64(p, 1, GRID_BASE, edit.row * cols + c, v as u64);
                    grid[edit.row * cols + c] = v;
                }
            }

            // Stage 1: every row SUM, every step, one region per row.
            for (r, slot) in row_sums.iter_mut().enumerate() {
                p.region_begin(tt_rows[r]);
                let mut s = 0i64;
                for c in 0..cols {
                    let i = r * cols + c;
                    s += util::load_u64(p, 2, GRID_BASE, i, grid[i] as u64) as i64;
                }
                *slot = s;
                util::store_u64(p, 3, ROWSUM_BASE, r, s as u64);
                p.compute(cols as u64);
                p.region_end(tt_rows[r]);
                p.join(tt_rows[r]);
            }

            // Stage 2: grand total.
            p.region_begin(tt_total);
            let mut total = 0i64;
            for (r, &s) in row_sums.iter().enumerate() {
                total += util::load_u64(p, 4, ROWSUM_BASE, r, s as u64) as i64;
            }
            util::store_u64(p, 5, TOTAL_BASE, 0, total as u64);
            p.compute(rows as u64);
            p.region_end(tt_total);
            p.join(tt_total);

            // Stage 3: integer mean per cell.
            p.region_begin(tt_avg);
            let t = util::load_u64(p, 6, TOTAL_BASE, 0, total as u64) as i64;
            let avg = t / cells;
            util::store_u64(p, 7, AVG_BASE, 0, avg as u64);
            p.compute(1);
            p.region_end(tt_avg);
            p.join(tt_avg);

            if edit.is_some() {
                digest.push_u64(total as u64);
                digest.push_u64(avg as u64);
            }
        }
        digest.finish()
    }
}

impl Workload for Spreadsheet {
    fn name(&self) -> &'static str {
        "spreadsheet"
    }

    fn spec_inspiration(&self) -> &'static str {
        "materialized-view maintenance (paper §2 motivating pattern)"
    }

    fn description(&self) -> &'static str {
        "grid edits ripple a SUM→TOTAL→AVG tthread chain; early cutoff stops silent waves"
    }

    fn run_baseline(&self) -> u64 {
        let tt_rows: Vec<u32> = (0..self.rows as u32).collect();
        self.kernel(
            &mut NoProbe,
            &tt_rows,
            self.rows as u32,
            self.rows as u32 + 1,
        )
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let (rows, cols) = (self.rows, self.cols);
        let cells = (rows * cols) as i64;
        let mut rt = Runtime::new(cfg, ());
        let grid = rt
            .alloc_matrix::<i64>(rows, cols)
            .expect("arena sized for workload");
        let row_sums = rt
            .alloc_array::<i64>(rows)
            .expect("arena sized for workload");
        let total_cell = rt.alloc_array::<i64>(1).expect("arena sized for workload");
        let avg_cell = rt.alloc_array::<i64>(1).expect("arena sized for workload");

        // Populate the grid before any watches exist, so initialization
        // raises nothing.
        rt.with(|ctx| {
            for r in 0..rows {
                for c in 0..cols {
                    ctx.set(grid.at(r, c), self.grid0[r * cols + c]);
                }
            }
        });

        // Stage 1: one SUM tthread per row, each watching only its row.
        let row_tts: Vec<TthreadId> = (0..rows)
            .map(|r| {
                let id = rt.register(&format!("row_sum{r}"), move |ctx| {
                    let mut s = 0i64;
                    for c in 0..cols {
                        s += ctx.get(grid.at(r, c));
                    }
                    ctx.write(row_sums, r, s);
                });
                rt.watch(id, grid.row_range(r)).expect("region in arena");
                util::declare_output(&mut rt, id, row_sums.range_of(r, r + 1));
                id
            })
            .collect();

        // Stage 2: grand total over the row sums.
        let total_tt = rt.register("total", move |ctx| {
            let mut t = 0i64;
            for r in 0..rows {
                t += ctx.read(row_sums, r);
            }
            ctx.write(total_cell, 0, t);
        });
        rt.watch(total_tt, row_sums.range())
            .expect("region in arena");
        util::declare_output(&mut rt, total_tt, total_cell.range());

        // Stage 3: integer mean per cell.
        let avg_tt = rt.register("avg", move |ctx| {
            let t = ctx.read(total_cell, 0);
            ctx.write(avg_cell, 0, t / cells);
        });
        rt.watch(avg_tt, total_cell.range())
            .expect("region in arena");
        util::declare_output(&mut rt, avg_tt, avg_cell.range());

        // Initial recomputation in topological order.
        for &tt in &row_tts {
            rt.mark_dirty(tt).expect("registered tthread");
            util::must_join(&mut rt, tt);
        }
        rt.mark_dirty(total_tt).expect("registered tthread");
        util::must_join(&mut rt, total_tt);
        rt.mark_dirty(avg_tt).expect("registered tthread");
        util::must_join(&mut rt, avg_tt);

        let mut digest = Digest::new();
        for edit in &self.edits {
            rt.with(|ctx| {
                for &(c, v) in &edit.writes {
                    ctx.set(grid.at(edit.row, c), v);
                }
            });
            // Joins in topological order let each stage's commit cascade
            // to the next before it is joined.
            util::must_join(&mut rt, row_tts[edit.row]);
            util::must_join(&mut rt, total_tt);
            util::must_join(&mut rt, avg_tt);
            let (t, a) = rt.with(|ctx| (ctx.read(total_cell, 0), ctx.read(avg_cell, 0)));
            digest.push_u64(t as u64);
            digest.push_u64(a as u64);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt_rows: Vec<u32> = (0..self.rows)
            .map(|r| b.declare_tthread(&format!("row_sum{r}")))
            .collect();
        let tt_total = b.declare_tthread("total");
        let tt_avg = b.declare_tthread("avg");
        for (r, &tt) in tt_rows.iter().enumerate() {
            b.declare_watch(
                tt,
                GRID_BASE + 8 * (r * self.cols) as u64,
                8 * self.cols as u64,
            );
        }
        b.declare_watch(tt_total, ROWSUM_BASE, 8 * self.rows as u64);
        b.declare_watch(tt_avg, TOTAL_BASE, 8);
        self.kernel(&mut b, &tt_rows, tt_total, tt_avg);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_core::Config;

    #[test]
    fn dtt_matches_baseline() {
        let w = Spreadsheet::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Spreadsheet::new(Scale::Test);
        let base = w.run_baseline();
        assert_eq!(base, w.run_dtt(Config::default().with_workers(2)).digest);
    }

    #[test]
    fn dtt_matches_baseline_without_early_cutoff() {
        let w = Spreadsheet::new(Scale::Test);
        let base = w.run_baseline();
        let off = w.run_dtt(Config::default().with_early_cutoff(false));
        assert_eq!(base, off.digest);
    }

    #[test]
    fn cascades_flow_through_the_chain() {
        let w = Spreadsheet::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let c = run.stats.counters();
        assert!(c.cascades > 0, "value edits must cascade row→total→avg");
        assert!(
            c.cascade_cutoffs > 0,
            "the integer AVG must absorb some totals silently"
        );
        assert_eq!(
            c.cascades,
            c.cascade_enqueues + c.cascade_coalesced + c.cascade_cutoffs,
            "wave conservation"
        );
    }

    #[test]
    fn cutoff_off_recomputes_more() {
        let w = Spreadsheet::new(Scale::Test);
        let on = w.run_dtt(Config::default());
        let off = w.run_dtt(Config::default().with_early_cutoff(false));
        assert_eq!(on.digest, off.digest);
        // Swaps leave the row sum silent; with the cutoff disabled that
        // silence still invalidates TOTAL and AVG downstream.
        assert!(
            off.stats.counters().executions > on.stats.counters().executions,
            "off={} on={}",
            off.stats.counters().executions,
            on.stats.counters().executions
        );
    }

    #[test]
    fn trace_is_well_formed() {
        let w = Spreadsheet::new(Scale::Test);
        let tr = w.trace();
        let (rows, _) = w.dims();
        let mut expected: Vec<String> = (0..rows).map(|r| format!("row_sum{r}")).collect();
        expected.push("total".to_string());
        expected.push("avg".to_string());
        assert_eq!(tr.tthread_names(), &expected);
        assert_eq!(tr.watches().len(), rows + 2);
        assert!(tr.instructions() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Spreadsheet::new(Scale::Test).run_baseline(),
            Spreadsheet::new(Scale::Test).run_baseline()
        );
    }
}
