//! `perlbmk` — interpreter with pattern recompilation (after SPEC
//! 253.perlbmk).
//!
//! An interpreter compiles patterns (regexes, format strings) into
//! dispatch structures and then runs inputs through them. Scripts reload
//! their configuration constantly — and almost always compile the *same*
//! pattern to the same opcodes, making recompilation pure redundancy. The
//! compile step (building a first-byte dispatch index over the opcode
//! program) is a tthread watching the opcode array.
//!
//! The matcher is a tiny byte-code machine: `Lit(b)` matches one byte,
//! `Class(mask)` matches a byte class, `Star(b)` greedily consumes a run.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const PROGRAM_BASE: u64 = 0x1000_0000;
const DISPATCH_BASE: u64 = 0x2000_0000;
const INPUT_BASE: u64 = 0x3000_0000;

/// Opcode encoding inside a `u64`: tag in the top byte, payload below.
const OP_LIT: u64 = 1 << 56;
const OP_CLASS: u64 = 2 << 56;
const OP_STAR: u64 = 3 << 56;

/// Builds a dispatch index over the program: for each possible first byte
/// (0..256) the index of the first opcode that could start a match there,
/// or `u32::MAX`.
pub fn compile_dispatch(program: &[u64]) -> Vec<u32> {
    let mut dispatch = vec![u32::MAX; 256];
    for (pc, &op) in program.iter().enumerate() {
        let tag = op & (0xff << 56);
        let payload = op & 0xff;
        match tag {
            t if t == OP_LIT || t == OP_STAR => {
                let b = payload as usize;
                if dispatch[b] == u32::MAX {
                    dispatch[b] = pc as u32;
                }
            }
            t if t == OP_CLASS => {
                // Class over a 4-byte stride: payload, payload+4, ...
                let mut b = payload as usize;
                while b < 256 {
                    if dispatch[b] == u32::MAX {
                        dispatch[b] = pc as u32;
                    }
                    b += 4;
                }
            }
            _ => {}
        }
    }
    dispatch
}

/// Runs `input` through the program starting at the opcode the dispatch
/// index selects for its first byte; returns the number of bytes matched.
pub fn run_match(program: &[u64], dispatch: &[u32], input: &[u8]) -> u32 {
    let Some(&first) = input.first() else {
        return 0;
    };
    let start = dispatch[first as usize];
    if start == u32::MAX {
        return 0;
    }
    let mut pc = start as usize;
    let mut pos = 0usize;
    while pc < program.len() && pos < input.len() {
        let op = program[pc];
        let tag = op & (0xff << 56);
        let payload = (op & 0xff) as u8;
        match tag {
            t if t == OP_LIT => {
                if input[pos] != payload {
                    break;
                }
                pos += 1;
                pc += 1;
            }
            t if t == OP_CLASS => {
                if input[pos] % 4 != payload % 4 {
                    break;
                }
                pos += 1;
                pc += 1;
            }
            t if t == OP_STAR => {
                while pos < input.len() && input[pos] == payload {
                    pos += 1;
                }
                pc += 1;
            }
            _ => break,
        }
    }
    pos as u32
}

/// One interpreter round.
#[derive(Debug, Clone)]
struct PerlRound {
    /// Pattern writes `(index, opcode)` — configuration reloads mostly
    /// rewrite the same program.
    writes: Vec<(usize, u64)>,
    /// Input lines to match this round.
    inputs: Vec<Vec<u8>>,
}

/// The perlbmk workload instance.
#[derive(Debug, Clone)]
pub struct Perlbmk {
    program_len: usize,
    program0: Vec<u64>,
    rounds: Vec<PerlRound>,
}

impl Perlbmk {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (program_len, rounds_n, inputs_n, input_len, edit_period) = match scale {
            Scale::Test => (16, 10, 6, 16, 3),
            Scale::Train => (96, 80, 48, 64, 4),
            Scale::Reference => (128, 200, 64, 96, 4),
        };
        let mut rng = StdRng::seed_from_u64(0x7065_726c);
        let gen_op = |rng: &mut StdRng| -> u64 {
            match rng.gen_range(0..3) {
                0 => OP_LIT | rng.gen_range(b'a'..=b'f') as u64,
                1 => OP_CLASS | rng.gen_range(0..4) as u64,
                _ => OP_STAR | rng.gen_range(b'a'..=b'f') as u64,
            }
        };
        let program0: Vec<u64> = (0..program_len).map(|_| gen_op(&mut rng)).collect();
        let mut program = program0.clone();
        let rounds = (0..rounds_n)
            .map(|round| {
                let mut writes = Vec::new();
                // Configuration reload: rewrite a window of the program.
                for k in 0..6 {
                    let i = rng.gen_range(0..program_len);
                    if k == 0 && round % edit_period == edit_period - 1 {
                        let op = gen_op(&mut rng);
                        program[i] = op;
                        writes.push((i, op));
                    } else {
                        writes.push((i, program[i]));
                    }
                }
                let inputs = (0..inputs_n)
                    .map(|_| (0..input_len).map(|_| rng.gen_range(b'a'..=b'h')).collect())
                    .collect();
                PerlRound { writes, inputs }
            })
            .collect();
        Perlbmk {
            program_len,
            program0,
            rounds,
        }
    }

    /// Opcodes in the compiled pattern.
    pub fn program_len(&self) -> usize {
        self.program_len
    }

    /// Interpreter rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tt: u32) -> u64 {
        let mut program = self.program0.clone();
        let mut dispatch = vec![u32::MAX; 256];
        let mut digest = Digest::new();
        // Program initialization: load the compiled pattern.
        for (i, &op) in program.iter().enumerate() {
            util::store_u64(p, 0, PROGRAM_BASE, i, op);
        }
        for round in &self.rounds {
            for &(i, op) in &round.writes {
                util::store_u64(p, 1, PROGRAM_BASE, i, op);
                program[i] = op;
            }
            // Recompile the dispatch index (the tthread region).
            p.region_begin(tt);
            for (i, &op) in program.iter().enumerate() {
                util::load_u64(p, 2, PROGRAM_BASE, i, op);
            }
            p.compute((self.program_len * 8 + 256) as u64);
            dispatch = compile_dispatch(&program);
            util::store_u64(p, 3, DISPATCH_BASE, 0, dispatch[0] as u64);
            p.region_end(tt);
            p.join(tt);

            // Match the round's inputs.
            let mut matched = 0u64;
            for (k, input) in round.inputs.iter().enumerate() {
                for (j, &byte) in input.iter().enumerate() {
                    util::load_u8(p, 4, INPUT_BASE + ((k as u64) << 12), j, byte);
                }
                p.compute(4 * input.len() as u64);
                matched = matched
                    .wrapping_mul(31)
                    .wrapping_add(run_match(&program, &dispatch, input) as u64);
            }
            digest.push_u64(matched);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct PerlUser {
    dispatch: Vec<u32>,
    scratch: Vec<u64>,
}

impl Workload for Perlbmk {
    fn name(&self) -> &'static str {
        "perlbmk"
    }

    fn spec_inspiration(&self) -> &'static str {
        "253.perlbmk"
    }

    fn description(&self) -> &'static str {
        "pattern recompilation gated on opcode changes; config reloads are mostly silent"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let mut rt = Runtime::new(
            cfg,
            PerlUser {
                dispatch: vec![u32::MAX; 256],
                scratch: Vec::new(),
            },
        );
        let program: TrackedArray<u64> = rt
            .alloc_array_from(&self.program0)
            .expect("arena sized for workload");
        let compile = rt.register("compile_dispatch", move |ctx| {
            let mut scratch = std::mem::take(&mut ctx.user_mut().scratch);
            ctx.read_all_into(program, &mut scratch);
            let dispatch = compile_dispatch(&scratch);
            let user = ctx.user_mut();
            user.scratch = scratch;
            user.dispatch = dispatch;
        });
        rt.watch(compile, program.range()).expect("region in arena");
        rt.mark_dirty(compile).expect("registered tthread");

        let mut shadow = self.program0.clone();
        let mut digest = Digest::new();
        for round in &self.rounds {
            rt.with(|ctx| {
                for &(i, op) in &round.writes {
                    ctx.write(program, i, op);
                    shadow[i] = op;
                }
            });
            util::must_join(&mut rt, compile);
            let matched = rt.with(|ctx| {
                let dispatch = &ctx.user().dispatch;
                let mut matched = 0u64;
                for input in &round.inputs {
                    matched = matched
                        .wrapping_mul(31)
                        .wrapping_add(run_match(&shadow, dispatch, input) as u64);
                }
                matched
            });
            digest.push_u64(matched);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt = b.declare_tthread("compile_dispatch");
        b.declare_watch(tt, PROGRAM_BASE, 8 * self.program_len as u64);
        self.kernel(&mut b, tt);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_points_at_first_starter() {
        let program = vec![
            OP_LIT | b'a' as u64,
            OP_LIT | b'b' as u64,
            OP_LIT | b'a' as u64,
        ];
        let d = compile_dispatch(&program);
        assert_eq!(d[b'a' as usize], 0);
        assert_eq!(d[b'b' as usize], 1);
        assert_eq!(d[b'z' as usize], u32::MAX);
    }

    #[test]
    fn literal_run_matches_greedily() {
        // Program: a* then literal b.
        let program = vec![OP_STAR | b'a' as u64, OP_LIT | b'b' as u64];
        let d = compile_dispatch(&program);
        assert_eq!(run_match(&program, &d, b"aaab"), 4);
        // Input starting at 'b' dispatches straight to the literal opcode.
        assert_eq!(run_match(&program, &d, b"b"), 1);
        assert_eq!(run_match(&program, &d, b"aaz"), 2);
        assert_eq!(run_match(&program, &d, b""), 0);
    }

    #[test]
    fn class_matches_stride() {
        let program = vec![OP_CLASS | 1u64];
        let d = compile_dispatch(&program);
        // byte 5: 5 % 4 == 1 matches class payload 1.
        assert_eq!(run_match(&program, &d, &[5]), 1);
        assert_eq!(run_match(&program, &d, &[6]), 0);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Perlbmk::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn silent_reloads_skip_recompilation() {
        let w = Perlbmk::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let tt = &run.tthreads[0];
        assert!(tt.skips > 0);
        assert!(tt.executions < w.rounds() as u64);
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Perlbmk::new(Scale::Test).run_baseline(),
            Perlbmk::new(Scale::Test).run_baseline()
        );
    }
}
