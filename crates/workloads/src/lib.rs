//! # dtt-workloads — the benchmark suite
//!
//! Fourteen kernels modelled on the C SPEC benchmarks the HPCA'11 paper
//! evaluates, plus two multi-stage kernels (`spreadsheet`, `pipeline`)
//! that exercise the dependency-graph subsystem — tthreads triggering
//! tthreads. Each kernel exposes the redundancy structure that
//! data-triggered threads exploit and ships three semantically identical
//! implementations:
//!
//! * **baseline** — plain Rust, recomputing everything every iteration
//!   ([`Workload::run_baseline`]);
//! * **DTT** — refactored onto [`dtt_core::Runtime`], with the recomputable
//!   slice expressed as tthreads ([`Workload::run_dtt`]);
//! * **traced** — the baseline instrumented through [`dtt_trace::Probe`],
//!   producing the annotated trace the profiler and timing simulator
//!   consume ([`Workload::trace`]).
//!
//! The baseline and DTT digests are asserted bit-equal in every kernel's
//! tests: the DTT transformation never changes program results.
//!
//! ```
//! use dtt_core::Config;
//! use dtt_workloads::{Mcf, Scale, Workload};
//!
//! let mcf = Mcf::new(Scale::Test);
//! let run = mcf.run_dtt(Config::default());
//! assert_eq!(run.digest, mcf.run_baseline());
//! // Most potential refreshes were skipped:
//! assert!(run.tthreads[0].skips > run.tthreads[0].executions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ammp;
pub mod art;
pub mod bzip2;
pub mod crafty;
pub mod equake;
pub mod gap;
pub mod gzip;
pub mod mcf;
pub mod mesa;
pub mod parser;
pub mod perlbmk;
pub mod pipeline;
pub mod served;
pub mod spreadsheet;
pub mod suite;
pub mod twolf;
pub mod util;
pub mod vortex;
pub mod vpr;

pub use ammp::Ammp;
pub use art::Art;
pub use bzip2::Bzip2;
pub use crafty::Crafty;
pub use equake::Equake;
pub use gap::Gap;
pub use gzip::Gzip;
pub use mcf::Mcf;
pub use mesa::Mesa;
pub use parser::Parser;
pub use perlbmk::Perlbmk;
pub use pipeline::Pipeline;
pub use served::{KeyMap, PipelineView, ServedKeyed, ServedPipeline, ServedSheet, SheetView};
pub use spreadsheet::Spreadsheet;
pub use suite::{suite, DttRun, Scale, TthreadReport, Workload};
pub use twolf::Twolf;
pub use vortex::Vortex;
pub use vpr::Vpr;
