//! `mcf` — minimum-cost-flow network simplex kernel (after SPEC 181.mcf /
//! 429.mcf).
//!
//! The real mcf spends most of its time in `refresh_potential`, a walk over
//! the spanning tree that recomputes every node potential after each
//! simplex pivot — even though most pivot *attempts* leave the tree
//! untouched. That is the paper's flagship example (5.9× speedup): attach
//! the potential refresh to the tree arrays as a tthread and it runs only
//! when a pivot actually changes the basis.
//!
//! Model: a rooted spanning tree (`parent`, `cost`, with the invariant
//! `parent[i] < i` so index order is a topological order), node potentials
//! `potential[i] = potential[parent[i]] + cost[i]`, and a pricing scan over
//! a static arc list that consumes the potentials every iteration. Each
//! iteration attempts one pivot; most attempts rewrite the same
//! parent/cost values (silent stores), a few really mutate the tree.

use dtt_core::{Config, Runtime};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const PARENT_BASE: u64 = 0x1000_0000;
const COST_BASE: u64 = 0x2000_0000;
const POT_BASE: u64 = 0x3000_0000;
const ARC_FROM_BASE: u64 = 0x4000_0000;
const ARC_TO_BASE: u64 = 0x5000_0000;
const ARC_COST_BASE: u64 = 0x6000_0000;

/// One scheduled pivot attempt.
#[derive(Debug, Clone, Copy)]
struct Pivot {
    /// Node whose tree edge the attempt rewrites.
    node: usize,
    /// Parent the attempt writes (equals the current parent for silent
    /// attempts).
    parent: u32,
    /// Edge cost the attempt writes.
    cost: i64,
}

/// The mcf workload instance: generated network plus pivot schedule.
#[derive(Debug, Clone)]
pub struct Mcf {
    nodes: usize,
    parent0: Vec<u32>,
    cost0: Vec<i64>,
    arc_from: Vec<u32>,
    arc_to: Vec<u32>,
    arc_cost: Vec<i64>,
    pivots: Vec<Pivot>,
}

impl Mcf {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (nodes, arcs, iters, pivot_period) = match scale {
            Scale::Test => (60, 20, 30, 5),
            Scale::Train => (4_000, 300, 150, 30),
            Scale::Reference => (16_000, 1_200, 400, 30),
        };
        let mut rng = StdRng::seed_from_u64(0x6d63_6600 + nodes as u64);
        let parent0: Vec<u32> = (0..nodes)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    rng.gen_range(0..i) as u32
                }
            })
            .collect();
        let cost0: Vec<i64> = (0..nodes).map(|_| rng.gen_range(-50..50)).collect();
        let arc_from: Vec<u32> = (0..arcs).map(|_| rng.gen_range(0..nodes) as u32).collect();
        let arc_to: Vec<u32> = (0..arcs).map(|_| rng.gen_range(0..nodes) as u32).collect();
        let arc_cost: Vec<i64> = (0..arcs).map(|_| rng.gen_range(-100..100)).collect();

        // Pivot schedule: every iteration attempts a pivot; only every
        // `pivot_period`-th attempt really changes the tree. To make the
        // silent attempts genuinely silent we replay tree state while
        // generating.
        let mut parent = parent0.clone();
        let mut cost = cost0.clone();
        let mut pivots = Vec::with_capacity(iters);
        for iter in 0..iters {
            let node = rng.gen_range(2..nodes);
            if iter % pivot_period == pivot_period - 1 {
                let new_parent = rng.gen_range(0..node) as u32;
                let new_cost = rng.gen_range(-50..50);
                parent[node] = new_parent;
                cost[node] = new_cost;
                pivots.push(Pivot {
                    node,
                    parent: new_parent,
                    cost: new_cost,
                });
            } else {
                pivots.push(Pivot {
                    node,
                    parent: parent[node],
                    cost: cost[node],
                });
            }
        }
        Mcf {
            nodes,
            parent0,
            cost0,
            arc_from,
            arc_to,
            arc_cost,
            pivots,
        }
    }

    /// Number of nodes in the network.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of arcs in the pricing list.
    pub fn arcs(&self) -> usize {
        self.arc_from.len()
    }

    /// Number of main-loop iterations (pivot attempts).
    pub fn iterations(&self) -> usize {
        self.pivots.len()
    }

    /// The baseline/traced kernel: refresh potentials every iteration, then
    /// run the pricing scan.
    fn kernel<P: Probe>(&self, p: &mut P, tt: u32) -> u64 {
        let n = self.nodes;
        let mut parent = self.parent0.clone();
        let mut cost = self.cost0.clone();
        let mut potential = vec![0i64; n];
        let mut digest = Digest::new();
        // Program initialization: build the tree arrays in memory.
        for i in 0..n {
            util::store_u32(p, 0, PARENT_BASE, i, parent[i]);
            util::store_u64(p, 0, COST_BASE, i, cost[i] as u64);
        }
        for pivot in &self.pivots {
            // Pivot attempt (often a silent rewrite).
            util::store_u32(p, 7, PARENT_BASE, pivot.node, pivot.parent);
            util::store_u64(p, 8, COST_BASE, pivot.node, pivot.cost as u64);
            parent[pivot.node] = pivot.parent;
            cost[pivot.node] = pivot.cost;

            // refresh_potential: the candidate tthread region.
            p.region_begin(tt);
            for i in 1..n {
                let par = util::load_u32(p, 1, PARENT_BASE, i, parent[i]) as usize;
                let c = util::load_u64(p, 2, COST_BASE, i, cost[i] as u64) as i64;
                potential[i] = potential[par] + c;
                util::store_u64(p, 3, POT_BASE, i, potential[i] as u64);
                p.compute(1);
            }
            p.region_end(tt);
            p.join(tt);

            // Pricing scan: consume the potentials.
            let mut negative_sum = 0i64;
            for a in 0..self.arc_from.len() {
                let from = util::load_u32(p, 9, ARC_FROM_BASE, a, self.arc_from[a]) as usize;
                let to = util::load_u32(p, 10, ARC_TO_BASE, a, self.arc_to[a]) as usize;
                let ac = util::load_u64(p, 6, ARC_COST_BASE, a, self.arc_cost[a] as u64) as i64;
                let pf = util::load_u64(p, 4, POT_BASE, from, potential[from] as u64) as i64;
                let pt = util::load_u64(p, 5, POT_BASE, to, potential[to] as u64) as i64;
                let reduced = ac + pf - pt;
                if reduced < 0 {
                    negative_sum += reduced;
                }
                p.compute(3);
            }
            digest.push_u64(negative_sum as u64);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct McfUser {
    potential: Vec<i64>,
    parent_copy: Vec<u32>,
    cost_copy: Vec<i64>,
}

impl Workload for Mcf {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn spec_inspiration(&self) -> &'static str {
        "181.mcf / 429.mcf"
    }

    fn description(&self) -> &'static str {
        "network-simplex potential refresh over a spanning tree; most pivot attempts are silent"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let n = self.nodes;
        let mut rt = Runtime::new(
            cfg,
            McfUser {
                potential: vec![0i64; n],
                parent_copy: Vec::new(),
                cost_copy: Vec::new(),
            },
        );
        let parent = rt
            .alloc_array_from(&self.parent0)
            .expect("arena sized for workload");
        let cost = rt
            .alloc_array_from(&self.cost0)
            .expect("arena sized for workload");
        let refresh = rt.register("refresh_potential", move |ctx| {
            let mut parents = std::mem::take(&mut ctx.user_mut().parent_copy);
            let mut costs = std::mem::take(&mut ctx.user_mut().cost_copy);
            ctx.read_all_into(parent, &mut parents);
            ctx.read_all_into(cost, &mut costs);
            let user = ctx.user_mut();
            for i in 1..n {
                user.potential[i] = user.potential[parents[i] as usize] + costs[i];
            }
            user.parent_copy = parents;
            user.cost_copy = costs;
        });
        rt.watch(refresh, parent.range()).expect("region in arena");
        rt.watch(refresh, cost.range()).expect("region in arena");
        rt.mark_dirty(refresh).expect("registered tthread");

        let mut digest = Digest::new();
        for pivot in &self.pivots {
            rt.with(|ctx| {
                ctx.write(parent, pivot.node, pivot.parent);
                ctx.write(cost, pivot.node, pivot.cost);
            });
            util::must_join(&mut rt, refresh);
            let negative_sum = rt.with(|ctx| {
                let potential = &ctx.user().potential;
                let mut sum = 0i64;
                for a in 0..self.arc_from.len() {
                    let reduced = self.arc_cost[a] + potential[self.arc_from[a] as usize]
                        - potential[self.arc_to[a] as usize];
                    if reduced < 0 {
                        sum += reduced;
                    }
                }
                sum
            });
            digest.push_u64(negative_sum as u64);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt = b.declare_tthread("refresh_potential");
        b.declare_watch(tt, PARENT_BASE, 4 * self.nodes as u64);
        b.declare_watch(tt, COST_BASE, 8 * self.nodes as u64);
        self.kernel(&mut b, tt);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_core::Config;

    #[test]
    fn dtt_matches_baseline() {
        let w = Mcf::new(Scale::Test);
        let base = w.run_baseline();
        let dtt = w.run_dtt(Config::default());
        assert_eq!(base, dtt.digest);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Mcf::new(Scale::Test);
        let base = w.run_baseline();
        let dtt = w.run_dtt(Config::default().with_workers(2));
        assert_eq!(base, dtt.digest);
    }

    #[test]
    fn most_refreshes_are_skipped() {
        let w = Mcf::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let tt = &run.tthreads[0];
        assert_eq!(tt.name, "refresh_potential");
        // Pivot period is 5 at test scale: ~1/5 of attempts change the tree.
        assert!(
            tt.skips > tt.executions,
            "skips={} execs={}",
            tt.skips,
            tt.executions
        );
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn trace_is_well_formed_and_annotated() {
        let w = Mcf::new(Scale::Test);
        let tr = w.trace();
        assert_eq!(tr.tthread_names(), &["refresh_potential".to_string()]);
        assert_eq!(tr.watches().len(), 2);
        assert!(tr.instructions() > 0);
        let regions = tr.region_instructions();
        assert!(regions[0] > 0);
        // One region per iteration.
        let begins = tr
            .events()
            .iter()
            .filter(|e| matches!(e, dtt_trace::Event::RegionBegin { .. }))
            .count();
        assert_eq!(begins, w.iterations());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Mcf::new(Scale::Test);
        let b = Mcf::new(Scale::Test);
        assert_eq!(a.run_baseline(), b.run_baseline());
    }

    #[test]
    fn tree_invariant_parent_below_child() {
        let w = Mcf::new(Scale::Test);
        for (i, &p) in w.parent0.iter().enumerate().skip(1) {
            assert!((p as usize) < i);
        }
        for pv in &w.pivots {
            assert!((pv.parent as usize) < pv.node);
        }
    }
}
