//! `vortex` — object-oriented database with derived indexes (after SPEC
//! 255.vortex).
//!
//! vortex mutates an in-memory object store and continually re-derives
//! lookup structures. Real transaction mixes are dominated by *upserts
//! that do not change the stored value* (re-inserting the current state of
//! an object), so index maintenance is largely redundant. Fields are laid
//! out column-major; each index is a tthread watching its field's column
//! and rebuilding a bucket directory.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const FIELD_BASE: u64 = 0x1000_0000;
const FIELD_STRIDE: u64 = 0x100_0000;
const INDEX_BASE: u64 = 0x2000_0000;

const FIELDS: usize = 3;
const BUCKETS: usize = 64;

/// One transaction: a batch of field upserts.
#[derive(Debug, Clone)]
struct Txn {
    /// `(field, object, value)` — silent when the value is unchanged.
    writes: Vec<(usize, usize, u64)>,
    /// Index probes issued after the transaction: `(field, bucket)`.
    queries: Vec<(usize, usize)>,
}

/// The vortex workload instance.
#[derive(Debug, Clone)]
pub struct Vortex {
    objects: usize,
    fields0: Vec<Vec<u64>>,
    txns: Vec<Txn>,
}

/// Rebuilds the bucket directory of one field column: entry `b` counts the
/// objects whose value hashes to bucket `b`, folded with a rolling digest
/// so ordering matters.
pub fn build_index(column: &[u64]) -> Vec<u64> {
    let mut dir = vec![0u64; BUCKETS];
    for (obj, &v) in column.iter().enumerate() {
        let b = (v.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 58) as usize % BUCKETS;
        dir[b] = dir[b].wrapping_mul(31).wrapping_add(obj as u64 ^ v);
    }
    dir
}

impl Vortex {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (objects, txns_n, writes_per_txn, queries_per_txn, change_period) = match scale {
            Scale::Test => (48, 12, 6, 4, 3),
            Scale::Train => (1_024, 80, 24, 256, 3),
            Scale::Reference => (4_096, 160, 32, 384, 3),
        };
        let mut rng = StdRng::seed_from_u64(0x766f_7274 + objects as u64);
        let fields0: Vec<Vec<u64>> = (0..FIELDS)
            .map(|_| (0..objects).map(|_| rng.gen_range(0..1_000)).collect())
            .collect();
        let mut fields = fields0.clone();
        let txns = (0..txns_n)
            .map(|t| {
                let mut writes = Vec::with_capacity(writes_per_txn);
                for w in 0..writes_per_txn {
                    let f = rng.gen_range(0..FIELDS);
                    let o = rng.gen_range(0..objects);
                    // Most upserts re-store the object's current state; on
                    // the change period one write per transaction really
                    // updates a field.
                    if w == 0 && t % change_period == change_period - 1 {
                        let v = rng.gen_range(0..1_000);
                        fields[f][o] = v;
                        writes.push((f, o, v));
                    } else {
                        writes.push((f, o, fields[f][o]));
                    }
                }
                let queries = (0..queries_per_txn)
                    .map(|_| (rng.gen_range(0..FIELDS), rng.gen_range(0..BUCKETS)))
                    .collect();
                Txn { writes, queries }
            })
            .collect();
        Vortex {
            objects,
            fields0,
            txns,
        }
    }

    /// Objects in the store.
    pub fn objects(&self) -> usize {
        self.objects
    }

    /// Transactions processed.
    pub fn transactions(&self) -> usize {
        self.txns.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tts: &[u32]) -> u64 {
        let mut fields = self.fields0.clone();
        let mut indexes: Vec<Vec<u64>> = vec![vec![0; BUCKETS]; FIELDS];
        let mut digest = Digest::new();
        // Program initialization: load the object store.
        for (f, column) in fields.iter().enumerate() {
            for (o, &v) in column.iter().enumerate() {
                util::store_u64(p, 0, FIELD_BASE + f as u64 * FIELD_STRIDE, o, v);
            }
        }
        for txn in &self.txns {
            for &(f, o, v) in &txn.writes {
                util::store_u64(p, 1, FIELD_BASE + f as u64 * FIELD_STRIDE, o, v);
                fields[f][o] = v;
            }
            // Index maintenance: one region per field index.
            for (f, column) in fields.iter().enumerate() {
                p.region_begin(tts[f]);
                for (o, &v) in column.iter().enumerate() {
                    util::load_u64(p, 2, FIELD_BASE + f as u64 * FIELD_STRIDE, o, v);
                }
                p.compute(4 * self.objects as u64);
                indexes[f] = build_index(column);
                util::store_u64(p, 3, INDEX_BASE + f as u64 * FIELD_STRIDE, 0, indexes[f][0]);
                p.region_end(tts[f]);
                p.join(tts[f]);
            }
            // Query phase: probe the directories.
            let mut answer = 0u64;
            for &(f, b) in &txn.queries {
                let v =
                    util::load_u64(p, 4, INDEX_BASE + f as u64 * FIELD_STRIDE, b, indexes[f][b]);
                answer = answer.wrapping_mul(31).wrapping_add(v);
                p.compute(12);
            }
            digest.push_u64(answer);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct VortexUser {
    indexes: Vec<Vec<u64>>,
    scratch: Vec<u64>,
}

impl Workload for Vortex {
    fn name(&self) -> &'static str {
        "vortex"
    }

    fn spec_inspiration(&self) -> &'static str {
        "255.vortex"
    }

    fn description(&self) -> &'static str {
        "object-store index maintenance; most transactional upserts re-store unchanged values"
    }

    fn run_baseline(&self) -> u64 {
        let tts: Vec<u32> = (0..FIELDS as u32).collect();
        self.kernel(&mut NoProbe, &tts)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let objects = self.objects;
        let mut rt = Runtime::new(
            cfg,
            VortexUser {
                indexes: vec![vec![0; BUCKETS]; FIELDS],
                scratch: Vec::new(),
            },
        );
        let columns: Vec<TrackedArray<u64>> = self
            .fields0
            .iter()
            .map(|c| rt.alloc_array_from(c).expect("arena sized for workload"))
            .collect();
        let mut tts = Vec::with_capacity(FIELDS);
        for (f, &column) in columns.iter().enumerate() {
            let tt = rt.register(&format!("index_field_{f}"), move |ctx| {
                let mut scratch = std::mem::take(&mut ctx.user_mut().scratch);
                ctx.read_all_into(column, &mut scratch);
                let dir = build_index(&scratch);
                let user = ctx.user_mut();
                user.scratch = scratch;
                user.indexes[f] = dir;
                let _ = objects;
            });
            rt.watch(tt, column.range()).expect("region in arena");
            rt.mark_dirty(tt).expect("registered tthread");
            tts.push(tt);
        }

        let mut digest = Digest::new();
        for txn in &self.txns {
            rt.with(|ctx| {
                for &(f, o, v) in &txn.writes {
                    ctx.write(columns[f], o, v);
                }
            });
            for &tt in &tts {
                util::must_join(&mut rt, tt);
            }
            let answer = rt.with(|ctx| {
                let mut answer = 0u64;
                for &(f, b) in &txn.queries {
                    answer = answer
                        .wrapping_mul(31)
                        .wrapping_add(ctx.user().indexes[f][b]);
                }
                answer
            });
            digest.push_u64(answer);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tts: Vec<u32> = (0..FIELDS)
            .map(|f| {
                let tt = b.declare_tthread(&format!("index_field_{f}"));
                b.declare_watch(
                    tt,
                    FIELD_BASE + f as u64 * FIELD_STRIDE,
                    8 * self.objects as u64,
                );
                tt
            })
            .collect();
        self.kernel(&mut b, &tts);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_deterministic_and_value_sensitive() {
        let col = vec![1, 2, 3, 4, 5];
        assert_eq!(build_index(&col), build_index(&col));
        let mut changed = col.clone();
        changed[2] = 99;
        assert_ne!(build_index(&col), build_index(&changed));
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Vortex::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Vortex::new(Scale::Test);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default().with_workers(2)).digest
        );
    }

    #[test]
    fn silent_upserts_skip_index_maintenance() {
        let w = Vortex::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let skips: u64 = run.tthreads.iter().map(|t| t.skips).sum();
        let execs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        assert!(skips > execs, "skips={skips} execs={execs}");
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Vortex::new(Scale::Test).run_baseline(),
            Vortex::new(Scale::Test).run_baseline()
        );
    }
}
