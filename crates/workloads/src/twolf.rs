//! `twolf` — standard-cell placement cost maintenance (after SPEC
//! 300.twolf).
//!
//! twolf's simulated-annealing placer re-derives net bounding-box costs
//! around every move, and a large fraction of proposed moves are rejected —
//! the cell's position is written back unchanged, a silent store. Grouping
//! nets into blocks and attaching each block's half-perimeter wire length
//! (HPWL) sum to the positions of the cells on its nets turns the cost
//! refresh into tthreads that only fire for accepted moves near them.
//!
//! Positions are packed `x<<32 | y` in one tracked word per cell so a move
//! is a single store.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const POS_BASE: u64 = 0x1000_0000;
const COST_BASE: u64 = 0x2000_0000;

/// Packs grid coordinates into one tracked word.
pub fn pack_xy(x: u32, y: u32) -> u64 {
    ((x as u64) << 32) | y as u64
}

/// Half-perimeter wire length of one net given packed cell positions.
pub fn net_hpwl(positions: &[u64], net: &[u32]) -> u64 {
    let mut min_x = u32::MAX;
    let mut max_x = 0u32;
    let mut min_y = u32::MAX;
    let mut max_y = 0u32;
    for &cell in net {
        let p = positions[cell as usize];
        let x = (p >> 32) as u32;
        let y = p as u32;
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    (max_x - min_x) as u64 + (max_y - min_y) as u64
}

/// The twolf workload instance.
#[derive(Debug, Clone)]
pub struct Twolf {
    cells: usize,
    groups: usize,
    pos0: Vec<u64>,
    /// Nets as cell-id lists, partitioned into `groups` blocks.
    net_groups: Vec<Vec<Vec<u32>>>,
    /// Annealing schedule: `(cell, packed_position)` — rejected moves write
    /// the old position back.
    moves: Vec<(usize, u64)>,
}

impl Twolf {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (cells, nets, groups, net_size, moves_n, accept_period) = match scale {
            Scale::Test => (32, 16, 4, 3, 40, 3),
            Scale::Train => (256, 96, 4, 6, 400, 2),
            Scale::Reference => (512, 192, 8, 6, 1_000, 2),
        };
        let mut rng = StdRng::seed_from_u64(0x7477_6f6c + cells as u64);
        let pos0: Vec<u64> = (0..cells)
            .map(|_| pack_xy(rng.gen_range(0..256), rng.gen_range(0..256)))
            .collect();
        let nets_per_group = nets / groups;
        let net_groups: Vec<Vec<Vec<u32>>> = (0..groups)
            .map(|_| {
                (0..nets_per_group)
                    .map(|_| {
                        (0..net_size)
                            .map(|_| rng.gen_range(0..cells) as u32)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut pos = pos0.clone();
        let moves = (0..moves_n)
            .map(|m| {
                let cell = rng.gen_range(0..cells);
                if m % accept_period == accept_period - 1 {
                    // Accepted move.
                    let p = pack_xy(rng.gen_range(0..256), rng.gen_range(0..256));
                    pos[cell] = p;
                    (cell, p)
                } else {
                    // Rejected move: position written back unchanged.
                    (cell, pos[cell])
                }
            })
            .collect();
        Twolf {
            cells,
            groups,
            pos0,
            net_groups,
            moves,
        }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of net groups (= tthreads).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of annealing moves.
    pub fn moves(&self) -> usize {
        self.moves.len()
    }

    /// Index from cell id to the `(group, net)` pairs it appears on.
    fn cell_nets(&self) -> Vec<Vec<(usize, usize)>> {
        let mut index = vec![Vec::new(); self.cells];
        for (g, nets) in self.net_groups.iter().enumerate() {
            for (ni, net) in nets.iter().enumerate() {
                for &c in net {
                    if !index[c as usize].contains(&(g, ni)) {
                        index[c as usize].push((g, ni));
                    }
                }
            }
        }
        index
    }

    fn kernel<P: Probe>(&self, p: &mut P, tts: &[u32]) -> u64 {
        let mut pos = self.pos0.clone();
        let mut costs = vec![0u64; self.groups];
        let cell_nets = self.cell_nets();
        let mut digest = Digest::new();
        // Program initialization: the initial placement.
        for (c, &v) in pos.iter().enumerate() {
            util::store_u64(p, 0, POS_BASE, c, v);
        }
        for &(cell, packed) in &self.moves {
            util::store_u64(p, 1, POS_BASE, cell, packed);
            pos[cell] = packed;
            // Delta evaluation: the annealer prices the affected nets and
            // runs its acceptance bookkeeping on every move.
            let mut delta = 0u64;
            for &(g, ni) in &cell_nets[cell] {
                let net = &self.net_groups[g][ni];
                for &c in net {
                    util::load_u64(p, 4, POS_BASE, c as usize, pos[c as usize]);
                }
                p.compute(6 * net.len() as u64);
                delta += net_hpwl(&pos, net);
            }
            p.compute(800);
            digest.push_u64(delta);
            for (g, nets) in self.net_groups.iter().enumerate() {
                p.region_begin(tts[g]);
                let mut total = 0u64;
                for net in nets {
                    for &c in net {
                        util::load_u64(p, 2, POS_BASE, c as usize, pos[c as usize]);
                    }
                    p.compute(4 * net.len() as u64);
                    total += net_hpwl(&pos, net);
                }
                costs[g] = total;
                util::store_u64(p, 3, COST_BASE, g, total);
                p.region_end(tts[g]);
                p.join(tts[g]);
            }
            let cost: u64 = costs.iter().sum();
            p.compute(self.groups as u64);
            digest.push_u64(cost);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct TwolfUser {
    net_groups: Vec<Vec<Vec<u32>>>,
    costs: Vec<u64>,
    pos_copy: Vec<u64>,
}

impl Workload for Twolf {
    fn name(&self) -> &'static str {
        "twolf"
    }

    fn spec_inspiration(&self) -> &'static str {
        "300.twolf"
    }

    fn description(&self) -> &'static str {
        "annealing net-cost refresh; rejected moves are silent stores, accepted moves dirty nearby nets"
    }

    fn run_baseline(&self) -> u64 {
        let tts: Vec<u32> = (0..self.groups as u32).collect();
        self.kernel(&mut NoProbe, &tts)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let cells = self.cells;
        let mut rt = Runtime::new(
            cfg,
            TwolfUser {
                net_groups: self.net_groups.clone(),
                costs: vec![0u64; self.groups],
                pos_copy: vec![0u64; cells],
            },
        );
        let pos: TrackedArray<u64> = rt
            .alloc_array_from(&self.pos0)
            .expect("arena sized for workload");
        let mut tts = Vec::with_capacity(self.groups);
        for g in 0..self.groups {
            let tt = rt.register(&format!("hpwl_group_{g}"), move |ctx| {
                let mut pos_copy = std::mem::take(&mut ctx.user_mut().pos_copy);
                ctx.read_all_into(pos, &mut pos_copy);
                let user = ctx.user_mut();
                user.costs[g] = user.net_groups[g]
                    .iter()
                    .map(|net| net_hpwl(&pos_copy, net))
                    .sum::<u64>();
                user.pos_copy = pos_copy;
                let _ = cells;
            });
            // Watch exactly the cells appearing on this group's nets.
            let mut watched: Vec<u32> = self.net_groups[g].iter().flatten().copied().collect();
            watched.sort_unstable();
            watched.dedup();
            for c in watched {
                rt.watch(tt, pos.range_of(c as usize, c as usize + 1))
                    .expect("region in arena");
            }
            rt.mark_dirty(tt).expect("registered tthread");
            tts.push(tt);
        }

        let mut digest = Digest::new();
        let cell_nets = self.cell_nets();
        let mut pos_main = self.pos0.clone();
        for &(cell, packed) in &self.moves {
            rt.with(|ctx| ctx.write(pos, cell, packed));
            pos_main[cell] = packed;
            let mut delta = 0u64;
            for &(g, ni) in &cell_nets[cell] {
                delta += net_hpwl(&pos_main, &self.net_groups[g][ni]);
            }
            digest.push_u64(delta);
            for &tt in &tts {
                util::must_join(&mut rt, tt);
            }
            let cost = rt.with(|ctx| ctx.user().costs.iter().sum::<u64>());
            digest.push_u64(cost);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tts: Vec<u32> = (0..self.groups)
            .map(|g| {
                let tt = b.declare_tthread(&format!("hpwl_group_{g}"));
                let mut watched: Vec<u32> = self.net_groups[g].iter().flatten().copied().collect();
                watched.sort_unstable();
                watched.dedup();
                for c in watched {
                    b.declare_watch(tt, POS_BASE + c as u64 * 8, 8);
                }
                tt
            })
            .collect();
        self.kernel(&mut b, &tts);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpwl_basics() {
        let pos = vec![pack_xy(0, 0), pack_xy(10, 5), pack_xy(3, 20)];
        assert_eq!(net_hpwl(&pos, &[0, 1]), 15);
        assert_eq!(net_hpwl(&pos, &[0, 1, 2]), 10 + 20);
        assert_eq!(net_hpwl(&pos, &[2]), 0);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Twolf::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn rejected_moves_skip_everything() {
        let w = Twolf::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        // Accept period 3: two thirds of moves are silent.
        assert!(run.stats.counters().silent_stores > 0);
        let skips: u64 = run.tthreads.iter().map(|t| t.skips).sum();
        let execs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        assert!(skips > execs, "skips={skips} execs={execs}");
    }

    #[test]
    fn accepted_move_dirties_only_touching_groups() {
        let w = Twolf::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        // Sanity: at least one group executed more than once (its cells
        // moved) while total executions stay well below moves * groups.
        let execs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        assert!(execs < (w.moves() * w.groups()) as u64);
        assert!(execs >= w.groups() as u64);
    }

    #[test]
    fn trace_watches_per_cell() {
        let w = Twolf::new(Scale::Test);
        let tr = w.trace();
        assert!(tr.watches().len() >= w.groups());
        assert!(tr.watches().iter().all(|x| x.len == 8));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Twolf::new(Scale::Test).run_baseline(),
            Twolf::new(Scale::Test).run_baseline()
        );
    }
}
