//! `vpr` — FPGA placement with timing analysis (after SPEC 175.vpr).
//!
//! vpr's timing-driven placer maintains two derived quantities over the
//! placement: total wiring cost and the critical-path delay through the
//! netlist DAG. Both are functions of cell positions; both get recomputed
//! around every proposed move although most proposals are rejected (the
//! position store is silent). Two tthreads — `wiring` and `timing` — watch
//! the position array and rerun only after accepted moves.
//!
//! Positions are packed `x<<32 | y` words on an integer grid, so all cost
//! arithmetic is exact.

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::twolf::pack_xy;
use crate::util::{self, Digest};

const POS_BASE: u64 = 0x1000_0000;
const ARRIVAL_BASE: u64 = 0x2000_0000;
const WIRE_BASE: u64 = 0x3000_0000;

/// Manhattan distance between two packed positions.
pub fn manhattan(a: u64, b: u64) -> u64 {
    let (ax, ay) = ((a >> 32) as i64, (a as u32) as i64);
    let (bx, by) = ((b >> 32) as i64, (b as u32) as i64);
    (ax - bx).unsigned_abs() + (ay - by).unsigned_abs()
}

/// Longest-path arrival times over the DAG; edges go from lower to higher
/// node ids, so id order is topological. Returns the critical-path delay.
pub fn critical_path(positions: &[u64], edges: &[(u32, u32)], arrival: &mut [u64]) -> u64 {
    arrival.fill(0);
    for &(u, v) in edges {
        let delay = manhattan(positions[u as usize], positions[v as usize]) + 1;
        let cand = arrival[u as usize] + delay;
        if cand > arrival[v as usize] {
            arrival[v as usize] = cand;
        }
    }
    arrival.iter().copied().max().unwrap_or(0)
}

/// Total wiring cost: sum of Manhattan lengths over all edges.
pub fn wiring_cost(positions: &[u64], edges: &[(u32, u32)]) -> u64 {
    edges
        .iter()
        .map(|&(u, v)| manhattan(positions[u as usize], positions[v as usize]))
        .sum()
}

/// The vpr workload instance.
#[derive(Debug, Clone)]
pub struct Vpr {
    cells: usize,
    pos0: Vec<u64>,
    /// DAG edges `(u, v)` with `u < v`.
    edges: Vec<(u32, u32)>,
    /// Move schedule: `(cell, packed_position)`; rejected moves are silent.
    moves: Vec<(usize, u64)>,
}

impl Vpr {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        // `reject_period`: every k-th proposal is rejected (a silent store);
        // the rest are accepted — vpr anneals at high acceptance early on.
        let (cells, edges_n, moves_n, reject_period) = match scale {
            Scale::Test => (32, 64, 40, 4),
            Scale::Train => (600, 1_200, 400, 3),
            Scale::Reference => (1_500, 3_000, 1_000, 3),
        };
        let mut rng = StdRng::seed_from_u64(0x7670_7200 + cells as u64);
        let pos0: Vec<u64> = (0..cells)
            .map(|_| pack_xy(rng.gen_range(0..128), rng.gen_range(0..128)))
            .collect();
        let mut edges: Vec<(u32, u32)> = (0..edges_n)
            .map(|_| {
                let v = rng.gen_range(1..cells) as u32;
                let u = rng.gen_range(0..v);
                (u, v)
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut pos = pos0.clone();
        let moves = (0..moves_n)
            .map(|m| {
                let cell = rng.gen_range(0..cells);
                if m % reject_period == reject_period - 1 {
                    (cell, pos[cell])
                } else {
                    let p = pack_xy(rng.gen_range(0..128), rng.gen_range(0..128));
                    pos[cell] = p;
                    (cell, p)
                }
            })
            .collect();
        Vpr {
            cells,
            pos0,
            edges,
            moves,
        }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of DAG edges.
    pub fn edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of placement moves.
    pub fn moves(&self) -> usize {
        self.moves.len()
    }

    fn kernel<P: Probe>(&self, p: &mut P, tt_wire: u32, tt_timing: u32) -> u64 {
        let mut pos = self.pos0.clone();
        let mut arrival = vec![0u64; self.cells];
        let mut digest = Digest::new();
        // Program initialization: the initial placement.
        for (c, &v) in pos.iter().enumerate() {
            util::store_u64(p, 0, POS_BASE, c, v);
        }
        for &(cell, packed) in &self.moves {
            util::store_u64(p, 1, POS_BASE, cell, packed);
            pos[cell] = packed;

            p.region_begin(tt_wire);
            for &(u, v) in &self.edges {
                util::load_u64(p, 2, POS_BASE, u as usize, pos[u as usize]);
                util::load_u64(p, 2, POS_BASE, v as usize, pos[v as usize]);
            }
            p.compute(4 * self.edges.len() as u64);
            let wire = wiring_cost(&pos, &self.edges);
            util::store_u64(p, 3, WIRE_BASE, 0, wire);
            p.region_end(tt_wire);
            p.join(tt_wire);

            p.region_begin(tt_timing);
            for &(u, v) in &self.edges {
                util::load_u64(p, 4, POS_BASE, u as usize, pos[u as usize]);
                util::load_u64(p, 4, POS_BASE, v as usize, pos[v as usize]);
            }
            p.compute(6 * self.edges.len() as u64);
            let crit = critical_path(&pos, &self.edges, &mut arrival);
            // The slack pass reads every arrival time back; arrival values
            // shift whenever any upstream cell moved.
            for (i, &a) in arrival.iter().enumerate() {
                util::load_u64(p, 6, ARRIVAL_BASE, i + 1, a);
            }
            util::store_u64(p, 5, ARRIVAL_BASE, 0, crit);
            p.region_end(tt_timing);
            p.join(tt_timing);

            // Placer cost: wiring + weighted timing.
            let cost = wire + 8 * crit;
            p.compute(2);
            digest.push_u64(cost);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct VprUser {
    edges: Vec<(u32, u32)>,
    pos_copy: Vec<u64>,
    arrival: Vec<u64>,
    wire: u64,
    crit: u64,
}

impl Workload for Vpr {
    fn name(&self) -> &'static str {
        "vpr"
    }

    fn spec_inspiration(&self) -> &'static str {
        "175.vpr"
    }

    fn description(&self) -> &'static str {
        "wiring and critical-path recomputation per placement move; rejected moves are silent"
    }

    fn run_baseline(&self) -> u64 {
        self.kernel(&mut NoProbe, 0, 1)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let cells = self.cells;
        let mut rt = Runtime::new(
            cfg,
            VprUser {
                edges: self.edges.clone(),
                pos_copy: vec![0u64; cells],
                arrival: vec![0u64; cells],
                wire: 0,
                crit: 0,
            },
        );
        let pos: TrackedArray<u64> = rt
            .alloc_array_from(&self.pos0)
            .expect("arena sized for workload");
        let wire_tt = rt.register("wiring", move |ctx| {
            let mut pos_copy = std::mem::take(&mut ctx.user_mut().pos_copy);
            ctx.read_all_into(pos, &mut pos_copy);
            let user = ctx.user_mut();
            user.wire = wiring_cost(&pos_copy, &user.edges);
            user.pos_copy = pos_copy;
            let _ = cells;
        });
        let timing_tt = rt.register("timing", move |ctx| {
            let mut pos_copy = std::mem::take(&mut ctx.user_mut().pos_copy);
            ctx.read_all_into(pos, &mut pos_copy);
            let user = ctx.user_mut();
            let mut arrival = std::mem::take(&mut user.arrival);
            user.crit = critical_path(&pos_copy, &user.edges, &mut arrival);
            user.arrival = arrival;
            user.pos_copy = pos_copy;
        });
        rt.watch(wire_tt, pos.range()).expect("region in arena");
        rt.watch(timing_tt, pos.range()).expect("region in arena");
        rt.mark_dirty(wire_tt).expect("registered tthread");
        rt.mark_dirty(timing_tt).expect("registered tthread");

        let mut digest = Digest::new();
        for &(cell, packed) in &self.moves {
            rt.with(|ctx| ctx.write(pos, cell, packed));
            util::must_join(&mut rt, wire_tt);
            util::must_join(&mut rt, timing_tt);
            let cost = rt.with(|ctx| ctx.user().wire + 8 * ctx.user().crit);
            digest.push_u64(cost);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let tt_wire = b.declare_tthread("wiring");
        let tt_timing = b.declare_tthread("timing");
        b.declare_watch(tt_wire, POS_BASE, 8 * self.cells as u64);
        b.declare_watch(tt_timing, POS_BASE, 8 * self.cells as u64);
        self.kernel(&mut b, tt_wire, tt_timing);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(manhattan(pack_xy(0, 0), pack_xy(3, 4)), 7);
        assert_eq!(manhattan(pack_xy(5, 5), pack_xy(5, 5)), 0);
        assert_eq!(manhattan(pack_xy(10, 0), pack_xy(0, 10)), 20);
    }

    #[test]
    fn critical_path_on_chain() {
        // 0 -> 1 -> 2, unit distances.
        let pos = vec![pack_xy(0, 0), pack_xy(1, 0), pack_xy(2, 0)];
        let edges = vec![(0, 1), (1, 2)];
        let mut arrival = vec![0u64; 3];
        // Each edge: distance 1 + 1 logic = 2; chain = 4.
        assert_eq!(critical_path(&pos, &edges, &mut arrival), 4);
        assert_eq!(arrival[2], 4);
    }

    #[test]
    fn critical_path_takes_longest_branch() {
        let pos = vec![pack_xy(0, 0), pack_xy(10, 0), pack_xy(1, 0), pack_xy(2, 0)];
        // 0->1 long edge; 0->2->3 short chain; all converge nowhere.
        let edges = vec![(0, 1), (0, 2), (2, 3)];
        let mut arrival = vec![0u64; 4];
        assert_eq!(critical_path(&pos, &edges, &mut arrival), 11);
    }

    #[test]
    fn dtt_matches_baseline() {
        let w = Vpr::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn rejected_moves_skip_both_tthreads() {
        let w = Vpr::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        assert_eq!(run.tthreads.len(), 2);
        for tt in &run.tthreads {
            // Every fourth proposal is rejected and both tthreads skip it.
            assert!(tt.skips > 0, "{}: no skips", tt.name);
            assert!(
                tt.executions < w.moves() as u64,
                "{}: executed every move",
                tt.name
            );
        }
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Vpr::new(Scale::Test).run_baseline(),
            Vpr::new(Scale::Test).run_baseline()
        );
    }
}
