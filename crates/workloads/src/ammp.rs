//! `ammp` — molecular dynamics with cell-wise neighbor lists (after SPEC
//! 188.ammp).
//!
//! ammp's force loop runs off neighbor lists that only need rebuilding when
//! atoms actually move. In realistic runs most of the system is quiescent:
//! the integrator writes every position back each step, but for atoms
//! outside the active region the written value is unchanged — silent
//! stores. Attaching each spatial cell's neighbor-list rebuild to that
//! cell's position slice makes the rebuild run only for cells whose atoms
//! really moved.
//!
//! Model: atoms grouped into fixed cells (positions tracked, laid out per
//! cell), per-cell pair lists within a cutoff (the tthreads), and a
//! per-step Lennard-Jones-flavoured energy sum over the pair lists (the
//! consumer).

use dtt_core::{Config, Runtime, TrackedArray};
use dtt_trace::{NoProbe, Probe, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::suite::{DttRun, Scale, Workload};
use crate::util::{self, Digest};

const POS_BASE: u64 = 0x1000_0000;
const PAIR_BASE: u64 = 0x2000_0000;
const PAIR_STRIDE: u64 = 0x10_0000;

const CUTOFF2: f64 = 0.25; // squared cutoff in box units

/// The ammp workload instance.
#[derive(Debug, Clone)]
pub struct Ammp {
    atoms: usize,
    cells: usize,
    /// Interleaved x,y,z positions: `pos[3*i..3*i+3]`, atoms ordered by cell.
    pos0: Vec<f64>,
    /// Per step, per atom: displacement applied (0 for quiescent atoms).
    schedule: Vec<Vec<(usize, f64, f64, f64)>>,
    steps: usize,
}

impl Ammp {
    /// Generates the instance for `scale` (deterministic).
    pub fn new(scale: Scale) -> Self {
        let (atoms, cells, steps, active_cells) = match scale {
            Scale::Test => (64, 4, 10, 1),
            Scale::Train => (1_024, 16, 60, 2),
            Scale::Reference => (2_048, 32, 120, 2),
        };
        let mut rng = StdRng::seed_from_u64(0x616d_6d70 + atoms as u64);
        let per_cell = atoms / cells;
        // Atoms of cell c live in a unit sub-box at offset (c, 0, 0): the
        // cell structure is spatial, so intra-cell pairs are meaningful.
        let mut pos0 = Vec::with_capacity(atoms * 3);
        for c in 0..cells {
            for _ in 0..per_cell {
                pos0.push(c as f64 + rng.gen_range(0.0..1.0));
                pos0.push(rng.gen_range(0.0..1.0));
                pos0.push(rng.gen_range(0.0..1.0));
            }
        }
        // Movement schedule: each step, atoms in `active_cells` rotating
        // cells receive real displacements; every other atom is "integrated"
        // with zero displacement (a silent position write).
        let schedule = (0..steps)
            .map(|step| {
                let mut moves = Vec::with_capacity(atoms);
                for a in 0..atoms {
                    let cell = a / per_cell;
                    let active = (0..active_cells).any(|k| (step + k) % cells == cell);
                    if active {
                        moves.push((
                            a,
                            rng.gen_range(-0.02..0.02),
                            rng.gen_range(-0.02..0.02),
                            rng.gen_range(-0.02..0.02),
                        ));
                    } else {
                        moves.push((a, 0.0, 0.0, 0.0));
                    }
                }
                moves
            })
            .collect();
        Ammp {
            atoms,
            cells,
            pos0,
            schedule,
            steps,
        }
    }

    /// Number of atoms.
    pub fn atoms(&self) -> usize {
        self.atoms
    }

    /// Number of spatial cells (= tthreads).
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of timesteps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    fn per_cell(&self) -> usize {
        self.atoms / self.cells
    }

    /// Rebuilds the pair list of cell `c` from `pos`; shared by baseline and
    /// (re-expressed over tracked reads) the DTT closure.
    fn cell_pairs(pos: &[f64], first: usize, count: usize) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for i in first..first + count {
            for j in (i + 1)..first + count {
                let dx = pos[3 * i] - pos[3 * j];
                let dy = pos[3 * i + 1] - pos[3 * j + 1];
                let dz = pos[3 * i + 2] - pos[3 * j + 2];
                if dx * dx + dy * dy + dz * dz < CUTOFF2 {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        pairs
    }

    /// Energy of one pair (a softened inverse-sixth interaction).
    fn pair_energy(pos: &[f64], i: usize, j: usize) -> f64 {
        let dx = pos[3 * i] - pos[3 * j];
        let dy = pos[3 * i + 1] - pos[3 * j + 1];
        let dz = pos[3 * i + 2] - pos[3 * j + 2];
        let r2 = dx * dx + dy * dy + dz * dz + 1e-6;
        let inv = 1.0 / r2;
        let inv3 = inv * inv * inv;
        inv3 - inv
    }

    fn kernel<P: Probe>(&self, p: &mut P, tts: &[u32]) -> u64 {
        let per_cell = self.per_cell();
        let mut pos = self.pos0.clone();
        let mut pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.cells];
        let mut digest = Digest::new();
        // Program initialization: place the atoms.
        for (i, &v) in pos.iter().enumerate() {
            util::store_f64(p, 0, POS_BASE, i, v);
        }
        for moves in &self.schedule {
            // Integrate: write every position (silent for quiescent atoms).
            for &(a, dx, dy, dz) in moves {
                pos[3 * a] += dx;
                pos[3 * a + 1] += dy;
                pos[3 * a + 2] += dz;
                util::store_f64(p, 1, POS_BASE, 3 * a, pos[3 * a]);
                util::store_f64(p, 1, POS_BASE, 3 * a + 1, pos[3 * a + 1]);
                util::store_f64(p, 1, POS_BASE, 3 * a + 2, pos[3 * a + 2]);
            }
            // Neighbor-list rebuild per cell (the tthread regions).
            for c in 0..self.cells {
                p.region_begin(tts[c]);
                let first = c * per_cell;
                for i in first..first + per_cell {
                    util::load_f64(p, 2, POS_BASE, 3 * i, pos[3 * i]);
                }
                p.compute((per_cell * per_cell) as u64 / 2 * 4);
                pairs[c] = Self::cell_pairs(&pos, first, per_cell);
                util::store_u64(
                    p,
                    3,
                    PAIR_BASE + c as u64 * PAIR_STRIDE,
                    0,
                    pairs[c].len() as u64,
                );
                p.region_end(tts[c]);
                p.join(tts[c]);
            }
            // Force/energy pass over the pair lists (the consumer).
            let mut energy = 0.0f64;
            for (c, cell_pairs) in pairs.iter().enumerate() {
                for (k, &(i, j)) in cell_pairs.iter().enumerate() {
                    util::load_u64(
                        p,
                        4,
                        PAIR_BASE + c as u64 * PAIR_STRIDE,
                        k + 1,
                        ((i as u64) << 32) | j as u64,
                    );
                    energy += Self::pair_energy(&pos, i as usize, j as usize);
                    p.compute(14);
                }
            }
            digest.push_f64(energy);
        }
        digest.finish()
    }
}

/// Untracked state of the DTT implementation.
struct AmmpUser {
    pairs: Vec<Vec<(u32, u32)>>,
    scratch: Vec<f64>,
}

impl Workload for Ammp {
    fn name(&self) -> &'static str {
        "ammp"
    }

    fn spec_inspiration(&self) -> &'static str {
        "188.ammp"
    }

    fn description(&self) -> &'static str {
        "per-cell neighbor-list rebuild triggered by atom movement; quiescent atoms store silently"
    }

    fn run_baseline(&self) -> u64 {
        let tts: Vec<u32> = (0..self.cells as u32).collect();
        self.kernel(&mut NoProbe, &tts)
    }

    fn run_dtt(&self, cfg: Config) -> DttRun {
        let per_cell = self.per_cell();
        let mut rt = Runtime::new(
            cfg,
            AmmpUser {
                pairs: vec![Vec::new(); self.cells],
                scratch: vec![0.0f64; self.atoms * 3],
            },
        );
        let pos: TrackedArray<f64> = rt
            .alloc_array_from(&self.pos0)
            .expect("arena sized for workload");
        let mut tts = Vec::with_capacity(self.cells);
        for c in 0..self.cells {
            let tt = rt.register(&format!("neighbors_cell_{c}"), move |ctx| {
                let first = c * per_cell;
                // Snapshot the cell's positions into scratch, then rebuild
                // with the exact baseline arithmetic.
                let mut slice = Vec::new();
                ctx.read_slice_into(pos, 3 * first, 3 * (first + per_cell), &mut slice);
                let user = ctx.user_mut();
                user.scratch[3 * first..3 * (first + per_cell)].copy_from_slice(&slice);
                let rebuilt = Ammp::cell_pairs(&user.scratch, first, per_cell);
                user.pairs[c] = rebuilt;
            });
            rt.watch(tt, pos.range_of(3 * c * per_cell, 3 * (c + 1) * per_cell))
                .expect("region in arena");
            rt.mark_dirty(tt).expect("registered tthread");
            tts.push(tt);
        }

        let mut digest = Digest::new();
        let mut shadow = self.pos0.clone();
        for moves in &self.schedule {
            for &(a, dx, dy, dz) in moves {
                shadow[3 * a] += dx;
                shadow[3 * a + 1] += dy;
                shadow[3 * a + 2] += dz;
            }
            rt.with(|ctx| ctx.write_slice(pos, 0, &shadow));
            for &tt in &tts {
                util::must_join(&mut rt, tt);
            }
            let energy = rt.with(|ctx| {
                // The energy pass reads positions untracked (the force code
                // in ammp reads through plain pointers); shadow holds the
                // same values as tracked memory.
                let mut energy = 0.0f64;
                for cell_pairs in &ctx.user().pairs {
                    for &(i, j) in cell_pairs {
                        energy += Ammp::pair_energy(&shadow, i as usize, j as usize);
                    }
                }
                energy
            });
            digest.push_f64(energy);
        }
        util::dtt_run_report(&rt, digest.finish())
    }

    fn trace(&self) -> Trace {
        let mut b = TraceBuilder::new();
        let per_cell = self.per_cell();
        let tts: Vec<u32> = (0..self.cells)
            .map(|c| {
                let tt = b.declare_tthread(&format!("neighbors_cell_{c}"));
                b.declare_watch(
                    tt,
                    POS_BASE + (3 * c * per_cell) as u64 * 8,
                    (3 * per_cell) as u64 * 8,
                );
                tt
            })
            .collect();
        self.kernel(&mut b, &tts);
        b.finish().expect("kernel emits a well-formed trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtt_matches_baseline() {
        let w = Ammp::new(Scale::Test);
        assert_eq!(w.run_baseline(), w.run_dtt(Config::default()).digest);
    }

    #[test]
    fn dtt_matches_baseline_parallel() {
        let w = Ammp::new(Scale::Test);
        assert_eq!(
            w.run_baseline(),
            w.run_dtt(Config::default().with_workers(2)).digest
        );
    }

    #[test]
    fn quiescent_cells_skip_rebuild() {
        let w = Ammp::new(Scale::Test);
        let run = w.run_dtt(Config::default());
        let skips: u64 = run.tthreads.iter().map(|t| t.skips).sum();
        let execs: u64 = run.tthreads.iter().map(|t| t.executions).sum();
        // One active cell of four per step.
        assert!(skips > execs, "skips={skips} execs={execs}");
        assert!(run.stats.counters().silent_stores > 0);
    }

    #[test]
    fn pairs_exist_within_cells() {
        let w = Ammp::new(Scale::Test);
        let pairs = Ammp::cell_pairs(&w.pos0, 0, w.per_cell());
        for &(i, j) in &pairs {
            assert!(i < j);
            assert!((j as usize) < w.per_cell());
        }
    }

    #[test]
    fn trace_watches_each_cell_slice() {
        let w = Ammp::new(Scale::Test);
        let tr = w.trace();
        assert_eq!(tr.watches().len(), w.cells());
        let total: u64 = tr.watches().iter().map(|x| x.len).sum();
        assert_eq!(total, (w.atoms() * 3 * 8) as u64);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Ammp::new(Scale::Test).run_baseline(),
            Ammp::new(Scale::Test).run_baseline()
        );
    }
}
