//! # dtt-cli — command-line interface to the DTT toolchain
//!
//! ```text
//! dtt-cli list                               # the benchmark suite
//! dtt-cli run <workload> [--scale S] [--workers N] [--granularity G] [--no-suppress]
//! dtt-cli profile <workload> [--scale S] [--top N]
//! dtt-cli simulate <workload> [--scale S] [--contexts N] [--spawn C]
//!                             [--queue Q] [--granularity-bytes G] [--no-suppress]
//! dtt-cli trace <workload> --out FILE [--scale S]
//! dtt-cli replay --input FILE [simulate options]
//! dtt-cli obs <metrics|timeline|top> <workload> [--scale S] [--workers N]
//!                                               [--out FILE] [--top N]
//! dtt-cli graph <workload> [--scale S] [--workers N] [--no-cutoff]
//! dtt-cli chaos [--seed N] [--runs K]        # seeded fault-injection runs
//! dtt-cli serve [--port N] [--duration-ms N] # overload-safe front-end
//! dtt-cli load [--addr A | --self] [--rate N] [--conns N] [--duration-ms N]
//! dtt-cli machine                            # default simulated machine
//! ```
//!
//! All commands are exposed as library functions returning their output as
//! a `String`, so the test suite drives them without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

pub use args::{ArgError, Args};

/// Top-level CLI errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Argument parsing / validation failed.
    Args(ArgError),
    /// The named workload does not exist.
    UnknownWorkload(String),
    /// The named command does not exist.
    UnknownCommand(String),
    /// A file operation failed.
    Io(std::io::Error),
    /// A trace file failed to decode.
    Trace(dtt_trace::ReadError),
    /// A chaos run violated an invariant (the report carries the seed, the
    /// shrunk schedule and a replay command).
    Chaos(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownWorkload(w) => {
                write!(
                    f,
                    "unknown workload {w:?}; run `dtt-cli list` for the suite"
                )
            }
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?}; run `dtt-cli help`")
            }
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Trace(e) => write!(f, "{e}"),
            CliError::Chaos(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Usage text printed by `help` and on errors.
pub const USAGE: &str = "\
dtt-cli — data-triggered threads toolchain

USAGE:
  dtt-cli list
  dtt-cli run <workload>      [--scale test|train|ref] [--workers N]
                              [--granularity exact|word|line] [--no-suppress]
  dtt-cli profile <workload>  [--scale S] [--top N]
  dtt-cli simulate <workload> [--scale S] [--contexts N] [--spawn CYCLES]
                              [--queue N] [--granularity-bytes N] [--no-suppress]
                              [--private-l1] [--tst N]
  dtt-cli trace <workload>    --out FILE [--scale S]
  dtt-cli replay              --input FILE [simulate options]
  dtt-cli obs metrics  <workload>  [--scale S] [--workers N]
  dtt-cli obs timeline <workload>  [--scale S] [--workers N] [--out FILE]
  dtt-cli obs top      <workload>  [--scale S] [--workers N] [--top N]
  dtt-cli graph <workload>    [--scale S] [--workers N] [--no-cutoff]
  dtt-cli chaos               [--seed N] [--runs K] [--no-shrink]
  dtt-cli serve               [--port N] [--duration-ms N] [--max-inflight N]
                              [--queue N] [--deadline-ms N] [--view sheet|pipeline]
  dtt-cli load                --addr HOST:PORT | --self [serve options]
                              [--rate N] [--conns N] [--duration-ms N]
                              [--write-tenths N]
  dtt-cli machine
  dtt-cli help
";

/// Dispatches a command line (without the program name) and returns the
/// text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing what went wrong; the binary prints it
/// to stderr and exits nonzero.
pub fn dispatch<I: IntoIterator<Item = String>>(raw: I) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let command = match args.positional(0, "command") {
        Ok(c) => c.to_owned(),
        Err(_) => return Ok(USAGE.to_owned()),
    };
    match command.as_str() {
        "list" => commands::list(&args),
        "run" => commands::run(&args),
        "profile" => commands::profile(&args),
        "simulate" => commands::simulate_cmd(&args),
        "trace" => commands::trace_cmd(&args),
        "replay" => commands::replay(&args),
        "obs" => commands::obs(&args),
        "graph" => commands::graph(&args),
        "chaos" => commands::chaos(&args),
        "serve" => commands::serve(&args),
        "load" => commands::load(&args),
        "machine" => commands::machine(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        dispatch(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help"]).unwrap().contains("dtt-cli"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(
            run(&["frobnicate"]),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn list_names_the_whole_suite() {
        let out = run(&["list"]).unwrap();
        for name in [
            "mcf",
            "equake",
            "art",
            "ammp",
            "bzip2",
            "gzip",
            "parser",
            "twolf",
            "vpr",
            "mesa",
            "vortex",
            "crafty",
            "gap",
            "perlbmk",
            "spreadsheet",
            "pipeline",
        ] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn run_reports_skip_stats() {
        let out = run(&["run", "mcf", "--scale", "test"]).unwrap();
        assert!(out.contains("digest check"));
        assert!(out.contains("skips"));
    }

    #[test]
    fn run_rejects_unknown_workload() {
        assert!(matches!(
            run(&["run", "doom", "--scale", "test"]),
            Err(CliError::UnknownWorkload(_))
        ));
    }

    #[test]
    fn profile_reports_redundancy() {
        let out = run(&["profile", "gzip", "--scale", "test", "--top", "3"]).unwrap();
        assert!(out.contains("redundant"));
        assert!(out.contains("site"));
    }

    #[test]
    fn simulate_reports_speedup() {
        let out = run(&["simulate", "twolf", "--scale", "test", "--contexts", "4"]).unwrap();
        assert!(out.contains("speedup"));
    }

    #[test]
    fn machine_prints_configuration() {
        let out = run(&["machine"]).unwrap();
        assert!(out.contains("contexts"));
        assert!(out.contains("L1D"));
    }

    #[test]
    fn trace_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("dtt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mesa.dttrace");
        let path_str = path.to_str().unwrap();
        let out = run(&["trace", "mesa", "--scale", "test", "--out", path_str]).unwrap();
        assert!(out.contains("events"));
        let out = run(&["replay", "--input", path_str]).unwrap();
        assert!(out.contains("speedup"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn obs_metrics_exposes_prometheus_counters() {
        let out = run(&["obs", "metrics", "mcf", "--scale", "test"]).unwrap();
        assert!(out.contains("# TYPE dtt_tracked_stores_total counter"));
        assert!(out.contains("# TYPE dtt_obs_coalesce_ratio gauge"));
        assert!(out.contains("dtt_obs_body_seconds_bucket{le=\"+Inf\"}"));
    }

    #[test]
    fn obs_timeline_emits_a_valid_chrome_trace() {
        let out = run(&["obs", "timeline", "parser", "--scale", "test"]).unwrap();
        let events = dtt_obs::validate_chrome_trace(&out).expect("trace validates");
        assert!(events > 10, "only {events} trace events");
    }

    #[test]
    fn obs_top_reports_hot_regions() {
        let out = run(&["obs", "top", "gzip", "--scale", "test", "--top", "3"]).unwrap();
        assert!(out.starts_with("obs:"));
        assert!(out.contains("per-tthread"));
        assert!(out.contains("hot regions"));
    }

    #[test]
    fn graph_summarizes_the_edge_map_and_waves() {
        let out = run(&["graph", "spreadsheet", "--scale", "test"]).unwrap();
        assert!(out.contains("digest check: ok"));
        assert!(out.contains("total -> avg"), "missing edge:\n{out}");
        assert!(out.contains("cascades"));
        assert!(out.contains("cutoff fraction"));
    }

    #[test]
    fn graph_on_a_single_stage_kernel_reports_no_edges() {
        let out = run(&["graph", "mcf", "--scale", "test"]).unwrap();
        assert!(out.contains("(none declared — single-stage kernel)"));
    }

    #[test]
    fn chaos_runs_pinned_seeds_and_reports() {
        let out = run(&["chaos", "--seed", "101", "--runs", "2"]).unwrap();
        assert!(
            out.contains("seed  101: ok"),
            "missing per-run line:\n{out}"
        );
        assert!(out.contains("2 run(s) from seed 101 passed all invariants"));
    }

    #[test]
    fn serve_runs_drains_and_conserves() {
        let out = run(&["serve", "--port", "0", "--duration-ms", "50"]).unwrap();
        assert!(out.contains("serving on 127.0.0.1:"), "{out}");
        assert!(out.contains("drained after 50 ms"), "{out}");
        assert!(
            out.contains("conservation: admission ok, lifecycle ok"),
            "{out}"
        );
    }

    #[test]
    fn load_self_serve_reports_both_sides() {
        let out = run(&[
            "load",
            "--self",
            "--rate",
            "400",
            "--conns",
            "2",
            "--duration-ms",
            "150",
        ])
        .unwrap();
        assert!(out.contains("throughput"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("serve_accepts"), "{out}");
        assert!(
            out.contains("conservation: admission ok, lifecycle ok"),
            "{out}"
        );
    }

    #[test]
    fn load_without_addr_or_self_errors() {
        assert!(matches!(
            run(&["load", "--rate", "100"]),
            Err(CliError::Args(ArgError::MissingValue(_)))
        ));
    }

    #[test]
    fn chaos_rejects_foreign_options() {
        assert!(matches!(
            run(&["chaos", "--workers", "2"]),
            Err(CliError::Args(ArgError::UnknownOption(_)))
        ));
    }

    #[test]
    fn obs_rejects_unknown_mode() {
        assert!(matches!(
            run(&["obs", "frobnicate", "mcf"]),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn bad_option_is_reported() {
        assert!(matches!(
            run(&["run", "mcf", "--bogus"]),
            Err(CliError::Args(ArgError::UnknownOption(_)))
        ));
    }
}
