//! A minimal, dependency-free argument parser for the CLI.

use std::fmt;

/// A parsed command line: positionals plus `--key value` / `--flag` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

/// Errors from argument parsing and typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An option that requires a value was given none.
    MissingValue(String),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: String,
        /// The offending value.
        value: String,
    },
    /// An option was passed that the command does not accept.
    UnknownOption(String),
    /// A required positional argument is missing.
    MissingPositional(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(o) => write!(f, "option --{o} requires a value"),
            ArgError::BadValue { option, value } => {
                write!(f, "invalid value {value:?} for --{option}")
            }
            ArgError::UnknownOption(o) => write!(f, "unknown option --{o}"),
            ArgError::MissingPositional(name) => write!(f, "missing <{name}> argument"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that take a value (everything else is a boolean flag).
const VALUED: &[&str] = &[
    "scale",
    "workers",
    "queue",
    "contexts",
    "spawn",
    "granularity",
    "granularity-bytes",
    "top",
    "out",
    "input",
    "tst",
    "seed",
    "runs",
    "port",
    "addr",
    "duration-ms",
    "rate",
    "conns",
    "max-inflight",
    "deadline-ms",
    "view",
    "write-tenths",
];

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] when a valued option ends the
    /// argument list.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    args.options.push((k.to_owned(), Some(v.to_owned())));
                } else if VALUED.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.to_owned()))?;
                    args.options.push((name.to_owned(), Some(value)));
                } else {
                    args.options.push((name.to_owned(), None));
                }
            } else {
                args.positionals.push(arg);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// Number of positional arguments.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// Whether a boolean flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.options.iter().any(|(k, _)| k == name)
    }

    /// A string option, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if the value does not parse as `T`.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: name.to_owned(),
                value: v.to_owned(),
            }),
        }
    }

    /// Rejects any option not in `allowed` (plus flags in `allowed_flags`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnknownOption`] for the first unexpected option.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for (k, _) in &self.options {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownOption(k.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["run", "mcf", "--no-suppress"]);
        assert_eq!(a.positional(0, "cmd").unwrap(), "run");
        assert_eq!(a.positional(1, "workload").unwrap(), "mcf");
        assert!(a.flag("no-suppress"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.positional_count(), 2);
    }

    #[test]
    fn valued_options_both_syntaxes() {
        let a = parse(&["--scale", "train", "--workers=3"]);
        assert_eq!(a.get("scale"), Some("train"));
        assert_eq!(a.get_parsed("workers", 0usize).unwrap(), 3);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_parsed("contexts", 2usize).unwrap(), 2);
        assert!(a.positional(0, "cmd").is_err());
    }

    #[test]
    fn missing_value_detected() {
        let err = Args::parse(vec!["--scale".to_string()]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("scale".into()));
    }

    #[test]
    fn bad_value_detected() {
        let a = parse(&["--workers", "many"]);
        assert!(matches!(
            a.get_parsed("workers", 0usize),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_option_detected() {
        let a = parse(&["--bogus"]);
        assert_eq!(
            a.expect_only(&["scale"]).unwrap_err(),
            ArgError::UnknownOption("bogus".into())
        );
        assert!(a.expect_only(&["bogus"]).is_ok());
    }

    #[test]
    fn last_occurrence_wins() {
        let a = parse(&["--scale", "test", "--scale", "ref"]);
        assert_eq!(a.get("scale"), Some("ref"));
    }

    #[test]
    fn error_display() {
        for e in [
            ArgError::MissingValue("x".into()),
            ArgError::BadValue {
                option: "x".into(),
                value: "y".into(),
            },
            ArgError::UnknownOption("z".into()),
            ArgError::MissingPositional("workload"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
