//! Binary entry point for `dtt-cli`.

use std::process::ExitCode;

fn main() -> ExitCode {
    match dtt_cli::dispatch(std::env::args().skip(1)) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", dtt_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
