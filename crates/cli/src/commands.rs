//! The CLI subcommands.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};

use dtt_core::{Config, Granularity};
use dtt_obs::ObsReport;
use dtt_profile::{LoadProfiler, RedundancyProfiler, StoreProfiler};
use dtt_sim::{simulate, MachineConfig, SimMode};
use dtt_trace::Trace;
use dtt_workloads::{suite, Scale, Workload};

use crate::args::{ArgError, Args};
use crate::CliError;

fn parse_scale(args: &Args) -> Result<Scale, CliError> {
    match args.get("scale") {
        None => Ok(Scale::Train),
        Some("test") => Ok(Scale::Test),
        Some("train") => Ok(Scale::Train),
        Some("ref") | Some("reference") => Ok(Scale::Reference),
        Some(other) => Err(ArgError::BadValue {
            option: "scale".into(),
            value: other.into(),
        }
        .into()),
    }
}

fn parse_granularity(args: &Args) -> Result<Granularity, CliError> {
    match args.get("granularity") {
        None | Some("exact") => Ok(Granularity::Exact),
        Some("word") => Ok(Granularity::Word),
        Some("line") => Ok(Granularity::Line),
        Some(other) => match other.parse::<u32>() {
            Ok(b) if b.is_power_of_two() => Ok(Granularity::Block(b)),
            _ => Err(ArgError::BadValue {
                option: "granularity".into(),
                value: other.into(),
            }
            .into()),
        },
    }
}

fn find_workload(args: &Args, scale: Scale) -> Result<Box<dyn Workload>, CliError> {
    let name = args.positional(1, "workload").map_err(CliError::Args)?;
    suite(scale)
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| CliError::UnknownWorkload(name.to_owned()))
}

fn machine_from_args(args: &Args) -> Result<MachineConfig, CliError> {
    let cfg = MachineConfig::default()
        .with_contexts(args.get_parsed("contexts", 2usize)?)
        .with_spawn_overhead(args.get_parsed("spawn", 100u64)?)
        .with_queue_capacity(args.get_parsed("queue", 16usize)?)
        .with_granularity_bytes(args.get_parsed("granularity-bytes", 8u32)?)
        .with_silent_store_suppression(!args.flag("no-suppress"))
        .with_private_l1(args.flag("private-l1"))
        .with_tst_capacity(args.get_parsed("tst", 256usize)?);
    cfg.validate();
    Ok(cfg)
}

/// `dtt-cli list`
pub fn list(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["scale"]).map_err(CliError::Args)?;
    let mut out = String::from("workload  modelled on         redundancy structure\n");
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for w in suite(Scale::Test) {
        let _ = writeln!(
            out,
            "{:<9} {:<19} {}",
            w.name(),
            w.spec_inspiration(),
            w.description()
        );
    }
    Ok(out)
}

/// `dtt-cli run <workload>`
pub fn run(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["scale", "workers", "granularity", "no-suppress"])
        .map_err(CliError::Args)?;
    let scale = parse_scale(args)?;
    let w = find_workload(args, scale)?;
    let cfg = Config::default()
        .with_workers(args.get_parsed("workers", 0usize)?)
        .with_granularity(parse_granularity(args)?)
        .with_silent_store_suppression(!args.flag("no-suppress"));
    let baseline = w.run_baseline();
    let run = w.run_dtt(cfg);
    let check = if baseline == run.digest {
        "ok"
    } else {
        "MISMATCH"
    };
    let mut out = String::new();
    let _ = writeln!(out, "workload {} at {scale} scale", w.name());
    let _ = writeln!(out, "digest check: {check} (0x{baseline:016x})");
    let _ = writeln!(out, "\nper-tthread:");
    for t in &run.tthreads {
        let _ = writeln!(
            out,
            "  {:<24} {:>8} executions  {:>8} skips  {:>8} triggers",
            t.name, t.executions, t.skips, t.triggers
        );
    }
    let _ = writeln!(out, "\n{}", run.stats);
    Ok(out)
}

/// `dtt-cli profile <workload>`
pub fn profile(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["scale", "top"])
        .map_err(CliError::Args)?;
    let scale = parse_scale(args)?;
    let w = find_workload(args, scale)?;
    let trace = w.trace();
    profile_trace(&trace, w.name(), args.get_parsed("top", 5usize)?)
}

fn profile_trace(trace: &Trace, label: &str, top: usize) -> Result<String, CliError> {
    let loads = LoadProfiler::profile(trace);
    let redundancy = RedundancyProfiler::profile(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile of {label}: {} events, {} instructions",
        trace.events().len(),
        trace.instructions()
    );
    let _ = writeln!(out, "redundant loads: {loads}");
    let _ = writeln!(out, "redundant computation: {redundancy}");
    let _ = writeln!(out, "\ntop redundant load sites (tthread candidates):");
    for (site, stats) in loads.hottest_sites().into_iter().take(top) {
        let _ = writeln!(
            out,
            "  site {:<4} {:>10} loads, {:>9} redundant ({:.1}%)",
            site,
            stats.loads,
            stats.redundant,
            100.0 * stats.redundant_fraction()
        );
    }
    let stores = StoreProfiler::profile(trace);
    let _ = writeln!(out, "\nsilent stores: {stores}");
    let _ = writeln!(
        out,
        "top trigger-candidate store sites (mixed silent/changing):"
    );
    for (site, stats) in stores.candidate_sites().into_iter().take(top) {
        let _ = writeln!(
            out,
            "  site {:<4} {:>10} stores, {:>5.1}% silent, {:>8} addresses",
            site,
            stats.stores,
            100.0 * stats.silent_fraction(),
            stats.addresses
        );
    }
    let _ = writeln!(out, "\nper-tthread redundancy:");
    for (i, t) in redundancy.tthreads.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<24} {:>6}/{:<6} instances redundant, {:>4.1}% silent watched stores",
            trace.tthread_names()[i],
            t.redundant_instances,
            t.instances,
            100.0 * t.silent_fraction()
        );
    }
    Ok(out)
}

/// `dtt-cli simulate <workload>`
pub fn simulate_cmd(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "scale",
        "contexts",
        "spawn",
        "queue",
        "granularity-bytes",
        "no-suppress",
        "private-l1",
        "tst",
    ])
    .map_err(CliError::Args)?;
    let scale = parse_scale(args)?;
    let w = find_workload(args, scale)?;
    let trace = w.trace();
    simulate_trace(&trace, w.name(), &machine_from_args(args)?)
}

fn simulate_trace(trace: &Trace, label: &str, cfg: &MachineConfig) -> Result<String, CliError> {
    let base = simulate(cfg, trace, SimMode::Baseline);
    let dtt = simulate(cfg, trace, SimMode::Dtt);
    let mut out = String::new();
    let _ = writeln!(out, "simulating {label} on:\n{cfg}\n");
    let _ = writeln!(out, "baseline machine:\n{base}\n");
    let _ = writeln!(out, "dtt machine:\n{dtt}\n");
    let _ = writeln!(out, "speedup: {:.2}x", base.speedup_over(&dtt));
    Ok(out)
}

/// `dtt-cli obs <metrics|timeline|top> <workload>`
pub fn obs(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["scale", "workers", "top", "out"])
        .map_err(CliError::Args)?;
    let mode = args.positional(1, "obs mode").map_err(CliError::Args)?;
    let scale = parse_scale(args)?;
    let name = args.positional(2, "workload").map_err(CliError::Args)?;
    let w = suite(scale)
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| CliError::UnknownWorkload(name.to_owned()))?;
    let cfg = Config::default()
        .with_workers(args.get_parsed("workers", 0usize)?)
        .with_observability(true);
    let run = w.run_dtt(cfg);
    let rec = run.obs.unwrap_or_default();
    let names: Vec<String> = run.tthreads.iter().map(|t| t.name.clone()).collect();
    match mode {
        "metrics" => {
            let report = ObsReport::from_recording(&rec);
            Ok(dtt_obs::prometheus::render(&run.stats, Some(&report)))
        }
        "timeline" => {
            let text = dtt_obs::chrome::render(&rec, &names);
            let traced = dtt_obs::validate_chrome_trace(&text)
                .unwrap_or_else(|e| panic!("generated an invalid Chrome trace: {e}"));
            match args.get("out") {
                Some(path) => {
                    std::fs::write(path, &text)?;
                    Ok(format!(
                        "wrote {traced} trace events ({} lifecycle events, {} dropped) \
                         for {} to {path}\n\
                         open in https://ui.perfetto.dev or chrome://tracing\n",
                        rec.events.len(),
                        rec.dropped,
                        w.name()
                    ))
                }
                None => Ok(text),
            }
        }
        "top" => {
            let report = ObsReport::from_recording(&rec).with_names(names);
            Ok(report.top_report(args.get_parsed("top", 10usize)?))
        }
        other => Err(ArgError::BadValue {
            option: "obs mode".into(),
            value: other.into(),
        }
        .into()),
    }
}

/// `dtt-cli trace <workload> --out FILE`
pub fn trace_cmd(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["scale", "out"])
        .map_err(CliError::Args)?;
    let scale = parse_scale(args)?;
    let w = find_workload(args, scale)?;
    let path = args
        .get("out")
        .ok_or(CliError::Args(ArgError::MissingValue("out".into())))?;
    let trace = w.trace();
    let file = File::create(path)?;
    dtt_trace::write_trace(&trace, BufWriter::new(file))?;
    Ok(format!(
        "wrote {} events ({} instructions) for {} to {path}\n",
        trace.events().len(),
        trace.instructions(),
        w.name()
    ))
}

/// `dtt-cli replay --input FILE`
pub fn replay(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "input",
        "contexts",
        "spawn",
        "queue",
        "granularity-bytes",
        "no-suppress",
        "private-l1",
        "tst",
        "top",
    ])
    .map_err(CliError::Args)?;
    let path = args
        .get("input")
        .ok_or(CliError::Args(ArgError::MissingValue("input".into())))?;
    let file = File::open(path)?;
    let trace = dtt_trace::read_trace(BufReader::new(file)).map_err(CliError::Trace)?;
    let mut out = profile_trace(&trace, path, args.get_parsed("top", 5usize)?)?;
    out.push('\n');
    out.push_str(&simulate_trace(&trace, path, &machine_from_args(args)?)?);
    Ok(out)
}

/// `dtt-cli machine`
pub fn machine(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "contexts",
        "spawn",
        "queue",
        "granularity-bytes",
        "no-suppress",
        "private-l1",
        "tst",
    ])
    .map_err(CliError::Args)?;
    Ok(format!("{}\n", machine_from_args(args)?))
}

/// `dtt-cli chaos [--seed N] [--runs K] [--no-shrink]`
///
/// Runs seeded randomized fault schedules against the runtime and checks
/// the chaos invariants after each. On a violation the error report names
/// the seed, the minimal shrunk fault schedule (unless `--no-shrink`), and
/// a copy-paste replay command.
pub fn chaos(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["seed", "runs", "no-shrink"])
        .map_err(CliError::Args)?;
    let seed = args.get_parsed("seed", 1u64)?;
    let runs = args.get_parsed("runs", 8usize)?;
    match dtt_chaos::run_many(seed, runs) {
        Ok(summaries) => {
            let mut out = String::new();
            for s in &summaries {
                let _ = writeln!(out, "{}", s.line());
            }
            let _ = writeln!(
                out,
                "chaos: {runs} run(s) from seed {seed} passed all invariants"
            );
            Ok(out)
        }
        Err(failure) => {
            let mut report = failure.to_string();
            if !args.flag("no-shrink") {
                let minimal = dtt_chaos::shrink(&failure.config);
                let armed: Vec<&str> = minimal
                    .plan
                    .armed_points()
                    .into_iter()
                    .map(|p| p.name())
                    .collect();
                let _ = write!(
                    report,
                    "\n  shrunk: ops={} armed=[{}]",
                    minimal.ops,
                    armed.join(", ")
                );
            }
            Err(CliError::Chaos(report))
        }
    }
}

/// `dtt-cli graph <workload> [--scale S] [--workers N] [--no-cutoff]`
///
/// Runs the workload and summarizes its dependency graph: the declared
/// writer→reader edge map and the trigger-wave counters (cascades, how
/// each cascade resolved, per-epoch dedups, rejected cycles). Only the
/// multi-stage kernels declare edges; single-stage kernels print an empty
/// edge map and zero cascades.
pub fn graph(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["scale", "workers", "no-cutoff"])
        .map_err(CliError::Args)?;
    let scale = parse_scale(args)?;
    let w = find_workload(args, scale)?;
    let cfg = Config::default()
        .with_workers(args.get_parsed("workers", 0usize)?)
        .with_early_cutoff(!args.flag("no-cutoff"));
    let baseline = w.run_baseline();
    let run = w.run_dtt(cfg);
    let check = if baseline == run.digest {
        "ok"
    } else {
        "MISMATCH"
    };
    let mut out = String::new();
    let _ = writeln!(out, "workload {} at {scale} scale", w.name());
    let _ = writeln!(out, "digest check: {check} (0x{baseline:016x})");
    let _ = writeln!(out, "\ndependency edges ({}):", run.edges.len());
    if run.edges.is_empty() {
        let _ = writeln!(out, "  (none declared — single-stage kernel)");
    }
    for (writer, reader) in &run.edges {
        let _ = writeln!(out, "  {writer} -> {reader}");
    }
    let c = run.stats.counters();
    let _ = writeln!(out, "\ntrigger waves:");
    let _ = writeln!(out, "  cascades           {:>10}", c.cascades);
    let _ = writeln!(out, "  cascade enqueues   {:>10}", c.cascade_enqueues);
    let _ = writeln!(out, "  cascade coalesced  {:>10}", c.cascade_coalesced);
    let _ = writeln!(out, "  cascade cutoffs    {:>10}", c.cascade_cutoffs);
    let _ = writeln!(out, "  wave dedups        {:>10}", c.wave_dedups);
    let _ = writeln!(
        out,
        "  cycles rejected    {:>10}",
        c.trigger_cycles_rejected
    );
    if c.cascades > 0 {
        let _ = writeln!(
            out,
            "  cutoff fraction    {:>9.1}%",
            100.0 * c.cascade_cutoffs as f64 / c.cascades as f64
        );
    }
    Ok(out)
}

/// Builds a [`dtt_serve::ServeConfig`] from the `serve`/`load --self`
/// option set: env knobs first (`DTT_SERVE_*`), explicit options win.
fn serve_config_from_args(args: &Args) -> Result<dtt_serve::ServeConfig, CliError> {
    let mut cfg = dtt_serve::ServeConfig::from_env();
    cfg.addr = format!("127.0.0.1:{}", args.get_parsed("port", 0u16)?);
    cfg.max_inflight = args.get_parsed("max-inflight", cfg.max_inflight)?;
    cfg.queue_cap = args.get_parsed("queue", cfg.queue_cap)?.max(1);
    cfg.deadline = std::time::Duration::from_millis(
        args.get_parsed("deadline-ms", cfg.deadline.as_millis() as u64)?,
    );
    cfg.event_workers = args.get_parsed("event-workers", cfg.event_workers)?.max(1);
    cfg.key_space = args.get_parsed("key-space", cfg.key_space)?.max(1);
    cfg.view = match args.get("view") {
        None | Some("sheet") => dtt_serve::ViewKind::Sheet,
        Some("pipeline") => dtt_serve::ViewKind::Pipeline,
        Some("keyed") => dtt_serve::ViewKind::Keyed,
        Some(other) => {
            return Err(ArgError::BadValue {
                option: "view".into(),
                value: other.into(),
            }
            .into())
        }
    };
    Ok(cfg)
}

fn serve_stats_block(stats: &dtt_serve::ServeStatsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "request lifecycle:");
    for (name, value) in stats.fields() {
        let _ = writeln!(out, "  {name:<22} {value:>10}");
    }
    let _ = writeln!(
        out,
        "  conservation: admission {}, lifecycle {}",
        if stats.admission_conserved() {
            "ok"
        } else {
            "VIOLATED"
        },
        if stats.lifecycle_conserved() {
            "ok"
        } else {
            "VIOLATED"
        },
    );
    out
}

/// `dtt-cli serve [--port N] [--duration-ms N] [--max-inflight N]
///                [--queue N] [--deadline-ms N] [--view sheet|pipeline|keyed]
///                [--event-workers N] [--key-space N]`
///
/// Runs the overload-safe front-end for `--duration-ms` (0 serves until
/// the process is killed), then drains and prints the request-lifecycle
/// counters with their conservation verdicts. The `DTT_SERVE_*` env
/// knobs set the defaults; explicit options win.
pub fn serve(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "port",
        "duration-ms",
        "max-inflight",
        "queue",
        "deadline-ms",
        "view",
        "event-workers",
        "key-space",
    ])
    .map_err(CliError::Args)?;
    let duration_ms = args.get_parsed("duration-ms", 1_000u64)?;
    let cfg = serve_config_from_args(args)?;
    let inflight = cfg.max_inflight;
    let queue = cfg.queue_cap;
    let deadline = cfg.deadline;
    let mut server = dtt_serve::Server::start(cfg)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serving on {} (inflight {}, queue {}, deadline {:?})",
        server.local_addr(),
        inflight,
        queue,
        deadline
    );
    // The CLI prints only after the run, so announce on stdout directly
    // for anyone waiting to connect.
    println!("dtt-serve listening on {}", server.local_addr());
    if duration_ms == 0 {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    server.shutdown(std::time::Duration::from_secs(30))?;
    let _ = writeln!(out, "drained after {duration_ms} ms");
    out.push_str(&serve_stats_block(&server.stats()));
    Ok(out)
}

/// `dtt-cli load --addr HOST:PORT [--rate N] [--conns N] [--duration-ms N]
///               [--write-tenths N] [--keyed] [--key-space N]`
/// `dtt-cli load --self [serve options] [load options]`
///
/// Open-loop load generator (latency measured from scheduled send
/// instants). With `--self` it starts an in-process server first, drives
/// it, drains it, and prints both sides — the CI smoke path. `--keyed`
/// switches reads to `GetKey` shard-row lookups (implied by
/// `--view keyed`).
pub fn load(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "addr",
        "rate",
        "conns",
        "duration-ms",
        "write-tenths",
        "keyed",
        "key-space",
        "self",
        "port",
        "max-inflight",
        "queue",
        "deadline-ms",
        "view",
        "event-workers",
    ])
    .map_err(CliError::Args)?;
    let self_serve = args.flag("self");
    let mut server = if self_serve {
        Some(dtt_serve::Server::start(serve_config_from_args(args)?)?)
    } else {
        None
    };
    let addr = match (&server, args.get("addr")) {
        (Some(s), _) => s.local_addr().to_string(),
        (None, Some(addr)) => addr.to_owned(),
        (None, None) => {
            return Err(ArgError::MissingValue("addr".into()).into());
        }
    };
    let load_cfg = dtt_serve::LoadConfig {
        addr,
        conns: args.get_parsed("conns", 4usize)?.max(1),
        rate: args.get_parsed("rate", 1_000u64)?.max(1),
        duration: std::time::Duration::from_millis(args.get_parsed("duration-ms", 1_000u64)?),
        write_tenths: args.get_parsed("write-tenths", 7u32)?.min(10),
        keyed: args.flag("keyed") || args.get("view") == Some("keyed"),
        key_space: args.get_parsed("key-space", 512u64)?.max(1),
        ..dtt_serve::LoadConfig::default()
    };
    let report = dtt_serve::load::run(&load_cfg)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "load: {} conns at {} req/s for {:?} against {}",
        load_cfg.conns, load_cfg.rate, load_cfg.duration, load_cfg.addr
    );
    let _ = writeln!(
        out,
        "sent {} | ok {} | shed {} | degraded {} | dropped {} | errors {}",
        report.sent, report.ok, report.shed, report.degraded, report.dropped, report.errors
    );
    let _ = writeln!(
        out,
        "throughput {:.0} resp/s | p50 {:.2} ms | p99 {:.2} ms | goodput {:.1}%",
        report.response_throughput(),
        report.latency_ns(0.50) as f64 / 1e6,
        report.latency_ns(0.99) as f64 / 1e6,
        100.0 * report.goodput_fraction()
    );
    if let Some(server) = server.as_mut() {
        server.shutdown(std::time::Duration::from_secs(30))?;
        out.push_str(&serve_stats_block(&server.stats()));
    }
    Ok(out)
}
