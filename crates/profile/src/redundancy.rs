//! Redundant-computation measurement.
//!
//! The paper argues that redundant loads imply *redundant computation*:
//! whole slices of the program recompute results whose inputs have not
//! changed. In a DTT-annotated trace that slice structure is explicit — the
//! regions — so redundancy can be measured exactly: a region instance is
//! redundant when **no watched byte changed value** since the region's
//! previous execution. [`RedundancyProfiler`] reports the fraction of
//! dynamic instructions spent in redundant region instances (R-Fig.2) and
//! the per-tthread silent-store statistics behind R-Tab.2.

use std::collections::HashMap;
use std::fmt;

use dtt_trace::{Event, Trace, TthreadIndex};

/// Per-tthread redundancy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TthreadRedundancy {
    /// Dynamic region instances observed.
    pub instances: u64,
    /// Instances whose watched inputs were unchanged (skippable).
    pub redundant_instances: u64,
    /// Instructions inside all instances.
    pub instructions: u64,
    /// Instructions inside redundant instances.
    pub redundant_instructions: u64,
    /// Stores that hit a watched range of this tthread.
    pub watched_stores: u64,
    /// Watched stores that did not change the value (silent).
    pub silent_watched_stores: u64,
}

impl TthreadRedundancy {
    /// Fraction of instances that were redundant.
    pub fn instance_fraction(&self) -> f64 {
        fraction(self.redundant_instances, self.instances)
    }

    /// Fraction of region instructions that were redundant.
    pub fn instruction_fraction(&self) -> f64 {
        fraction(self.redundant_instructions, self.instructions)
    }

    /// Fraction of watched stores that were silent.
    pub fn silent_fraction(&self) -> f64 {
        fraction(self.silent_watched_stores, self.watched_stores)
    }
}

fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Whole-trace redundancy report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RedundancyProfile {
    /// Total dynamic instructions in the trace.
    pub total_instructions: u64,
    /// Per-tthread counters, indexed by [`TthreadIndex`].
    pub tthreads: Vec<TthreadRedundancy>,
}

impl RedundancyProfile {
    /// Instructions in redundant region instances, over all tthreads.
    pub fn redundant_instructions(&self) -> u64 {
        self.tthreads.iter().map(|t| t.redundant_instructions).sum()
    }

    /// Fraction of *all* dynamic instructions that were redundant
    /// computation — the quantity eliminated by DTT.
    pub fn redundant_fraction(&self) -> f64 {
        fraction(self.redundant_instructions(), self.total_instructions)
    }
}

impl fmt::Display for RedundancyProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} instructions redundant ({:.1}%) across {} tthreads",
            self.redundant_instructions(),
            self.total_instructions,
            100.0 * self.redundant_fraction(),
            self.tthreads.len()
        )
    }
}

/// Streaming redundant-computation profiler.
///
/// Maintains shadow memory to decide whether each store to a watched range
/// changed the value; a region instance whose tthread saw no changing
/// watched store since its previous instance is redundant.
///
/// The first instance of each region is conservatively counted as *not*
/// redundant (its result has never been computed).
#[derive(Debug)]
pub struct RedundancyProfiler {
    shadow: HashMap<u64, (u32, u64)>,
    dirty: Vec<bool>,
    in_region: Option<TthreadIndex>,
    current_redundant: bool,
    profile: RedundancyProfile,
    watches: Vec<dtt_trace::Watch>,
}

impl RedundancyProfiler {
    /// Creates a profiler for a trace with the given header.
    pub fn new(trace: &Trace) -> Self {
        let n = trace.tthread_names().len();
        RedundancyProfiler {
            shadow: HashMap::new(),
            // Every tthread starts dirty: its first instance must run.
            dirty: vec![true; n],
            in_region: None,
            current_redundant: false,
            profile: RedundancyProfile {
                total_instructions: 0,
                tthreads: vec![TthreadRedundancy::default(); n],
            },
            watches: trace.watches().to_vec(),
        }
    }

    /// Profiles a whole trace in one call.
    pub fn profile(trace: &Trace) -> RedundancyProfile {
        let mut p = Self::new(trace);
        for e in trace.events() {
            p.observe(e);
        }
        p.finish()
    }

    /// Feeds one event.
    pub fn observe(&mut self, event: &Event) {
        self.profile.total_instructions += event.instructions();
        match *event {
            Event::Store {
                addr, size, value, ..
            } => {
                let changed = self.shadow.get(&addr) != Some(&(size, value));
                self.shadow.insert(addr, (size, value));
                for w in &self.watches {
                    if w.overlaps(addr, size) {
                        let t = &mut self.profile.tthreads[w.tthread as usize];
                        t.watched_stores += 1;
                        if changed {
                            self.dirty[w.tthread as usize] = true;
                        } else {
                            t.silent_watched_stores += 1;
                        }
                    }
                }
            }
            Event::Load {
                addr, size, value, ..
            } => {
                // Loads publish observed values into shadow memory so that a
                // later store of the same value is recognized as silent even
                // if the tracer never saw the original store.
                self.shadow.entry(addr).or_insert((size, value));
            }
            Event::RegionBegin { tthread } => {
                self.in_region = Some(tthread);
                let idx = tthread as usize;
                self.current_redundant = !self.dirty[idx];
                let t = &mut self.profile.tthreads[idx];
                t.instances += 1;
                if self.current_redundant {
                    t.redundant_instances += 1;
                }
                // The instance consumes the accumulated triggers.
                self.dirty[idx] = false;
            }
            Event::RegionEnd { .. } => {
                self.in_region = None;
            }
            Event::Join { .. } => {}
            Event::Compute(_) => {}
        }
        if let Some(t) = self.in_region {
            // Attribute instruction counts of in-region events (the marker
            // itself contributes zero).
            let n = event.instructions();
            if n > 0 {
                let entry = &mut self.profile.tthreads[t as usize];
                entry.instructions += n;
                if self.current_redundant {
                    entry.redundant_instructions += n;
                }
            }
        }
    }

    /// Returns the accumulated profile.
    pub fn finish(self) -> RedundancyProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_trace::TraceBuilder;

    /// Two iterations: store (changing), region, then silent store, region.
    /// The second instance is redundant.
    #[test]
    fn silent_iteration_is_redundant() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0x100, 8);
        for round in 0..2 {
            // Same value both rounds: round 0 changes (cold), round 1 silent.
            b.store_event(1, 0x100, 8, 42);
            b.region_begin_checked(t).unwrap();
            b.compute_event(100);
            b.region_end_checked(t).unwrap();
            b.join_event(t);
            let _ = round;
        }
        let tr = b.finish().unwrap();
        let p = RedundancyProfiler::profile(&tr);
        let tt = p.tthreads[0];
        assert_eq!(tt.instances, 2);
        assert_eq!(tt.redundant_instances, 1);
        assert_eq!(tt.instructions, 200);
        assert_eq!(tt.redundant_instructions, 100);
        assert_eq!(tt.watched_stores, 2);
        assert_eq!(tt.silent_watched_stores, 1);
        // total = 2 stores + 200 compute
        assert_eq!(p.total_instructions, 202);
        assert!((p.redundant_fraction() - 100.0 / 202.0).abs() < 1e-12);
    }

    #[test]
    fn changing_store_makes_instance_non_redundant() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0, 8);
        for v in [1u64, 2, 3] {
            b.store_event(1, 0, 8, v);
            b.region_begin_checked(t).unwrap();
            b.compute_event(10);
            b.region_end_checked(t).unwrap();
        }
        let tr = b.finish().unwrap();
        let p = RedundancyProfiler::profile(&tr);
        assert_eq!(p.tthreads[0].redundant_instances, 0);
        assert_eq!(p.tthreads[0].instance_fraction(), 0.0);
    }

    #[test]
    fn first_instance_never_redundant() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0, 8);
        b.region_begin_checked(t).unwrap();
        b.compute_event(5);
        b.region_end_checked(t).unwrap();
        b.region_begin_checked(t).unwrap();
        b.compute_event(5);
        b.region_end_checked(t).unwrap();
        let tr = b.finish().unwrap();
        let p = RedundancyProfiler::profile(&tr);
        assert_eq!(p.tthreads[0].instances, 2);
        // No store at all between instances: the second is redundant.
        assert_eq!(p.tthreads[0].redundant_instances, 1);
    }

    #[test]
    fn unwatched_store_does_not_dirty() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0x100, 8);
        b.region_begin_checked(t).unwrap();
        b.region_end_checked(t).unwrap();
        b.store_event(1, 0x900, 8, 1); // outside the watch
        b.region_begin_checked(t).unwrap();
        b.compute_event(50);
        b.region_end_checked(t).unwrap();
        let tr = b.finish().unwrap();
        let p = RedundancyProfiler::profile(&tr);
        assert_eq!(p.tthreads[0].redundant_instances, 1);
        assert_eq!(p.tthreads[0].watched_stores, 0);
    }

    #[test]
    fn loads_seed_shadow_memory() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0x100, 8);
        b.load_event(1, 0x100, 8, 7); // value 7 observed
        b.region_begin_checked(t).unwrap();
        b.region_end_checked(t).unwrap();
        b.store_event(2, 0x100, 8, 7); // silent w.r.t. the observed value
        b.region_begin_checked(t).unwrap();
        b.region_end_checked(t).unwrap();
        let tr = b.finish().unwrap();
        let p = RedundancyProfiler::profile(&tr);
        assert_eq!(p.tthreads[0].silent_watched_stores, 1);
        assert_eq!(p.tthreads[0].redundant_instances, 1);
    }

    #[test]
    fn two_tthreads_independent() {
        let mut b = TraceBuilder::new();
        let ta = b.declare_tthread("a");
        let tb = b.declare_tthread("b");
        b.declare_watch(ta, 0x0, 8);
        b.declare_watch(tb, 0x100, 8);
        // Dirty only A.
        b.store_event(1, 0x0, 8, 1);
        for t in [ta, tb] {
            b.region_begin_checked(t).unwrap();
            b.compute_event(10);
            b.region_end_checked(t).unwrap();
        }
        // Second round: dirty only B with a *changing* store.
        b.store_event(1, 0x100, 8, 9);
        for t in [ta, tb] {
            b.region_begin_checked(t).unwrap();
            b.compute_event(10);
            b.region_end_checked(t).unwrap();
        }
        let tr = b.finish().unwrap();
        let p = RedundancyProfiler::profile(&tr);
        assert_eq!(p.tthreads[ta as usize].redundant_instances, 1); // round 2
        assert_eq!(p.tthreads[tb as usize].redundant_instances, 0); // dirty both rounds
    }

    #[test]
    fn display_is_informative() {
        let tr = {
            let mut b = TraceBuilder::new();
            b.compute_event(10);
            b.finish().unwrap()
        };
        let p = RedundancyProfiler::profile(&tr);
        assert!(p.to_string().contains("instructions redundant"));
    }
}
