//! Silent-store classification per static store site.
//!
//! The DTT methodology starts from the store side: a good trigger region
//! is one whose stores are *mostly silent* (the data is usually rewritten
//! unchanged) yet not always silent (it does change occasionally). This
//! profiler ranks static store sites by their silence, mirroring how the
//! paper's benchmarks were annotated by hand after profiling.

use std::collections::HashMap;
use std::fmt;

use dtt_trace::{Event, SiteId, Trace};

/// Per-site store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStoreStats {
    /// Dynamic stores at this site.
    pub stores: u64,
    /// Of those, stores that wrote the value already in memory.
    pub silent: u64,
    /// Distinct addresses this site wrote (the candidate region's spread).
    pub addresses: u64,
}

impl SiteStoreStats {
    /// Silent fraction in `[0, 1]`; `0` with no stores.
    pub fn silent_fraction(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.silent as f64 / self.stores as f64
        }
    }
}

/// Result of profiling one trace for silent stores.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreProfile {
    /// Total dynamic stores.
    pub total_stores: u64,
    /// Stores classified silent.
    pub silent_stores: u64,
    /// Per static-site breakdown.
    pub by_site: HashMap<SiteId, SiteStoreStats>,
}

impl StoreProfile {
    /// Overall silent-store fraction in `[0, 1]`.
    pub fn silent_fraction(&self) -> f64 {
        if self.total_stores == 0 {
            0.0
        } else {
            self.silent_stores as f64 / self.total_stores as f64
        }
    }

    /// Sites ranked as tthread-trigger candidates: mostly silent (little
    /// recomputation if watched) but not entirely (they do fire), weighted
    /// by store volume. The score is `silent * changing / stores` — it
    /// peaks for high-volume sites with a mix of silence and change.
    pub fn candidate_sites(&self) -> Vec<(SiteId, SiteStoreStats)> {
        let mut v: Vec<_> = self.by_site.iter().map(|(&s, &st)| (s, st)).collect();
        let score = |st: &SiteStoreStats| -> u64 {
            (st.silent * (st.stores - st.silent))
                .checked_div(st.stores)
                .unwrap_or(0)
        };
        v.sort_by(|a, b| score(&b.1).cmp(&score(&a.1)).then(a.0.cmp(&b.0)));
        v
    }
}

impl fmt::Display for StoreProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} stores silent ({:.1}%)",
            self.silent_stores,
            self.total_stores,
            100.0 * self.silent_fraction()
        )
    }
}

/// Streaming silent-store profiler.
///
/// A store is silent when it writes the value that shadow memory (seeded
/// by earlier loads and stores) already holds for that address — the same
/// definition the runtime's change detection uses.
///
/// # Examples
///
/// ```
/// use dtt_profile::stores::StoreProfiler;
/// use dtt_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.store_event(1, 0x10, 8, 7);
/// b.store_event(1, 0x10, 8, 7); // silent
/// b.store_event(1, 0x10, 8, 9); // changes
/// let trace = b.finish()?;
/// let profile = StoreProfiler::profile(&trace);
/// assert_eq!(profile.total_stores, 3);
/// assert_eq!(profile.silent_stores, 1);
/// # Ok::<(), dtt_trace::TraceError>(())
/// ```
#[derive(Debug, Default)]
pub struct StoreProfiler {
    shadow: HashMap<u64, (u32, u64)>,
    seen_addrs: HashMap<SiteId, std::collections::HashSet<u64>>,
    profile: StoreProfile,
}

impl StoreProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profiles a whole trace in one call.
    pub fn profile(trace: &Trace) -> StoreProfile {
        let mut p = Self::new();
        for e in trace.events() {
            p.observe(e);
        }
        p.finish()
    }

    /// Feeds one event.
    pub fn observe(&mut self, event: &Event) {
        match *event {
            Event::Store {
                site,
                addr,
                size,
                value,
            } => {
                let silent = self.shadow.get(&addr) == Some(&(size, value));
                self.shadow.insert(addr, (size, value));
                self.profile.total_stores += 1;
                let entry = self.profile.by_site.entry(site).or_default();
                entry.stores += 1;
                if silent {
                    self.profile.silent_stores += 1;
                    entry.silent += 1;
                }
                if self.seen_addrs.entry(site).or_default().insert(addr) {
                    entry.addresses += 1;
                }
            }
            Event::Load {
                addr, size, value, ..
            } => {
                self.shadow.entry(addr).or_insert((size, value));
            }
            _ => {}
        }
    }

    /// Returns the accumulated profile.
    pub fn finish(self) -> StoreProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_trace::TraceBuilder;

    fn trace(build: impl FnOnce(&mut TraceBuilder)) -> Trace {
        let mut b = TraceBuilder::new();
        build(&mut b);
        b.finish().unwrap()
    }

    #[test]
    fn first_store_is_not_silent() {
        let t = trace(|b| b.store_event(1, 0, 8, 5));
        let p = StoreProfiler::profile(&t);
        assert_eq!(p.silent_stores, 0);
        assert_eq!(p.silent_fraction(), 0.0);
    }

    #[test]
    fn rewrite_is_silent_change_is_not() {
        let t = trace(|b| {
            b.store_event(1, 0, 8, 5);
            b.store_event(1, 0, 8, 5); // silent
            b.store_event(1, 0, 8, 6); // change
            b.store_event(1, 0, 8, 6); // silent
        });
        let p = StoreProfiler::profile(&t);
        assert_eq!(p.silent_stores, 2);
        assert!((p.silent_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn loads_seed_shadow() {
        let t = trace(|b| {
            b.load_event(2, 0, 8, 7);
            b.store_event(1, 0, 8, 7); // silent vs the observed value
        });
        let p = StoreProfiler::profile(&t);
        assert_eq!(p.silent_stores, 1);
    }

    #[test]
    fn per_site_breakdown_and_addresses() {
        let t = trace(|b| {
            for i in 0..4 {
                b.store_event(10, 8 * i, 8, 1);
            }
            for _ in 0..4 {
                b.store_event(20, 0x100, 8, 1);
            }
        });
        let p = StoreProfiler::profile(&t);
        assert_eq!(p.by_site[&10].addresses, 4);
        assert_eq!(p.by_site[&10].silent, 0);
        assert_eq!(p.by_site[&20].addresses, 1);
        assert_eq!(p.by_site[&20].silent, 3);
    }

    #[test]
    fn candidate_ranking_prefers_mixed_sites() {
        let t = trace(|b| {
            // Site 1: always silent after the first store (never fires).
            for _ in 0..10 {
                b.store_event(1, 0, 8, 1);
            }
            // Site 2: mixed — mostly silent, occasionally changing: the
            // ideal trigger.
            for k in 0..10 {
                b.store_event(2, 8, 8, if k % 5 == 0 { k } else { (k / 5) * 5 });
            }
            // Site 3: always changing (would thrash a tthread).
            for k in 0..10u64 {
                b.store_event(3, 16, 8, k);
            }
        });
        let p = StoreProfiler::profile(&t);
        let ranked = p.candidate_sites();
        assert_eq!(ranked[0].0, 2, "mixed site should rank first: {ranked:?}");
    }

    #[test]
    fn display_mentions_percentage() {
        let t = trace(|b| b.store_event(1, 0, 8, 1));
        assert!(StoreProfiler::profile(&t).to_string().contains('%'));
    }
}
