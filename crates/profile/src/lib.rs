//! # dtt-profile — redundancy profiling over DTT traces
//!
//! Reproduces the characterization half of the HPCA'11 paper:
//!
//! * [`loads::LoadProfiler`] classifies every dynamic load as redundant or
//!   not (a load is redundant when it fetches the value most recently loaded
//!   from or stored to that location) — the paper's "78% of all loads fetch
//!   redundant data" measurement.
//! * [`redundancy::RedundancyProfiler`] measures how much *computation* is
//!   redundant: region instances whose watched inputs did not change, and
//!   the dynamic instructions inside them.
//!
//! ```
//! use dtt_profile::{LoadProfiler, RedundancyProfiler};
//! use dtt_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! b.store_event(1, 0x0, 8, 5);
//! b.load_event(2, 0x0, 8, 5);
//! let trace = b.finish()?;
//! assert_eq!(LoadProfiler::profile(&trace).redundant_loads, 1);
//! assert_eq!(RedundancyProfiler::profile(&trace).total_instructions, 2);
//! # Ok::<(), dtt_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loads;
pub mod redundancy;
pub mod stores;

pub use loads::{LoadProfile, LoadProfiler, SiteLoadStats};
pub use redundancy::{RedundancyProfile, RedundancyProfiler, TthreadRedundancy};
pub use stores::{SiteStoreStats, StoreProfile, StoreProfiler};
