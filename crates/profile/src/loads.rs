//! Redundant-load classification.
//!
//! Following the paper's definition, a dynamic load is **redundant** when it
//! returns the same value that was most recently loaded from, or stored to,
//! that memory location. The HPCA'11 characterization found that on C SPEC
//! benchmarks 78% of all loads are redundant — the observation motivating
//! data-triggered threads. [`LoadProfiler`] reproduces that measurement over
//! a [`dtt_trace::Trace`] (R-Fig.1 in DESIGN.md).

use std::collections::HashMap;
use std::fmt;

use dtt_trace::{Event, SiteId, Trace};

/// Per-site load counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteLoadStats {
    /// Dynamic loads at this site.
    pub loads: u64,
    /// Of those, redundant loads.
    pub redundant: u64,
}

impl SiteLoadStats {
    /// Redundant fraction in `[0, 1]`; `0` with no loads.
    pub fn redundant_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.redundant as f64 / self.loads as f64
        }
    }
}

/// Result of profiling one trace for redundant loads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadProfile {
    /// Total dynamic loads.
    pub total_loads: u64,
    /// Loads classified redundant.
    pub redundant_loads: u64,
    /// Per static-site breakdown.
    pub by_site: HashMap<SiteId, SiteLoadStats>,
}

impl LoadProfile {
    /// Overall redundant-load fraction in `[0, 1]`.
    pub fn redundant_fraction(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.redundant_loads as f64 / self.total_loads as f64
        }
    }

    /// Sites sorted by redundant load count, highest first — the places a
    /// programmer would look for tthread candidates.
    pub fn hottest_sites(&self) -> Vec<(SiteId, SiteLoadStats)> {
        let mut v: Vec<_> = self.by_site.iter().map(|(&s, &st)| (s, st)).collect();
        v.sort_by(|a, b| b.1.redundant.cmp(&a.1.redundant).then(a.0.cmp(&b.0)));
        v
    }
}

impl fmt::Display for LoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} loads redundant ({:.1}%)",
            self.redundant_loads,
            self.total_loads,
            100.0 * self.redundant_fraction()
        )
    }
}

/// Streaming redundant-load profiler.
///
/// # Examples
///
/// ```
/// use dtt_profile::loads::LoadProfiler;
/// use dtt_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.store_event(1, 0x10, 8, 7);
/// b.load_event(2, 0x10, 8, 7);  // redundant: value seen at this address
/// b.load_event(2, 0x10, 8, 7);  // redundant again
/// b.store_event(1, 0x10, 8, 9);
/// b.load_event(2, 0x10, 8, 9);  // redundant (store published 9)
/// let trace = b.finish()?;
///
/// let profile = LoadProfiler::profile(&trace);
/// assert_eq!(profile.total_loads, 3);
/// assert_eq!(profile.redundant_loads, 3);
/// # Ok::<(), dtt_trace::TraceError>(())
/// ```
#[derive(Debug, Default)]
pub struct LoadProfiler {
    last_value: HashMap<u64, (u32, u64)>,
    profile: LoadProfile,
}

impl LoadProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profiles a whole trace in one call.
    pub fn profile(trace: &Trace) -> LoadProfile {
        let mut p = Self::new();
        for e in trace.events() {
            p.observe(e);
        }
        p.finish()
    }

    /// Feeds one event.
    pub fn observe(&mut self, event: &Event) {
        match *event {
            Event::Load {
                site,
                addr,
                size,
                value,
            } => {
                let redundant = self.last_value.get(&addr) == Some(&(size, value));
                self.profile.total_loads += 1;
                let entry = self.profile.by_site.entry(site).or_default();
                entry.loads += 1;
                if redundant {
                    self.profile.redundant_loads += 1;
                    entry.redundant += 1;
                }
                self.last_value.insert(addr, (size, value));
            }
            Event::Store {
                addr, size, value, ..
            } => {
                self.last_value.insert(addr, (size, value));
            }
            _ => {}
        }
    }

    /// Returns the accumulated profile.
    pub fn finish(self) -> LoadProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_trace::TraceBuilder;

    fn trace(build: impl FnOnce(&mut TraceBuilder)) -> Trace {
        let mut b = TraceBuilder::new();
        build(&mut b);
        b.finish().unwrap()
    }

    #[test]
    fn first_load_is_not_redundant() {
        let t = trace(|b| b.load_event(1, 0x100, 8, 42));
        let p = LoadProfiler::profile(&t);
        assert_eq!(p.total_loads, 1);
        assert_eq!(p.redundant_loads, 0);
        assert_eq!(p.redundant_fraction(), 0.0);
    }

    #[test]
    fn repeated_load_same_value_is_redundant() {
        let t = trace(|b| {
            b.load_event(1, 0x100, 8, 42);
            b.load_event(1, 0x100, 8, 42);
            b.load_event(1, 0x100, 8, 42);
        });
        let p = LoadProfiler::profile(&t);
        assert_eq!(p.redundant_loads, 2);
        assert!((p.redundant_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn store_of_new_value_breaks_redundancy() {
        let t = trace(|b| {
            b.load_event(1, 0x100, 8, 42);
            b.store_event(2, 0x100, 8, 99);
            b.load_event(1, 0x100, 8, 99); // redundant vs the store
            b.load_event(1, 0x100, 8, 42); // value changed again externally: not redundant
        });
        let p = LoadProfiler::profile(&t);
        assert_eq!(p.redundant_loads, 1);
    }

    #[test]
    fn silent_store_keeps_loads_redundant() {
        let t = trace(|b| {
            b.store_event(2, 0x100, 8, 7);
            b.load_event(1, 0x100, 8, 7);
            b.store_event(2, 0x100, 8, 7); // silent
            b.load_event(1, 0x100, 8, 7);
        });
        let p = LoadProfiler::profile(&t);
        assert_eq!(p.redundant_loads, 2);
    }

    #[test]
    fn different_addresses_tracked_independently() {
        let t = trace(|b| {
            b.load_event(1, 0x100, 8, 1);
            b.load_event(1, 0x200, 8, 1); // first touch of 0x200
            b.load_event(1, 0x100, 8, 1); // redundant
        });
        let p = LoadProfiler::profile(&t);
        assert_eq!(p.redundant_loads, 1);
    }

    #[test]
    fn size_mismatch_is_not_redundant() {
        let t = trace(|b| {
            b.load_event(1, 0x100, 8, 1);
            b.load_event(1, 0x100, 4, 1);
        });
        let p = LoadProfiler::profile(&t);
        assert_eq!(p.redundant_loads, 0);
    }

    #[test]
    fn per_site_breakdown_and_hottest() {
        let t = trace(|b| {
            for _ in 0..5 {
                b.load_event(10, 0x100, 8, 1);
            }
            for i in 0..5 {
                b.load_event(20, 0x200, 8, i);
            }
        });
        let p = LoadProfiler::profile(&t);
        assert_eq!(p.by_site[&10].loads, 5);
        assert_eq!(p.by_site[&10].redundant, 4);
        assert_eq!(p.by_site[&20].redundant, 0);
        let hottest = p.hottest_sites();
        assert_eq!(hottest[0].0, 10);
        assert!((p.by_site[&10].redundant_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_percentage() {
        let t = trace(|b| {
            b.load_event(1, 0, 8, 0);
            b.load_event(1, 0, 8, 0);
        });
        let p = LoadProfiler::profile(&t);
        assert!(p.to_string().contains('%'));
    }
}
