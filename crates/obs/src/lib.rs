//! # dtt-obs — observability for the data-triggered-threads runtime
//!
//! The core runtime records compact lifecycle events (store → change
//! detected → trigger → body → commit → join) into lock-free per-shard
//! rings when [`Config::with_observability`] is on; this crate turns a
//! drained [`ObsRecording`] into something a human or a dashboard can use:
//!
//! | module | what it produces |
//! |--------|------------------|
//! | [`collect`] | [`ObsReport`]: per-tthread and per-region aggregates, fire rates, coalesce ratios, latency histograms |
//! | [`hist`] | [`LogHistogram`]: constant-space log2-bucketed latency distributions |
//! | [`prometheus`] | Prometheus text exposition from runtime counters + the report |
//! | [`chrome`] | Chrome `trace_event` JSON timelines (Perfetto-loadable) + a validator |
//!
//! The crate is pure post-processing: it never touches the hot path, so
//! everything here can be as allocation-happy as it likes.
//!
//! ```
//! use dtt_core::{Config, Runtime};
//! use dtt_obs::ObsReport;
//!
//! let mut rt = Runtime::new(Config::default().with_observability(true), ());
//! let cell = rt.alloc(0u64).unwrap();
//! rt.write(cell, 7);
//! let report = ObsReport::from_recording(&rt.obs_drain());
//! assert!(report.events >= 1);
//! println!("{}", report.summary_line());
//! ```
//!
//! [`Config::with_observability`]: dtt_core::Config::with_observability
//! [`ObsRecording`]: dtt_core::ObsRecording

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod collect;
pub mod hist;
pub mod prometheus;

pub use chrome::{parse_json, validate_chrome_trace, Json};
pub use collect::{ObsReport, RegionAgg, TthreadAgg};
pub use hist::LogHistogram;
