//! The collector: turns a drained [`ObsRecording`] into an aggregated
//! report — per-tthread lifecycle statistics with latency histograms,
//! per-region (64-byte line) store/trigger heat, per-kind totals, and the
//! drop accounting the exporters surface.

use std::collections::HashMap;

use dtt_core::obs::{EventKind, ObsEvent, ObsRecording};
use dtt_core::TthreadId;

use crate::hist::LogHistogram;

/// Bytes per aggregation region (one cache line, matching the runtime's
/// memory-shard stripe).
pub const REGION_BYTES: u64 = 64;

/// Aggregated lifecycle statistics for one tthread.
#[derive(Debug, Clone, Default)]
pub struct TthreadAgg {
    /// Trigger matches that fired for this tthread.
    pub triggers: u64,
    /// Times the tthread was enqueued for a worker.
    pub enqueues: u64,
    /// Triggers absorbed into an already-pending instance.
    pub coalesced: u64,
    /// Queue-full events observed while raising this tthread.
    pub overflows: u64,
    /// Completed body executions.
    pub bodies: u64,
    /// Body latency histogram (nanoseconds).
    pub body_ns: LogHistogram,
    /// Completed detached commits.
    pub commits: u64,
    /// Commit latency histogram (nanoseconds).
    pub commit_ns: LogHistogram,
    /// Commit-time conflicts (replayed stores found silent).
    pub conflicts: u64,
    /// Joins that consumed this tthread's outputs (non-skip outcomes).
    pub joins: u64,
    /// Joins that skipped the computation entirely.
    pub skips: u64,
    /// Body executions discarded for overrunning the deadline.
    pub timeouts: u64,
    /// Detached executions that exhausted the commit retry cap.
    pub retry_exhausted: u64,
    /// Backpressure enqueues shed after the assist budget ran out.
    pub sheds: u64,
    /// Cascade raises received from upstream tthread commits (incremental
    /// graph wave units targeting this tthread).
    pub cascades: u64,
    /// Deepest cascade wave observed raising this tthread.
    pub max_wave_depth: u64,
    /// Fully-silent cascade commits by this tthread that stopped the wave
    /// (early cutoffs).
    pub cascade_cutoffs: u64,
}

impl TthreadAgg {
    /// Fraction of this tthread's triggers that coalesced, in `[0, 1]`.
    pub fn coalesce_ratio(&self) -> f64 {
        let raised = self.triggers;
        if raised == 0 {
            0.0
        } else {
            self.coalesced as f64 / raised as f64
        }
    }

    /// Fraction of commits that hit at least one conflict (conflicts per
    /// commit; can exceed 1.0 when a single commit conflicts repeatedly).
    pub fn conflict_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.commits as f64
        }
    }
}

/// Store/trigger heat of one 64-byte tracked-memory region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionAgg {
    /// Region start address (aligned down to [`REGION_BYTES`]).
    pub addr: u64,
    /// Silent stores into the region.
    pub silent_stores: u64,
    /// Changing stores into the region.
    pub changes: u64,
    /// Triggers fired by stores into the region.
    pub triggers: u64,
    /// Changing stores the watched-address filter proved unwatched (no
    /// trigger-table lookup happened).
    pub filter_skips: u64,
}

impl RegionAgg {
    /// Total store activity (the hot-region sort key).
    pub fn heat(&self) -> u64 {
        self.silent_stores + self.changes + self.triggers + self.filter_skips
    }
}

/// The aggregated observability report.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Events aggregated into this report.
    pub events: u64,
    /// Lifetime events issued by the recorder (delivered + dropped).
    pub issued: u64,
    /// Lifetime events dropped by the rings.
    pub dropped: u64,
    /// Wall-clock span covered by the events (last minus first timestamp).
    pub span_ns: u64,
    /// Per-kind event counts, indexed by `EventKind as usize`.
    pub kind_counts: [u64; EventKind::ALL.len()],
    /// Per-tthread aggregates, indexed by tthread index (dense; tthreads
    /// with no events have all-zero rows).
    pub tthreads: Vec<TthreadAgg>,
    /// Per-region heat, sorted hottest first.
    pub regions: Vec<RegionAgg>,
    /// Optional tthread names (index-aligned with `tthreads`), used by the
    /// text reports; missing names render as `tt#N`.
    pub names: Vec<String>,
}

impl ObsReport {
    /// Aggregates a drained recording.
    pub fn from_recording(rec: &ObsRecording) -> Self {
        let mut report = ObsReport {
            events: rec.events.len() as u64,
            issued: rec.issued,
            dropped: rec.dropped,
            ..ObsReport::default()
        };
        if let (Some(first), Some(last)) = (rec.events.first(), rec.events.last()) {
            let lo = rec
                .events
                .iter()
                .map(|e| e.t_ns)
                .min()
                .unwrap_or(first.t_ns);
            let hi = rec.events.iter().map(|e| e.t_ns).max().unwrap_or(last.t_ns);
            report.span_ns = hi.saturating_sub(lo);
        }
        let mut regions: HashMap<u64, RegionAgg> = HashMap::new();
        for event in &rec.events {
            report.kind_counts[event.kind as usize] += 1;
            report.aggregate_tthread(event);
            aggregate_region(&mut regions, event);
        }
        let mut regions: Vec<RegionAgg> = regions.into_values().collect();
        regions.sort_by(|a, b| b.heat().cmp(&a.heat()).then(a.addr.cmp(&b.addr)));
        report.regions = regions;
        report
    }

    /// Attaches tthread names (index-aligned) for the text reports.
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        self.names = names;
        self
    }

    fn tthread_mut(&mut self, id: TthreadId) -> &mut TthreadAgg {
        let idx = id.index();
        if self.tthreads.len() <= idx {
            self.tthreads.resize_with(idx + 1, TthreadAgg::default);
        }
        &mut self.tthreads[idx]
    }

    fn aggregate_tthread(&mut self, event: &ObsEvent) {
        let Some(id) = event.tthread else {
            return;
        };
        let payload = event.payload;
        let agg = self.tthread_mut(id);
        match event.kind {
            EventKind::TriggerFired => agg.triggers += 1,
            EventKind::TriggerEnqueued => agg.enqueues += 1,
            EventKind::Coalesced => agg.coalesced += 1,
            EventKind::QueueOverflow => agg.overflows += 1,
            EventKind::BodyEnd => {
                agg.bodies += 1;
                agg.body_ns.record(payload);
            }
            EventKind::CommitDone => {
                agg.commits += 1;
                agg.commit_ns.record(payload);
            }
            EventKind::CommitConflict => agg.conflicts += 1,
            EventKind::Join => agg.joins += 1,
            EventKind::Skip => agg.skips += 1,
            EventKind::BodyTimeout => agg.timeouts += 1,
            EventKind::RetryExhausted => agg.retry_exhausted += 1,
            EventKind::OverflowShed => agg.sheds += 1,
            EventKind::CascadeFired => {
                agg.cascades += 1;
                agg.max_wave_depth = agg.max_wave_depth.max(payload);
            }
            EventKind::CascadeCutoff => agg.cascade_cutoffs += 1,
            // BodyStart/CommitBegin only anchor the timeline; Store and
            // ChangeDetected carry no tthread (except commit replays, which
            // are regional, not per-tthread, information).
            _ => {}
        }
    }

    /// Count of events of `kind`.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind as usize]
    }

    /// Trigger fire rate over the captured span, in triggers per second
    /// (0.0 when the span is empty).
    pub fn fire_rate_hz(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.count(EventKind::TriggerFired) as f64 * 1e9 / self.span_ns as f64
        }
    }

    /// Fraction of fired triggers that coalesced instead of enqueueing.
    pub fn coalesce_ratio(&self) -> f64 {
        let fired = self.count(EventKind::TriggerFired);
        if fired == 0 {
            0.0
        } else {
            self.count(EventKind::Coalesced) as f64 / fired as f64
        }
    }

    /// Merged body-latency histogram across all tthreads.
    pub fn body_latency(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for t in &self.tthreads {
            h.merge(&t.body_ns);
        }
        h
    }

    /// Merged commit-latency histogram across all tthreads.
    pub fn commit_latency(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for t in &self.tthreads {
            h.merge(&t.commit_ns);
        }
        h
    }

    /// The display name for tthread `idx`.
    pub fn tthread_name(&self, idx: usize) -> String {
        match self.names.get(idx) {
            Some(name) if !name.is_empty() => format!("tt#{idx} {name}"),
            _ => format!("tt#{idx}"),
        }
    }

    /// One-line summary for program output (the `examples/` footer). When
    /// any failure events were recorded (deadline timeouts, exhausted
    /// commit retries, backpressure sheds), their counts are appended so
    /// unhealthy runs are visible at a glance.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "obs: {} events ({} dropped) over {:.1} ms | stores {}+{} silent | \
             triggers {} ({:.0}% coalesced) | bodies {} (p50 {} ns) | \
             commits {} ({} conflicts) | joins {} / skips {}",
            self.events,
            self.dropped,
            self.span_ns as f64 / 1e6,
            self.count(EventKind::ChangeDetected),
            self.count(EventKind::Store),
            self.count(EventKind::TriggerFired),
            100.0 * self.coalesce_ratio(),
            self.count(EventKind::BodyEnd),
            self.body_latency().quantile(0.5),
            self.count(EventKind::CommitDone),
            self.count(EventKind::CommitConflict),
            self.count(EventKind::Join),
            self.count(EventKind::Skip),
        );
        let cascades = self.count(EventKind::CascadeFired);
        let cutoffs = self.count(EventKind::CascadeCutoff);
        if cascades + cutoffs > 0 {
            use std::fmt::Write as _;
            let _ = write!(line, " | cascades {cascades} ({cutoffs} cutoffs)");
        }
        let timeouts = self.count(EventKind::BodyTimeout);
        let exhausted = self.count(EventKind::RetryExhausted);
        let sheds = self.count(EventKind::OverflowShed);
        if timeouts + exhausted + sheds > 0 {
            use std::fmt::Write as _;
            let _ = write!(
                line,
                " | FAULTS: {timeouts} timeouts, {exhausted} retry-exhausted, {sheds} sheds"
            );
        }
        line
    }

    /// The human-readable `dtt obs top` report: totals, per-tthread rows,
    /// and the `limit` hottest regions.
    pub fn top_report(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.summary_line());
        let _ = writeln!(out, "\nper-tthread:");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8} {:>10} {:>6} {:>6} {:>6}",
            "tthread",
            "triggers",
            "enqueued",
            "coalesce",
            "bodies",
            "body p50",
            "commits",
            "commit p50",
            "joins",
            "skips",
            "faults"
        );
        for (idx, t) in self.tthreads.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8} {:>10} {:>6} {:>6} {:>6}",
                self.tthread_name(idx),
                t.triggers,
                t.enqueues,
                t.coalesced,
                t.bodies,
                t.body_ns.quantile(0.5),
                t.commits,
                t.commit_ns.quantile(0.5),
                t.joins,
                t.skips,
                t.timeouts + t.retry_exhausted + t.sheds
            );
        }
        let _ = writeln!(out, "\nhot regions (64 B lines, hottest first):");
        let _ = writeln!(
            out,
            "  {:<18} {:>10} {:>10} {:>10} {:>12}",
            "address", "changes", "silent", "triggers", "filter-skips"
        );
        for r in self.regions.iter().take(limit) {
            let _ = writeln!(
                out,
                "  {:#018x} {:>10} {:>10} {:>10} {:>12}",
                r.addr, r.changes, r.silent_stores, r.triggers, r.filter_skips
            );
        }
        if self.regions.len() > limit {
            let _ = writeln!(out, "  ... {} more regions", self.regions.len() - limit);
        }
        out
    }
}

fn aggregate_region(regions: &mut HashMap<u64, RegionAgg>, event: &ObsEvent) {
    if !matches!(
        event.kind,
        EventKind::Store
            | EventKind::ChangeDetected
            | EventKind::TriggerFired
            | EventKind::FilterSkip
    ) {
        return;
    }
    let line = event.payload & !(REGION_BYTES - 1);
    let agg = regions.entry(line).or_insert_with(|| RegionAgg {
        addr: line,
        ..RegionAgg::default()
    });
    match event.kind {
        EventKind::Store => agg.silent_stores += 1,
        EventKind::ChangeDetected => agg.changes += 1,
        EventKind::TriggerFired => agg.triggers += 1,
        EventKind::FilterSkip => agg.filter_skips += 1,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_ns: u64, kind: EventKind, tthread: Option<u32>, payload: u64) -> ObsEvent {
        ObsEvent {
            seq,
            t_ns,
            kind,
            tthread: tthread.map(TthreadId::new),
            payload,
        }
    }

    fn sample_recording() -> ObsRecording {
        ObsRecording {
            events: vec![
                ev(0, 100, EventKind::ChangeDetected, None, 0x40),
                ev(1, 110, EventKind::TriggerFired, Some(0), 0x40),
                ev(2, 120, EventKind::TriggerEnqueued, Some(0), 1),
                ev(3, 130, EventKind::ChangeDetected, None, 0x44),
                ev(4, 140, EventKind::TriggerFired, Some(0), 0x44),
                ev(5, 150, EventKind::Coalesced, Some(0), 0),
                ev(6, 200, EventKind::BodyStart, Some(0), 0),
                ev(7, 1200, EventKind::BodyEnd, Some(0), 1000),
                ev(8, 1210, EventKind::CommitBegin, Some(0), 2),
                ev(9, 1220, EventKind::CommitConflict, Some(0), 0x44),
                ev(10, 1300, EventKind::CommitDone, Some(0), 90),
                ev(11, 1350, EventKind::Store, None, 0x80),
                ev(12, 1400, EventKind::Join, Some(0), 1),
                ev(13, 1500, EventKind::Skip, Some(0), 0),
            ],
            issued: 16,
            dropped: 2,
            delivered: 14,
            rings: Vec::new(),
        }
    }

    #[test]
    fn aggregates_per_tthread_and_kind() {
        let report = ObsReport::from_recording(&sample_recording());
        assert_eq!(report.events, 14);
        assert_eq!(report.issued, 16);
        assert_eq!(report.dropped, 2);
        assert_eq!(report.span_ns, 1400);
        assert_eq!(report.count(EventKind::TriggerFired), 2);
        assert_eq!(report.count(EventKind::Store), 1);
        let t0 = &report.tthreads[0];
        assert_eq!(t0.triggers, 2);
        assert_eq!(t0.enqueues, 1);
        assert_eq!(t0.coalesced, 1);
        assert_eq!(t0.bodies, 1);
        assert_eq!(t0.body_ns.count(), 1);
        assert_eq!(t0.body_ns.max(), 1000);
        assert_eq!(t0.commits, 1);
        assert_eq!(t0.conflicts, 1);
        assert_eq!(t0.joins, 1);
        assert_eq!(t0.skips, 1);
        assert!((t0.coalesce_ratio() - 0.5).abs() < 1e-12);
        assert!((t0.conflict_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regions_aggregate_by_line_and_sort_by_heat() {
        let report = ObsReport::from_recording(&sample_recording());
        // 0x40 and 0x44 share line 0x40: 2 changes + 2 triggers; 0x80 has
        // one silent store.
        assert_eq!(report.regions.len(), 2);
        assert_eq!(report.regions[0].addr, 0x40);
        assert_eq!(report.regions[0].changes, 2);
        assert_eq!(report.regions[0].triggers, 2);
        assert_eq!(report.regions[0].silent_stores, 0);
        assert_eq!(report.regions[1].addr, 0x80);
        assert_eq!(report.regions[1].silent_stores, 1);
        assert!(report.regions[0].heat() > report.regions[1].heat());
    }

    #[test]
    fn rates_handle_empty_reports() {
        let report = ObsReport::from_recording(&ObsRecording::default());
        assert_eq!(report.events, 0);
        assert_eq!(report.fire_rate_hz(), 0.0);
        assert_eq!(report.coalesce_ratio(), 0.0);
        assert!(report.body_latency().is_empty());
        // The summary and top report render without panicking.
        assert!(report.summary_line().starts_with("obs: 0 events"));
        assert!(report.top_report(5).contains("per-tthread"));
    }

    #[test]
    fn top_report_names_and_limits() {
        let report = ObsReport::from_recording(&sample_recording())
            .with_names(vec!["parse_line".to_string()]);
        let text = report.top_report(1);
        assert!(text.contains("tt#0 parse_line"));
        assert!(text.contains("... 1 more regions"));
        assert!(text.contains("0x0000000000000040"));
        assert_eq!(report.tthread_name(7), "tt#7");
    }

    #[test]
    fn failure_events_aggregate_and_surface_in_the_summary() {
        let healthy = ObsReport::from_recording(&sample_recording());
        assert!(!healthy.summary_line().contains("FAULTS"));

        let mut rec = sample_recording();
        rec.events
            .push(ev(14, 1600, EventKind::BodyTimeout, Some(0), 9000));
        rec.events
            .push(ev(15, 1700, EventKind::RetryExhausted, Some(0), 8));
        rec.events
            .push(ev(16, 1800, EventKind::OverflowShed, Some(0), 16));
        let report = ObsReport::from_recording(&rec);
        let t0 = &report.tthreads[0];
        assert_eq!(t0.timeouts, 1);
        assert_eq!(t0.retry_exhausted, 1);
        assert_eq!(t0.sheds, 1);
        let line = report.summary_line();
        assert!(line.starts_with("obs:"), "summary lost its prefix: {line}");
        assert!(
            line.contains("FAULTS: 1 timeouts, 1 retry-exhausted, 1 sheds"),
            "missing fault counts: {line}"
        );
        let top = report.top_report(5);
        assert!(top.contains("faults"), "top report lost the faults column");
    }

    #[test]
    fn fire_rate_uses_span() {
        let report = ObsReport::from_recording(&sample_recording());
        // 2 triggers over 1400 ns.
        let expect = 2.0 * 1e9 / 1400.0;
        assert!((report.fire_rate_hz() - expect).abs() < 1.0);
    }
}
