//! Chrome `trace_event` timeline export.
//!
//! Converts a drained [`ObsRecording`] into the JSON Array Format consumed
//! by `chrome://tracing` and [Perfetto]: one track (`tid 0`) for the main
//! thread's store/trigger activity, plus one track per tthread showing its
//! detached bodies and commits as duration slices. Loading the file shows
//! tthread bodies overlapping the main thread's stores — the paper's
//! overlap argument, visible on a timeline.
//!
//! Durations are carried *in* the `BodyEnd`/`CommitDone` payloads, so the
//! exporter never pairs start/end events and is immune to ring drops
//! swallowing one half of a pair.
//!
//! [Perfetto]: https://ui.perfetto.dev

use std::collections::BTreeSet;
use std::fmt::Write as _;

use dtt_core::obs::{EventKind, ObsEvent, ObsRecording};

/// The process id used for every track (one runtime == one process).
const PID: u64 = 1;
/// Track id of the main thread (stores, change detection, trigger fires).
const MAIN_TID: u64 = 0;

/// Converts a tthread index to its trace track id (main thread owns 0).
fn tthread_tid(index: usize) -> u64 {
    index as u64 + 1
}

/// Renders `rec` as Chrome trace JSON (the array format, wrapped in an
/// object with a `traceEvents` key so Perfetto accepts metadata later).
/// `names` optionally labels tthread tracks (index-aligned).
pub fn render(rec: &ObsRecording, names: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |line: String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&line);
    };

    // Track-name metadata first: the main thread, then every tthread seen
    // in the event stream (or named explicitly).
    let mut tids: BTreeSet<usize> = (0..names.len()).collect();
    for event in &rec.events {
        if let Some(id) = event.tthread {
            tids.insert(id.index());
        }
    }
    emit(meta_thread_name(MAIN_TID, "main (stores)"));
    for idx in tids {
        let label = match names.get(idx) {
            Some(name) if !name.is_empty() => format!("tthread {idx}: {name}"),
            _ => format!("tthread {idx}"),
        };
        emit(meta_thread_name(tthread_tid(idx), &label));
    }

    for event in &rec.events {
        if let Some(line) = event_json(event) {
            emit(line);
        }
    }
    let _ = write!(
        out,
        "\n],\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{{\"issued\":{},\"dropped\":{}}}}}",
        rec.issued, rec.dropped
    );
    out.push('\n');
    out
}

fn meta_thread_name(tid: u64, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

/// Microseconds with nanosecond precision (Chrome's `ts`/`dur` unit).
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// One trace line per event, or `None` for events that only feed the
/// collector (`BodyStart`/`CommitBegin` anchor nothing here because the
/// matching end event carries the duration).
fn event_json(event: &ObsEvent) -> Option<String> {
    let tid = match event.tthread {
        Some(id) => tthread_tid(id.index()),
        None => MAIN_TID,
    };
    let ts = us(event.t_ns);
    let kind = event.kind;
    let payload = event.payload;
    let line = match kind {
        // Duration slices: ts is the *end* timestamp, payload the span.
        EventKind::BodyEnd => complete(
            tid,
            "body",
            event.t_ns,
            payload,
            &format!("{{\"dur_ns\":{payload}}}"),
        ),
        EventKind::CommitDone => complete(
            tid,
            "commit",
            event.t_ns,
            payload,
            &format!("{{\"dur_ns\":{payload}}}"),
        ),
        // Instants on the owning track.
        EventKind::Store => instant(tid, "store.silent", ts, &format!("{{\"addr\":{payload}}}")),
        EventKind::ChangeDetected => {
            instant(tid, "store.changed", ts, &format!("{{\"addr\":{payload}}}"))
        }
        EventKind::TriggerFired => {
            instant(tid, "trigger.fired", ts, &format!("{{\"addr\":{payload}}}"))
        }
        EventKind::TriggerEnqueued => instant(
            tid,
            "trigger.enqueued",
            ts,
            &format!("{{\"queue_len\":{payload}}}"),
        ),
        EventKind::Coalesced => instant(tid, "trigger.coalesced", ts, "{}"),
        EventKind::QueueOverflow => instant(
            tid,
            "queue.overflow",
            ts,
            &format!("{{\"capacity\":{payload}}}"),
        ),
        EventKind::CommitConflict => instant(
            tid,
            "commit.conflict",
            ts,
            &format!("{{\"addr\":{payload}}}"),
        ),
        EventKind::Join => instant(tid, "join", ts, &format!("{{\"outcome\":{payload}}}")),
        EventKind::Skip => instant(tid, "join.skip", ts, "{}"),
        EventKind::BodyTimeout => instant(
            tid,
            "body.timeout",
            ts,
            &format!("{{\"elapsed_ns\":{payload}}}"),
        ),
        EventKind::RetryExhausted => instant(
            tid,
            "commit.retry_exhausted",
            ts,
            &format!("{{\"retry_cap\":{payload}}}"),
        ),
        EventKind::OverflowShed => instant(
            tid,
            "queue.shed",
            ts,
            &format!("{{\"capacity\":{payload}}}"),
        ),
        EventKind::FilterSkip => {
            instant(tid, "filter.skip", ts, &format!("{{\"addr\":{payload}}}"))
        }
        EventKind::CascadeFired => instant(
            tid,
            "cascade.fired",
            ts,
            &format!("{{\"wave_depth\":{payload}}}"),
        ),
        EventKind::CascadeCutoff => instant(
            tid,
            "cascade.cutoff",
            ts,
            &format!("{{\"wave_depth\":{payload}}}"),
        ),
        EventKind::BodyStart | EventKind::CommitBegin => return None,
    };
    Some(line)
}

/// A `ph:"X"` complete event ending at `end_ns` and lasting `dur_ns`.
fn complete(tid: u64, name: &str, end_ns: u64, dur_ns: u64, args: &str) -> String {
    let start_ns = end_ns.saturating_sub(dur_ns);
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\
         \"ts\":{ts},\"dur\":{dur},\"args\":{args}}}",
        ts = us(start_ns),
        dur = us(dur_ns),
    )
}

/// A `ph:"i"` thread-scoped instant event.
fn instant(tid: u64, name: &str, ts: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\
         \"tid\":{tid},\"ts\":{ts},\"args\":{args}}}"
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Validation: a minimal JSON parser plus trace-schema checks, shared by the
// crate's tests and the CI job that vets `dtt obs timeline` output.
// ---------------------------------------------------------------------------

/// A parsed JSON value (just enough for trace validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so the
                        // byte stream is valid UTF-8).
                        let start = *pos;
                        *pos += 1;
                        while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                            *pos += 1;
                        }
                        s.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

/// Validates that `text` is a well-formed Chrome trace: parses as JSON,
/// has a `traceEvents` array, every event carries `name`/`ph`/`pid`/`tid`,
/// `X` events also carry numeric `ts` and `dur >= 0`, and at least one
/// tthread track exists. Returns the number of trace events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut tthread_tracks = 0usize;
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        event
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: missing tid"))?;
        event
            .get("pid")
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: missing pid"))?;
        match ph {
            "M" => {
                if tid > 0.0 {
                    tthread_tracks += 1;
                }
            }
            "X" => {
                let ts = event
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i}: X without ts"))?;
                let dur = event
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i}: X without dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
            }
            "i" => {
                event
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i}: i without ts"))?;
                // Failure instants are always attributed to a tthread track;
                // one on the main track would mean mis-attributed blame.
                if let Some(name) = event.get("name").and_then(Json::as_str) {
                    if matches!(
                        name,
                        "body.timeout" | "commit.retry_exhausted" | "queue.shed"
                    ) && tid == 0.0
                    {
                        return Err(format!("event {i}: failure instant {name:?} on main track"));
                    }
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if tthread_tracks == 0 {
        return Err("no tthread tracks in trace".into());
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_core::TthreadId;

    fn ev(seq: u64, t_ns: u64, kind: EventKind, tthread: Option<u32>, payload: u64) -> ObsEvent {
        ObsEvent {
            seq,
            t_ns,
            kind,
            tthread: tthread.map(TthreadId::new),
            payload,
        }
    }

    fn sample() -> ObsRecording {
        ObsRecording {
            events: vec![
                ev(0, 1_000, EventKind::ChangeDetected, None, 0x40),
                ev(1, 1_100, EventKind::TriggerFired, Some(0), 0x40),
                ev(2, 1_200, EventKind::TriggerEnqueued, Some(0), 1),
                ev(3, 2_000, EventKind::BodyStart, Some(0), 0),
                ev(4, 52_000, EventKind::BodyEnd, Some(0), 50_000),
                ev(5, 53_000, EventKind::CommitBegin, Some(0), 3),
                ev(6, 58_000, EventKind::CommitDone, Some(0), 5_000),
                ev(7, 60_000, EventKind::Join, Some(0), 1),
            ],
            issued: 8,
            dropped: 0,
            delivered: 8,
            rings: Vec::new(),
        }
    }

    #[test]
    fn trace_validates_and_counts_events() {
        let text = render(&sample(), &["worker".to_string()]);
        // 2 thread_name metadata + 6 visible events (BodyStart/CommitBegin
        // are folded into their duration slices).
        assert_eq!(validate_chrome_trace(&text), Ok(8));
    }

    #[test]
    fn body_slice_has_correct_start_and_duration() {
        let text = render(&sample(), &[]);
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let body = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("body"))
            .expect("body slice present");
        // BodyEnd at 52 µs with dur 50 µs → slice starts at 2 µs.
        assert_eq!(body.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(body.get("ts").unwrap().as_num(), Some(2.0));
        assert_eq!(body.get("dur").unwrap().as_num(), Some(50.0));
        assert_eq!(body.get("tid").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn main_thread_and_tthread_tracks_are_separate() {
        let text = render(&sample(), &["calc".to_string()]);
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let store = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("store.changed"))
            .unwrap();
        assert_eq!(store.get("tid").unwrap().as_num(), Some(0.0));
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, vec!["main (stores)", "tthread 0: calc"]);
    }

    #[test]
    fn failure_events_render_as_tthread_instants() {
        let rec = ObsRecording {
            events: vec![
                ev(0, 1_000, EventKind::BodyTimeout, Some(0), 7_000),
                ev(1, 2_000, EventKind::RetryExhausted, Some(0), 8),
                ev(2, 3_000, EventKind::OverflowShed, Some(0), 16),
            ],
            issued: 3,
            dropped: 0,
            delivered: 3,
            rings: Vec::new(),
        };
        let text = render(&rec, &["victim".to_string()]);
        assert!(validate_chrome_trace(&text).is_ok());
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        for (name, arg_key, arg_val) in [
            ("body.timeout", "elapsed_ns", 7_000.0),
            ("commit.retry_exhausted", "retry_cap", 8.0),
            ("queue.shed", "capacity", 16.0),
        ] {
            let e = events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(e.get("ph").unwrap().as_str(), Some("i"));
            assert_eq!(e.get("tid").unwrap().as_num(), Some(1.0));
            assert_eq!(
                e.get("args").unwrap().get(arg_key).unwrap().as_num(),
                Some(arg_val)
            );
        }
    }

    #[test]
    fn validator_rejects_failure_instants_on_the_main_track() {
        let bad = "{\"traceEvents\":[\
                   {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
                    \"args\":{\"name\":\"tthread 0\"}},\
                   {\"name\":\"body.timeout\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                    \"tid\":0,\"ts\":1.0,\"args\":{}}]}";
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("failure instant"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        // Valid JSON but no tthread track.
        let lonely = "{\"traceEvents\":[{\"name\":\"thread_name\",\"ph\":\"M\",\
                      \"pid\":1,\"tid\":0,\"args\":{\"name\":\"main\"}}]}";
        assert_eq!(
            validate_chrome_trace(lonely),
            Err("no tthread tracks in trace".to_string())
        );
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc = parse_json(
            "{\"a\": [1, 2.5, -3e2, true, false, null], \"b\": {\"c\": \"x\\n\\\"y\\u0041\"}}",
        )
        .unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[2].as_num(), Some(-300.0));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"yA")
        );
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn empty_recording_renders_but_fails_validation() {
        let text = render(&ObsRecording::default(), &[]);
        // Parses fine, but a trace with no tthread tracks is flagged.
        assert!(parse_json(&text).is_ok());
        assert!(validate_chrome_trace(&text).is_err());
    }
}
