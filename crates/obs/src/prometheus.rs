//! Prometheus text-format exposition.
//!
//! Renders the runtime's [`StatsSnapshot`] counters plus the collector's
//! aggregates in the [text exposition format] consumed by Prometheus's
//! scraper (and by `promtool check metrics`). Counter names come straight
//! from [`StatsSnapshot::fields`], so new runtime counters appear here
//! without touching this module.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use dtt_core::stats::StatsSnapshot;

use crate::collect::ObsReport;
use crate::hist::LogHistogram;

/// Renders `snapshot` (and, when present, `report`) as Prometheus text.
///
/// Every runtime counter becomes `dtt_<name>_total`; the collector adds
/// `dtt_obs_*` gauges and two latency histograms with log2 `le` buckets.
pub fn render(snapshot: &StatsSnapshot, report: Option<&ObsReport>) -> String {
    let mut out = String::new();
    for (name, value) in snapshot.fields() {
        let metric = format!("dtt_{name}_total");
        let _ = writeln!(out, "# HELP {metric} Runtime counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    if let Some(report) = report {
        render_report(&mut out, report);
    }
    out
}

fn render_report(out: &mut String, report: &ObsReport) {
    let gauges: [(&str, &str, f64); 6] = [
        (
            "dtt_obs_events",
            "Lifecycle events aggregated into the report.",
            report.events as f64,
        ),
        (
            "dtt_obs_events_dropped",
            "Lifecycle events lost to ring overwrites.",
            report.dropped as f64,
        ),
        (
            "dtt_obs_span_seconds",
            "Wall-clock span covered by the captured events.",
            report.span_ns as f64 / 1e9,
        ),
        (
            "dtt_obs_trigger_fire_rate_hz",
            "Trigger fires per second over the captured span.",
            report.fire_rate_hz(),
        ),
        (
            "dtt_obs_coalesce_ratio",
            "Fraction of fired triggers absorbed by coalescing.",
            report.coalesce_ratio(),
        ),
        (
            "dtt_obs_regions",
            "Distinct 64-byte tracked-memory regions touched.",
            report.regions.len() as f64,
        ),
    ];
    for (metric, help, value) in gauges {
        let _ = writeln!(out, "# HELP {metric} {help}");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        if value.fract() == 0.0 {
            let _ = writeln!(out, "{metric} {value:.0}");
        } else {
            let _ = writeln!(out, "{metric} {value}");
        }
    }
    render_histogram(out, "dtt_obs_body_seconds", &report.body_latency());
    render_histogram(out, "dtt_obs_commit_seconds", &report.commit_latency());
}

/// Emits one Prometheus histogram from a nanosecond [`LogHistogram`].
/// Bucket bounds are the log2 upper bounds converted to seconds.
fn render_histogram(out: &mut String, metric: &str, hist: &LogHistogram) {
    let _ = writeln!(out, "# HELP {metric} Latency distribution (log2 buckets).");
    let _ = writeln!(out, "# TYPE {metric} histogram");
    for (upper_ns, cumulative) in hist.cumulative() {
        let le = upper_ns as f64 / 1e9;
        let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count());
    let _ = writeln!(out, "{metric}_sum {}", hist.sum() as f64 / 1e9);
    let _ = writeln!(out, "{metric}_count {}", hist.count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_core::obs::{EventKind, ObsEvent, ObsRecording};
    use dtt_core::stats::Counters;
    use dtt_core::TthreadId;

    fn sample_report() -> ObsReport {
        let rec = ObsRecording {
            events: vec![
                ObsEvent {
                    seq: 0,
                    t_ns: 0,
                    kind: EventKind::TriggerFired,
                    tthread: Some(TthreadId::new(0)),
                    payload: 0x40,
                },
                ObsEvent {
                    seq: 1,
                    t_ns: 2_000_000,
                    kind: EventKind::BodyEnd,
                    tthread: Some(TthreadId::new(0)),
                    payload: 1_500,
                },
            ],
            issued: 2,
            dropped: 0,
            delivered: 2,
            rings: Vec::new(),
        };
        ObsReport::from_recording(&rec)
    }

    #[test]
    fn renders_every_snapshot_counter() {
        let snapshot = Counters::new().snapshot();
        let text = render(&snapshot, None);
        for (name, _) in snapshot.fields() {
            let metric = format!("dtt_{name}_total");
            assert!(
                text.contains(&format!("# TYPE {metric} counter")),
                "missing TYPE line for {metric}"
            );
            assert!(
                text.contains(&format!("\n{metric} 0\n"))
                    || text.starts_with(&format!("{metric} 0")),
                "missing sample for {metric}"
            );
        }
    }

    #[test]
    fn exposition_format_shape_is_valid() {
        let text = render(&Counters::new().snapshot(), Some(&sample_report()));
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
            } else {
                // Sample lines: metric{labels} value — exactly one space
                // between name+labels and the value.
                let (name, value) = line.rsplit_once(' ').expect("sample has value");
                assert!(!name.is_empty());
                assert!(
                    value.parse::<f64>().is_ok() || value == "+Inf",
                    "unparsable value in: {line}"
                );
            }
        }
    }

    #[test]
    fn report_gauges_and_histograms_render() {
        let text = render(&Counters::new().snapshot(), Some(&sample_report()));
        assert!(text.contains("# TYPE dtt_obs_trigger_fire_rate_hz gauge"));
        assert!(text.contains("dtt_obs_events 2"));
        assert!(text.contains("# TYPE dtt_obs_body_seconds histogram"));
        assert!(text.contains("dtt_obs_body_seconds_count 1"));
        assert!(text.contains("dtt_obs_body_seconds_bucket{le=\"+Inf\"} 1"));
        // 1500 ns lands in the [1024, 2048) bucket → le = 2048e-9.
        assert!(text.contains("dtt_obs_body_seconds_bucket{le=\"0.000002048\"} 1"));
        // Empty commit histogram still renders the +Inf bucket and count.
        assert!(text.contains("dtt_obs_commit_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("dtt_obs_commit_seconds_count 0"));
    }
}
