//! Fixed log2-bucketed latency histograms.
//!
//! Body and commit latencies span five orders of magnitude (sub-µs cache
//! hits to ms-scale recomputations), so the collector buckets them by
//! power of two: value `v` lands in the bucket whose upper bound is the
//! smallest `2^k > v`. 64 buckets cover the whole `u64` range in constant
//! space with no configuration, and merging two histograms is element-wise
//! addition — exactly what a per-shard collector needs.

use std::fmt;

/// Number of buckets: bucket `k` holds values in `[2^(k-1), 2^k)`
/// (bucket 0 holds only zero), so 65 buckets cover all of `u64`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `value`: 0 for 0, otherwise its bit length.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), i.e. the quantile rounded up to a power of two.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(k);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower, upper, count)` with `lower` inclusive
    /// and `upper` exclusive, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (bucket_lower(k), bucket_upper(k), n))
    }

    /// Cumulative `(upper_bound, cumulative_count)` pairs over the
    /// non-empty range — the shape of a Prometheus histogram's `le` series.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut acc = 0;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            acc += n;
            out.push((bucket_upper(k), acc));
        }
        out
    }
}

/// Inclusive lower bound of bucket `k`.
fn bucket_lower(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << (k - 1)
    }
}

/// Exclusive upper bound of bucket `k` (saturating at `u64::MAX`).
fn bucket_upper(k: usize) -> u64 {
    if k == 0 {
        1
    } else if k >= 64 {
        u64::MAX
    } else {
        1u64 << k
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(empty)");
        }
        writeln!(
            f,
            "n={} mean={:.0} min={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.min(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (lo, hi, n) in self.nonzero_buckets() {
            let bar = "#".repeat(((n * 40) / peak).max(1) as usize);
            writeln!(f, "  [{lo:>12}, {hi:>12}) {n:>8} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.to_string(), "(empty)");
    }

    #[test]
    fn samples_land_in_power_of_two_buckets() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let buckets: Vec<(u64, u64, u64)> = h.nonzero_buckets().collect();
        // 0 | 1 | [2,4): {2,3} | [4,8): {4,7} | [8,16): 8 | [512,1024): 1000
        // | top bucket: u64::MAX.
        assert_eq!(buckets[0], (0, 1, 1));
        assert_eq!(buckets[1], (1, 2, 1));
        assert_eq!(buckets[2], (2, 4, 2));
        assert_eq!(buckets[3], (4, 8, 2));
        assert_eq!(buckets[4], (8, 16, 1));
        assert_eq!(buckets[5], (512, 1024, 1));
        assert_eq!(buckets[6].2, 1);
        assert_eq!(buckets[6].1, u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1_000_000); // bucket [2^19, 2^20)
        assert_eq!(h.quantile(0.0), 16);
        assert_eq!(h.quantile(0.5), 16);
        assert_eq!(h.quantile(0.99), 16);
        assert_eq!(h.quantile(1.0), 1 << 20);
        assert!((h.mean() - (99.0 * 10.0 + 1_000_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [1u64, 5, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 5, 7_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 6);
        assert_eq!(a.max(), 7_000);
        assert_eq!(a.min(), 1);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_total() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 4, 8, 16, 32] {
            h.record(v);
        }
        let cum = h.cumulative();
        assert!(cum.windows(2).all(|w| w[0].1 < w[1].1 && w[0].0 < w[1].0));
        assert_eq!(cum.last().unwrap().1, h.count());
    }

    #[test]
    fn display_draws_bars() {
        let mut h = LogHistogram::new();
        for _ in 0..10 {
            h.record(100);
        }
        h.record(5);
        let text = h.to_string();
        assert!(text.contains("n=11"));
        assert!(text.contains('#'));
    }
}
