//! Simulation results.

use std::fmt;

use dtt_memsim::CacheStats;

use crate::energy::Activity;

/// Which machine the trace was replayed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// No DTT hardware: all region instances execute inline.
    Baseline,
    /// The proposed DTT hardware: skip / offload / inline per trigger state.
    Dtt,
}

impl fmt::Display for SimMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimMode::Baseline => "baseline",
            SimMode::Dtt => "dtt",
        })
    }
}

/// Per-tthread simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TthreadSimStats {
    /// Region instances observed.
    pub instances: u64,
    /// Instances skipped as clean.
    pub skips: u64,
    /// Instances offloaded to a spare context.
    pub offloads: u64,
    /// Instances executed inline on the main context.
    pub inline_runs: u64,
    /// Triggers that fired for this tthread.
    pub triggers: u64,
    /// Of those, triggers whose precise bytes did not overlap the watch
    /// (granularity-induced false triggers).
    pub false_triggers: u64,
    /// Watched stores suppressed as silent.
    pub silent_suppressed: u64,
    /// Cycles the main thread waited at joins of this tthread.
    pub wait_cycles: u64,
}

/// Outcome of one [`crate::machine::simulate`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The mode this result was produced under.
    pub mode: SimMode,
    /// Total cycles until the main thread (and all outstanding tthreads)
    /// finished.
    pub cycles: u64,
    /// Dynamic instructions executed, on any context (compute + memory).
    pub instructions_executed: u64,
    /// Non-memory instructions executed.
    pub alu_instructions: u64,
    /// Dynamic instructions inside skipped regions (eliminated work).
    pub instructions_skipped: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Store value comparisons performed (silent-store suppression).
    pub compares: u64,
    /// Region instances encountered.
    pub region_instances: u64,
    /// Instances skipped.
    pub regions_skipped: u64,
    /// Instances offloaded to spare contexts.
    pub regions_offloaded: u64,
    /// Instances executed inline while dirty.
    pub regions_inline: u64,
    /// Thread-queue overflow events.
    pub queue_overflows: u64,
    /// Total spawn overhead charged.
    pub spawn_overhead_cycles: u64,
    /// Total cycles the main thread stalled at joins.
    pub join_wait_cycles: u64,
    /// Per-tthread counters.
    pub tthreads: Vec<TthreadSimStats>,
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters, if configured.
    pub l3: Option<CacheStats>,
    /// Accesses that reached memory.
    pub memory_accesses: u64,
    /// Activity counts fed to the energy model.
    pub activity: Activity,
    /// Energy estimate in picojoules.
    pub energy_pj: f64,
}

impl SimResult {
    pub(crate) fn new(mode: SimMode, tthreads: usize) -> Self {
        SimResult {
            mode,
            cycles: 0,
            instructions_executed: 0,
            alu_instructions: 0,
            instructions_skipped: 0,
            loads: 0,
            stores: 0,
            compares: 0,
            region_instances: 0,
            regions_skipped: 0,
            regions_offloaded: 0,
            regions_inline: 0,
            queue_overflows: 0,
            spawn_overhead_cycles: 0,
            join_wait_cycles: 0,
            tthreads: vec![TthreadSimStats::default(); tthreads],
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            l3: None,
            memory_accesses: 0,
            activity: Activity::default(),
            energy_pj: 0.0,
        }
    }

    /// Speedup of `self` over `other`: `other.cycles / self.cycles`.
    ///
    /// Call as `baseline.speedup_over(&dtt)` inverted — conventionally
    /// `dtt_speedup = baseline.cycles / dtt.cycles`, i.e.
    /// `base.speedup_over(&dtt)` returns how much *faster `dtt` is*.
    pub fn speedup_over(&self, other: &SimResult) -> f64 {
        if other.cycles == 0 {
            0.0
        } else {
            self.cycles as f64 / other.cycles as f64
        }
    }

    /// Fraction of dynamic instructions eliminated relative to the total
    /// the baseline would execute.
    pub fn instruction_reduction(&self) -> f64 {
        let total = self.instructions_executed + self.instructions_skipped;
        if total == 0 {
            0.0
        } else {
            self.instructions_skipped as f64 / total as f64
        }
    }

    /// Fraction of region instances skipped.
    pub fn skip_rate(&self) -> f64 {
        if self.region_instances == 0 {
            0.0
        } else {
            self.regions_skipped as f64 / self.region_instances as f64
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mode                  {}", self.mode)?;
        writeln!(f, "cycles                {:>14}", self.cycles)?;
        writeln!(
            f,
            "instructions          {:>14}  (skipped {})",
            self.instructions_executed, self.instructions_skipped
        )?;
        writeln!(
            f,
            "regions               {:>14}  (skipped {}, offloaded {}, inline {})",
            self.region_instances,
            self.regions_skipped,
            self.regions_offloaded,
            self.regions_inline
        )?;
        writeln!(
            f,
            "overheads             spawn {} cycles, join wait {} cycles, {} queue overflows",
            self.spawn_overhead_cycles, self.join_wait_cycles, self.queue_overflows
        )?;
        writeln!(f, "L1                    {}", self.l1)?;
        writeln!(f, "L2                    {}", self.l2)?;
        if let Some(l3) = &self.l3 {
            writeln!(f, "L3                    {l3}")?;
        }
        write!(f, "energy                {:.1} nJ", self.energy_pj / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut r = SimResult::new(SimMode::Dtt, 1);
        r.cycles = 50;
        r.instructions_executed = 60;
        r.instructions_skipped = 40;
        r.region_instances = 10;
        r.regions_skipped = 4;
        let mut base = SimResult::new(SimMode::Baseline, 1);
        base.cycles = 100;
        assert!((base.speedup_over(&r) - 2.0).abs() < 1e-12);
        assert!((r.instruction_reduction() - 0.4).abs() < 1e-12);
        assert!((r.skip_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let r = SimResult::new(SimMode::Baseline, 0);
        assert_eq!(r.speedup_over(&r), 0.0);
        assert_eq!(r.instruction_reduction(), 0.0);
        assert_eq!(r.skip_rate(), 0.0);
    }

    #[test]
    fn display_sections() {
        let r = SimResult::new(SimMode::Dtt, 0);
        let text = r.to_string();
        for needle in ["mode", "cycles", "regions", "overheads", "energy"] {
            assert!(text.contains(needle));
        }
        assert_eq!(SimMode::Baseline.to_string(), "baseline");
    }
}
