//! The trace-driven DTT timing simulator.
//!
//! One [`simulate`] call replays a [`dtt_trace::Trace`] on either machine:
//!
//! * [`SimMode::Baseline`] — no DTT hardware: region contents execute inline
//!   on the main context every time they appear in the trace.
//! * [`SimMode::Dtt`] — the proposed hardware: stores are checked against
//!   the watched ranges (at the configured granularity) and compared against
//!   shadow memory for silent-store suppression; a *clean* region is skipped
//!   entirely; a *dirty* region executes on a spare context starting at
//!   trigger time + spawn overhead (overlapping the main thread) or inline
//!   when no spare context exists or the thread queue overflowed; a join
//!   waits for the pending execution.
//!
//! Cost model: `cpi` cycles per non-memory instruction, the cache-hierarchy
//! latency per memory access (hierarchy shared by all contexts), plus the
//! explicit DTT overheads from [`MachineConfig`].

use std::collections::HashMap;

use dtt_trace::{Event, Trace, Watch};

use crate::config::MachineConfig;
use crate::energy::{Activity, EnergyModel};
use crate::result::{SimMode, SimResult};

/// Simulates `trace` on the machine described by `cfg`.
///
/// # Panics
///
/// Panics if `cfg` fails [`MachineConfig::validate`] or the trace contains
/// a region with no matching end (traces from
/// [`dtt_trace::TraceBuilder::finish`] are always well-formed).
///
/// # Examples
///
/// ```
/// use dtt_sim::{simulate, MachineConfig, SimMode};
/// use dtt_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let t = b.declare_tthread("work");
/// b.declare_watch(t, 0x100, 8);
/// for _ in 0..10 {
///     b.store_event(1, 0x100, 8, 7); // same value: silent after the first
///     b.region_begin_checked(t)?;
///     b.compute_event(10_000);
///     b.region_end_checked(t)?;
///     b.join_event(t);
/// }
/// let trace = b.finish()?;
///
/// let cfg = MachineConfig::default();
/// let base = simulate(&cfg, &trace, SimMode::Baseline);
/// let dtt = simulate(&cfg, &trace, SimMode::Dtt);
/// assert!(dtt.cycles < base.cycles); // 9 of 10 region instances skipped
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(cfg: &MachineConfig, trace: &Trace, mode: SimMode) -> SimResult {
    cfg.validate();
    Simulator::new(cfg, trace, mode).run()
}

struct Simulator<'a> {
    cfg: &'a MachineConfig,
    trace: &'a Trace,
    mode: SimMode,
    mem: dtt_memsim::Cluster,
    shadow: HashMap<u64, (u32, u64)>,
    dirty: Vec<bool>,
    force_inline: Vec<bool>,
    last_trigger: Vec<f64>,
    pending_finish: Vec<Option<f64>>,
    context_free: Vec<f64>,
    dirty_count: usize,
    main_time: f64,
    res: SimResult,
}

impl<'a> Simulator<'a> {
    fn new(cfg: &'a MachineConfig, trace: &'a Trace, mode: SimMode) -> Self {
        let n = trace.tthread_names().len();
        let managed = n.min(cfg.tst_capacity);
        Simulator {
            cfg,
            trace,
            mode,
            mem: dtt_memsim::Cluster::new(dtt_memsim::ClusterConfig::new(
                cfg.contexts,
                cfg.private_l1,
                cfg.hierarchy,
            )),
            shadow: HashMap::new(),
            dirty: vec![true; n], // first instance of every region must run
            force_inline: vec![false; n],
            last_trigger: vec![0.0; n],
            pending_finish: vec![None; n],
            context_free: vec![0.0; cfg.contexts.saturating_sub(1)],
            // Unmanaged tthreads (beyond the TST) never occupy queue slots.
            dirty_count: managed,
            main_time: 0.0,
            res: SimResult::new(mode, n),
        }
    }

    fn run(mut self) -> SimResult {
        let events = self.trace.events();
        let mut i = 0;
        while i < events.len() {
            match events[i] {
                Event::Compute(n) => {
                    self.main_time += n as f64 * self.cfg.cpi;
                    self.res.alu_instructions += n;
                }
                Event::Load {
                    addr, size, value, ..
                } => {
                    let mut t = self.main_time;
                    self.load(0, &mut t, addr, size, value);
                    self.main_time = t;
                }
                Event::Store {
                    addr, size, value, ..
                } => {
                    let mut t = self.main_time;
                    self.store(0, &mut t, addr, size, value);
                    self.main_time = t;
                }
                Event::RegionBegin { tthread } => {
                    i = self.region_begin(tthread, i, events);
                }
                Event::RegionEnd { .. } => {}
                Event::Join { tthread } => {
                    if self.mode == SimMode::Dtt {
                        if let Some(finish) = self.pending_finish[tthread as usize].take() {
                            let wait = (finish - self.main_time).max(0.0);
                            self.res.join_wait_cycles += wait.round() as u64;
                            self.res.tthreads[tthread as usize].wait_cycles += wait.round() as u64;
                            self.main_time = self.main_time.max(finish);
                        }
                    }
                }
            }
            i += 1;
        }
        // Outstanding offloaded work must complete before the program ends.
        for finish in self.pending_finish.iter().flatten() {
            self.main_time = self.main_time.max(*finish);
        }
        self.finish()
    }

    fn region_begin(&mut self, tthread: u32, begin: usize, events: &[Event]) -> usize {
        let idx = tthread as usize;
        let end = region_end_index(events, begin, tthread);
        if self.mode == SimMode::Baseline {
            // Contents run inline; the outer loop processes them.
            self.res.region_instances += 1;
            self.res.tthreads[idx].instances += 1;
            return begin;
        }
        self.res.region_instances += 1;
        self.res.tthreads[idx].instances += 1;
        if idx >= self.cfg.tst_capacity {
            // Unmanaged tthread: the hardware cannot track it, so its
            // computation runs inline every time, exactly as in the
            // baseline.
            self.res.regions_inline += 1;
            self.res.tthreads[idx].inline_runs += 1;
            return begin;
        }
        if !self.dirty[idx] {
            // Clean: skip the whole region.
            let mut skipped = 0u64;
            for e in &events[begin + 1..end] {
                skipped += e.instructions();
            }
            self.res.instructions_skipped += skipped;
            self.res.regions_skipped += 1;
            self.res.tthreads[idx].skips += 1;
            return end;
        }
        self.dirty[idx] = false;
        self.dirty_count -= 1;
        let inline = self.force_inline[idx] || self.context_free.is_empty();
        self.force_inline[idx] = false;
        if inline {
            // Contents run on the main context; outer loop processes them.
            self.res.regions_inline += 1;
            self.res.tthreads[idx].inline_runs += 1;
            return begin;
        }
        // Offload: replay the region on the least-loaded spare context,
        // starting no earlier than trigger time + spawn overhead.
        self.res.regions_offloaded += 1;
        self.res.tthreads[idx].offloads += 1;
        self.res.spawn_overhead_cycles += self.cfg.spawn_overhead;
        let ctx = self
            .context_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("offload requires a spare context");
        let start =
            (self.last_trigger[idx] + self.cfg.spawn_overhead as f64).max(self.context_free[ctx]);
        let mut t_time = start;
        let core = ctx + 1; // context 0 is the main thread
        for e in &events[begin + 1..end] {
            match *e {
                Event::Compute(n) => {
                    t_time += n as f64 * self.cfg.cpi;
                    self.res.alu_instructions += n;
                }
                Event::Load {
                    addr, size, value, ..
                } => self.load(core, &mut t_time, addr, size, value),
                Event::Store {
                    addr, size, value, ..
                } => self.store(core, &mut t_time, addr, size, value),
                Event::Join { .. } => {}
                Event::RegionBegin { .. } | Event::RegionEnd { .. } => {
                    unreachable!("regions do not nest")
                }
            }
        }
        self.context_free[ctx] = t_time;
        let finish = self.pending_finish[idx].map_or(t_time, |f| f.max(t_time));
        self.pending_finish[idx] = Some(finish);
        end
    }

    fn load(&mut self, core: usize, time: &mut f64, addr: u64, size: u32, value: u64) {
        let access = self.mem.access(core, addr, false);
        *time += access.latency as f64;
        self.res.loads += 1;
        // Seed shadow memory with observed values so a later identical
        // store is recognized as silent.
        self.shadow.entry(addr).or_insert((size, value));
    }

    fn store(&mut self, core: usize, time: &mut f64, addr: u64, size: u32, value: u64) {
        let access = self.mem.access(core, addr, true);
        *time += access.latency as f64;
        self.res.stores += 1;
        if self.mode == SimMode::Baseline {
            self.shadow.insert(addr, (size, value));
            return;
        }
        *time += self.cfg.trigger_check_overhead as f64;
        let changed = self.shadow.get(&addr) != Some(&(size, value));
        self.shadow.insert(addr, (size, value));
        if self.cfg.suppress_silent_stores {
            self.res.compares += 1;
        }
        let fires = changed || !self.cfg.suppress_silent_stores;
        let g = self.cfg.granularity_bytes as u64;
        for wi in 0..self.trace.watches().len() {
            let w = self.trace.watches()[wi];
            if w.len == 0 {
                continue;
            }
            let precise = w.overlaps(addr, size);
            let rounded = rounded_overlap(&w, addr, size, g);
            if !rounded {
                continue;
            }
            let idx = w.tthread as usize;
            if idx >= self.cfg.tst_capacity {
                continue; // unmanaged: no TST entry to mark
            }
            if !fires {
                self.res.tthreads[idx].silent_suppressed += 1;
                continue;
            }
            self.res.tthreads[idx].triggers += 1;
            if !precise {
                self.res.tthreads[idx].false_triggers += 1;
            }
            self.last_trigger[idx] = *time;
            if !self.dirty[idx] {
                if self.dirty_count >= self.cfg.queue_capacity {
                    self.res.queue_overflows += 1;
                    self.force_inline[idx] = true;
                }
                self.dirty[idx] = true;
                self.dirty_count += 1;
            }
        }
    }

    fn finish(mut self) -> SimResult {
        self.res.cycles = self.main_time.ceil() as u64;
        let (l1, l2, l3) = self.mem.level_stats();
        self.res.l1 = l1;
        self.res.l2 = l2;
        self.res.l3 = l3;
        self.res.memory_accesses = self.mem.memory_accesses();
        let mut activity = Activity::from_hierarchy(l1, l2, l3, self.mem.memory_accesses());
        activity.instructions = self.res.alu_instructions;
        activity.compares = self.res.compares;
        self.res.activity = activity;
        self.res.energy_pj = EnergyModel::default().energy_pj(&activity);
        self.res.instructions_executed =
            self.res.alu_instructions + self.res.loads + self.res.stores;
        self.res
    }
}

fn region_end_index(events: &[Event], begin: usize, tthread: u32) -> usize {
    events[begin + 1..]
        .iter()
        .position(|e| matches!(e, Event::RegionEnd { tthread: t } if *t == tthread))
        .map(|off| begin + 1 + off)
        .expect("region has a matching end")
}

fn rounded_overlap(w: &Watch, addr: u64, size: u32, g: u64) -> bool {
    if size == 0 {
        return false;
    }
    let s_start = addr / g * g;
    let s_end = (addr + size as u64).div_ceil(g) * g;
    let w_start = w.start / g * g;
    let w_end = (w.start + w.len).div_ceil(g) * g;
    s_start < w_end && w_start < s_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtt_trace::TraceBuilder;

    /// `iterations` rounds of: store `values[i]` to the watched word, run a
    /// region of `region_cost` compute, join.
    fn periodic_trace(values: &[u64], region_cost: u64) -> Trace {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("w");
        b.declare_watch(t, 0x1000, 8);
        for &v in values {
            b.store_event(1, 0x1000, 8, v);
            b.compute_event(50);
            b.region_begin_checked(t).unwrap();
            b.compute_event(region_cost);
            b.region_end_checked(t).unwrap();
            b.join_event(t);
        }
        b.finish().unwrap()
    }

    fn inline_cfg() -> MachineConfig {
        MachineConfig::default().with_contexts(1)
    }

    #[test]
    fn baseline_executes_every_region() {
        let tr = periodic_trace(&[7; 10], 1000);
        let r = simulate(&MachineConfig::default(), &tr, SimMode::Baseline);
        assert_eq!(r.region_instances, 10);
        assert_eq!(r.regions_skipped, 0);
        assert_eq!(r.instructions_skipped, 0);
        // 10 * (1 store + 50 + 1000 compute)
        assert_eq!(r.instructions_executed, 10 * 1051);
    }

    #[test]
    fn dtt_skips_silent_iterations() {
        let tr = periodic_trace(&[7; 10], 1000);
        let r = simulate(&inline_cfg(), &tr, SimMode::Dtt);
        // First iteration runs (cold), the other 9 are skipped.
        assert_eq!(r.regions_skipped, 9);
        assert_eq!(r.instructions_skipped, 9 * 1000);
        let base = simulate(&inline_cfg(), &tr, SimMode::Baseline);
        assert!(r.cycles < base.cycles);
        assert!(base.speedup_over(&r) > 1.0);
    }

    #[test]
    fn changing_values_run_every_region() {
        let values: Vec<u64> = (0..10).collect();
        let tr = periodic_trace(&values, 1000);
        let r = simulate(&inline_cfg(), &tr, SimMode::Dtt);
        assert_eq!(r.regions_skipped, 0);
        assert_eq!(r.regions_inline, 10);
    }

    #[test]
    fn suppression_off_triggers_on_silent_stores() {
        let tr = periodic_trace(&[7; 10], 1000);
        let cfg = inline_cfg().with_silent_store_suppression(false);
        let r = simulate(&cfg, &tr, SimMode::Dtt);
        assert_eq!(r.regions_skipped, 0);
        assert_eq!(r.compares, 0);
    }

    #[test]
    fn offload_overlaps_main_thread() {
        // Values change every round, so the region always runs. With a
        // spare context the recomputation overlaps the 50-instruction gap;
        // with contexts=1 it serializes.
        let values: Vec<u64> = (0..20).collect();
        let tr = periodic_trace(&values, 400);
        let serial = simulate(&inline_cfg().with_spawn_overhead(0), &tr, SimMode::Dtt);
        let overlap = simulate(
            &MachineConfig::default()
                .with_contexts(2)
                .with_spawn_overhead(0),
            &tr,
            SimMode::Dtt,
        );
        assert_eq!(overlap.regions_offloaded, 20);
        assert!(overlap.cycles < serial.cycles);
    }

    #[test]
    fn spawn_overhead_hurts() {
        let values: Vec<u64> = (0..20).collect();
        let tr = periodic_trace(&values, 400);
        let cheap = simulate(
            &MachineConfig::default().with_spawn_overhead(0),
            &tr,
            SimMode::Dtt,
        );
        let dear = simulate(
            &MachineConfig::default().with_spawn_overhead(10_000),
            &tr,
            SimMode::Dtt,
        );
        assert!(dear.cycles > cheap.cycles);
    }

    #[test]
    fn queue_overflow_forces_inline() {
        // Two tthreads, queue capacity 1: triggering both in one round
        // overflows and forces one inline.
        let mut b = TraceBuilder::new();
        let ta = b.declare_tthread("a");
        let tb = b.declare_tthread("b");
        b.declare_watch(ta, 0x0, 8);
        b.declare_watch(tb, 0x100, 8);
        for v in 1..=5u64 {
            b.store_event(1, 0x0, 8, v);
            b.store_event(1, 0x100, 8, v);
            for t in [ta, tb] {
                b.region_begin_checked(t).unwrap();
                b.compute_event(100);
                b.region_end_checked(t).unwrap();
                b.join_event(t);
            }
        }
        let tr = b.finish().unwrap();
        let r = simulate(
            &MachineConfig::default()
                .with_contexts(4)
                .with_queue_capacity(1),
            &tr,
            SimMode::Dtt,
        );
        assert!(r.queue_overflows > 0);
        assert!(r.regions_inline > 0);
    }

    #[test]
    fn line_granularity_false_triggers() {
        // Watch [0x1000, 0x1008); store to 0x1020 (same 64B line).
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0x1000, 8);
        b.region_begin_checked(t).unwrap();
        b.compute_event(10);
        b.region_end_checked(t).unwrap();
        for v in 1..=3u64 {
            b.store_event(1, 0x1020, 8, v);
            b.region_begin_checked(t).unwrap();
            b.compute_event(10);
            b.region_end_checked(t).unwrap();
        }
        let tr = b.finish().unwrap();
        let precise = simulate(&inline_cfg().with_granularity_bytes(1), &tr, SimMode::Dtt);
        assert_eq!(precise.tthreads[0].false_triggers, 0);
        assert_eq!(precise.regions_skipped, 3);
        let coarse = simulate(&inline_cfg().with_granularity_bytes(64), &tr, SimMode::Dtt);
        assert_eq!(coarse.tthreads[0].false_triggers, 3);
        assert_eq!(coarse.regions_skipped, 0);
    }

    #[test]
    fn join_waits_for_offloaded_region() {
        // Big region, tiny gap: the join must wait, so wait cycles show up.
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0x0, 8);
        b.store_event(1, 0x0, 8, 1);
        b.region_begin_checked(t).unwrap();
        b.compute_event(100_000);
        b.region_end_checked(t).unwrap();
        b.join_event(t);
        let tr = b.finish().unwrap();
        let r = simulate(&MachineConfig::default(), &tr, SimMode::Dtt);
        assert_eq!(r.regions_offloaded, 1);
        assert!(r.join_wait_cycles > 0);
        // The main thread still ends after the region completes.
        assert!(r.cycles >= 100_000);
    }

    #[test]
    fn outstanding_offload_completes_before_program_end() {
        // No join at all: cycles must still cover the offloaded work.
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0x0, 8);
        b.store_event(1, 0x0, 8, 1);
        b.region_begin_checked(t).unwrap();
        b.compute_event(50_000);
        b.region_end_checked(t).unwrap();
        let tr = b.finish().unwrap();
        let r = simulate(&MachineConfig::default(), &tr, SimMode::Dtt);
        assert!(r.cycles >= 50_000);
    }

    #[test]
    fn energy_tracks_skipped_work() {
        let tr = periodic_trace(&[7; 20], 5_000);
        let base = simulate(&inline_cfg(), &tr, SimMode::Baseline);
        let dtt = simulate(&inline_cfg(), &tr, SimMode::Dtt);
        assert!(dtt.energy_pj < base.energy_pj);
        assert!(dtt.compares > 0);
    }

    #[test]
    fn unmanaged_tthreads_always_run_inline() {
        // Two tthreads, TST capacity 1: the second is unmanaged and never
        // skips, even though its data never changes.
        let mut b = TraceBuilder::new();
        let ta = b.declare_tthread("managed");
        let tb = b.declare_tthread("unmanaged");
        b.declare_watch(ta, 0x0, 8);
        b.declare_watch(tb, 0x100, 8);
        for _ in 0..5 {
            b.store_event(1, 0x0, 8, 1); // silent after round 1
            for t in [ta, tb] {
                b.region_begin_checked(t).unwrap();
                b.compute_event(100);
                b.region_end_checked(t).unwrap();
                b.join_event(t);
            }
        }
        let tr = b.finish().unwrap();
        let full = simulate(&inline_cfg(), &tr, SimMode::Dtt);
        assert_eq!(full.tthreads[1].skips, 4);
        let limited = simulate(&inline_cfg().with_tst_capacity(1), &tr, SimMode::Dtt);
        assert_eq!(limited.tthreads[0].skips, 4, "managed tthread still skips");
        assert_eq!(
            limited.tthreads[1].skips, 0,
            "unmanaged tthread never skips"
        );
        assert_eq!(limited.tthreads[1].inline_runs, 5);
        assert!(limited.cycles > full.cycles);
    }

    #[test]
    fn private_l1_offload_pays_warmup() {
        // A dirty region streaming over data the main thread already
        // touched: with a shared L1 the offloaded tthread hits; with
        // private L1s it must refill from L2.
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0x0, 8);
        // Main thread warms the lines.
        for i in 0..64u64 {
            b.load_event(1, 0x10000 + 64 * i, 8, i);
        }
        b.store_event(1, 0x0, 8, 1); // trigger
        b.region_begin_checked(t).unwrap();
        for i in 0..64u64 {
            b.load_event(2, 0x10000 + 64 * i, 8, i);
        }
        b.region_end_checked(t).unwrap();
        b.join_event(t);
        let tr = b.finish().unwrap();
        let shared = simulate(
            &MachineConfig::default().with_contexts(2),
            &tr,
            SimMode::Dtt,
        );
        let private = simulate(
            &MachineConfig::default()
                .with_contexts(2)
                .with_private_l1(true),
            &tr,
            SimMode::Dtt,
        );
        assert!(
            private.cycles > shared.cycles,
            "private L1 must pay warm-up"
        );
        assert!(private.l2.accesses > shared.l2.accesses);
    }

    #[test]
    fn rounded_overlap_math() {
        let w = Watch {
            tthread: 0,
            start: 0x1000,
            len: 8,
        };
        assert!(rounded_overlap(&w, 0x1000, 8, 1));
        assert!(!rounded_overlap(&w, 0x1008, 8, 1));
        assert!(rounded_overlap(&w, 0x1008, 8, 64)); // same line
        assert!(!rounded_overlap(&w, 0x1040, 8, 64)); // next line
        assert!(!rounded_overlap(&w, 0x1000, 0, 64));
    }
}
