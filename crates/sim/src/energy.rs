//! A simple activity-based energy model.
//!
//! Good enough for the paper's energy argument: DTT removes dynamic
//! instructions and their cache activity, at the cost of a value compare on
//! every store. Units are picojoules per event, defaults loosely in the
//! range of published 45 nm CMOS numbers.

use dtt_memsim::CacheStats;

/// Per-event energy costs in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Executing one non-memory instruction.
    pub instruction_pj: f64,
    /// One L1 access.
    pub l1_pj: f64,
    /// One L2 access.
    pub l2_pj: f64,
    /// One L3 access.
    pub l3_pj: f64,
    /// One DRAM access.
    pub memory_pj: f64,
    /// One old/new value comparison in the store pipeline.
    pub compare_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            instruction_pj: 10.0,
            l1_pj: 20.0,
            l2_pj: 80.0,
            l3_pj: 250.0,
            memory_pj: 2000.0,
            compare_pj: 2.0,
        }
    }
}

/// Activity counts fed into the model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Non-memory instructions executed.
    pub instructions: u64,
    /// L1 accesses.
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// Memory accesses.
    pub memory_accesses: u64,
    /// Store value comparisons performed.
    pub compares: u64,
}

impl Activity {
    /// Builds the cache part of the activity from per-level stats.
    pub fn from_hierarchy(
        l1: CacheStats,
        l2: CacheStats,
        l3: Option<CacheStats>,
        mem: u64,
    ) -> Self {
        Activity {
            instructions: 0,
            l1_accesses: l1.accesses,
            l2_accesses: l2.accesses,
            l3_accesses: l3.map_or(0, |s| s.accesses),
            memory_accesses: mem,
            compares: 0,
        }
    }
}

impl EnergyModel {
    /// Total energy of `activity` in picojoules.
    pub fn energy_pj(&self, activity: &Activity) -> f64 {
        activity.instructions as f64 * self.instruction_pj
            + activity.l1_accesses as f64 * self.l1_pj
            + activity.l2_accesses as f64 * self.l2_pj
            + activity.l3_accesses as f64 * self.l3_pj
            + activity.memory_accesses as f64 * self.memory_pj
            + activity.compares as f64 * self.compare_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_zero_energy() {
        assert_eq!(EnergyModel::default().energy_pj(&Activity::default()), 0.0);
    }

    #[test]
    fn energy_is_linear() {
        let m = EnergyModel::default();
        let a = Activity {
            instructions: 10,
            l1_accesses: 5,
            l2_accesses: 2,
            l3_accesses: 1,
            memory_accesses: 1,
            compares: 3,
        };
        let double = Activity {
            instructions: 20,
            l1_accesses: 10,
            l2_accesses: 4,
            l3_accesses: 2,
            memory_accesses: 2,
            compares: 6,
        };
        assert!((m.energy_pj(&double) - 2.0 * m.energy_pj(&a)).abs() < 1e-9);
    }

    #[test]
    fn memory_dominates_default_model() {
        let m = EnergyModel::default();
        let mem_only = Activity {
            memory_accesses: 1,
            ..Activity::default()
        };
        let instr_only = Activity {
            instructions: 100,
            ..Activity::default()
        };
        assert!(m.energy_pj(&mem_only) > m.energy_pj(&instr_only));
    }

    #[test]
    fn from_hierarchy_maps_accesses() {
        let l1 = CacheStats {
            accesses: 100,
            hits: 90,
            evictions: 5,
            writebacks: 2,
        };
        let l2 = CacheStats {
            accesses: 10,
            hits: 8,
            evictions: 1,
            writebacks: 0,
        };
        let a = Activity::from_hierarchy(l1, l2, None, 2);
        assert_eq!(a.l1_accesses, 100);
        assert_eq!(a.l2_accesses, 10);
        assert_eq!(a.l3_accesses, 0);
        assert_eq!(a.memory_accesses, 2);
    }
}
