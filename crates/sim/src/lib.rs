//! # dtt-sim — timing simulator for data-triggered threads
//!
//! A trace-driven model of the HPCA'11 DTT hardware, replacing the authors'
//! detailed SMT simulator with the minimal machine that exposes the same
//! trade-offs:
//!
//! * **skip** — a region whose watched inputs did not change costs zero
//!   cycles (redundant-computation elimination);
//! * **overlap** — a dirty region executes on a spare context starting at
//!   trigger time + spawn overhead, hiding behind main-thread progress;
//! * **overheads** — spawn latency, trigger checks, queue capacity, and
//!   coarse-granularity false triggers all push back.
//!
//! Replay the *same* trace in [`SimMode::Baseline`] and [`SimMode::Dtt`] and
//! compare cycles:
//!
//! ```
//! use dtt_sim::{simulate, MachineConfig, SimMode};
//! use dtt_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let t = b.declare_tthread("recompute");
//! b.declare_watch(t, 0, 8);
//! for _ in 0..4 {
//!     b.store_event(1, 0, 8, 9); // silent after the first round
//!     b.region_begin_checked(t)?;
//!     b.compute_event(1_000);
//!     b.region_end_checked(t)?;
//!     b.join_event(t);
//! }
//! let trace = b.finish()?;
//! let cfg = MachineConfig::default();
//! let base = simulate(&cfg, &trace, SimMode::Baseline);
//! let dtt = simulate(&cfg, &trace, SimMode::Dtt);
//! let speedup = base.speedup_over(&dtt);
//! assert!(speedup > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod energy;
pub mod machine;
pub mod result;

pub use config::MachineConfig;
pub use energy::{Activity, EnergyModel};
pub use machine::simulate;
pub use result::{SimMode, SimResult, TthreadSimStats};
