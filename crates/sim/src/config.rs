//! Simulated machine configuration.

use std::fmt;

use dtt_memsim::HierarchyConfig;

/// Parameters of the simulated DTT machine (reconstructed Table 1).
///
/// The model is trace-driven and in-order: each non-memory instruction costs
/// [`MachineConfig::cpi`] cycles, each memory access costs its cache-
/// hierarchy latency, and the DTT structures (thread status table, thread
/// queue, spawn path) add the explicit overheads below.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Cycles per non-memory instruction on every context.
    pub cpi: f64,
    /// Total hardware contexts, including the main thread's. `contexts - 1`
    /// spare contexts execute tthreads; with `contexts == 1` every tthread
    /// runs inline on the main context.
    pub contexts: usize,
    /// Cycles between a trigger firing and the tthread starting on a spare
    /// context (enqueue, dispatch, register setup).
    pub spawn_overhead: u64,
    /// Extra cycles charged to the storing context per store for the
    /// trigger lookup/compare (0 models fully hidden hardware checks).
    pub trigger_check_overhead: u64,
    /// Capacity of the pending-tthread queue; triggers arriving beyond it
    /// force the tthread to run inline on the main context.
    pub queue_capacity: usize,
    /// Trigger observation granularity in bytes (power of two; 1 = precise,
    /// 8 = word, 64 = cache line).
    pub granularity_bytes: u32,
    /// Whether stores compare old/new values and suppress triggers for
    /// silent stores.
    pub suppress_silent_stores: bool,
    /// Give every context its own private L1 (CMP-style) instead of one
    /// shared L1 (SMT-style). Private L1s isolate the main thread from
    /// tthread cache pressure but cost offloaded tthreads their warm-up.
    pub private_l1: bool,
    /// Thread status table capacity: tthreads registered beyond this many
    /// entries are *unmanaged* — the hardware cannot track them, so their
    /// regions always execute inline on the main context.
    pub tst_capacity: usize,
    /// Data-cache hierarchy (L2/L3/memory always shared).
    pub hierarchy: HierarchyConfig,
}

impl Default for MachineConfig {
    /// The default machine: 2 contexts (one spare for tthreads), 100-cycle
    /// spawn path, 16-entry thread queue, word-granularity triggers,
    /// silent-store suppression on, and the default three-level hierarchy.
    fn default() -> Self {
        MachineConfig {
            cpi: 1.0,
            contexts: 2,
            spawn_overhead: 100,
            trigger_check_overhead: 0,
            queue_capacity: 16,
            granularity_bytes: 8,
            suppress_silent_stores: true,
            private_l1: false,
            tst_capacity: 256,
            hierarchy: HierarchyConfig::default(),
        }
    }
}

impl MachineConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` or `queue_capacity` is zero, `cpi` is not
    /// positive and finite, or `granularity_bytes` is not a power of two.
    pub fn validate(&self) {
        assert!(self.contexts >= 1, "at least one context is required");
        assert!(self.tst_capacity >= 1, "tst capacity must be nonzero");
        assert!(self.queue_capacity >= 1, "queue capacity must be nonzero");
        assert!(
            self.cpi.is_finite() && self.cpi > 0.0,
            "cpi must be positive and finite"
        );
        assert!(
            self.granularity_bytes.is_power_of_two(),
            "granularity must be a power of two"
        );
    }

    /// Builder-style setter for `contexts`.
    pub fn with_contexts(mut self, contexts: usize) -> Self {
        self.contexts = contexts;
        self
    }

    /// Builder-style setter for `spawn_overhead`.
    pub fn with_spawn_overhead(mut self, cycles: u64) -> Self {
        self.spawn_overhead = cycles;
        self
    }

    /// Builder-style setter for `queue_capacity`.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Builder-style setter for `granularity_bytes`.
    pub fn with_granularity_bytes(mut self, bytes: u32) -> Self {
        self.granularity_bytes = bytes;
        self
    }

    /// Builder-style setter for `suppress_silent_stores`.
    pub fn with_silent_store_suppression(mut self, on: bool) -> Self {
        self.suppress_silent_stores = on;
        self
    }

    /// Builder-style setter for `trigger_check_overhead`.
    pub fn with_trigger_check_overhead(mut self, cycles: u64) -> Self {
        self.trigger_check_overhead = cycles;
        self
    }

    /// Builder-style setter for `private_l1`.
    pub fn with_private_l1(mut self, private: bool) -> Self {
        self.private_l1 = private;
        self
    }

    /// Builder-style setter for `tst_capacity`.
    pub fn with_tst_capacity(mut self, capacity: usize) -> Self {
        self.tst_capacity = capacity;
        self
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = &self.hierarchy;
        writeln!(f, "contexts              {}", self.contexts)?;
        writeln!(f, "base CPI              {}", self.cpi)?;
        writeln!(f, "tthread spawn         {} cycles", self.spawn_overhead)?;
        writeln!(
            f,
            "trigger check         {} cycles/store",
            self.trigger_check_overhead
        )?;
        writeln!(f, "thread queue          {} entries", self.queue_capacity)?;
        writeln!(f, "trigger granularity   {} B", self.granularity_bytes)?;
        writeln!(
            f,
            "silent-store suppress {}",
            if self.suppress_silent_stores {
                "on"
            } else {
                "off"
            }
        )?;
        writeln!(f, "TST capacity          {} tthreads", self.tst_capacity)?;
        writeln!(
            f,
            "L1 layout             {}",
            if self.private_l1 {
                "private per context"
            } else {
                "shared"
            }
        )?;
        writeln!(
            f,
            "L1D                   {} KiB {}-way, {}-cycle",
            h.l1.size_bytes() / 1024,
            h.l1.ways(),
            h.l1_latency
        )?;
        writeln!(
            f,
            "L2                    {} KiB {}-way, {}-cycle",
            h.l2.size_bytes() / 1024,
            h.l2.ways(),
            h.l2_latency
        )?;
        if let Some(l3) = h.l3 {
            writeln!(
                f,
                "L3                    {} KiB {}-way, {}-cycle",
                l3.size_bytes() / 1024,
                l3.ways(),
                h.l3_latency
            )?;
        }
        write!(f, "memory                {}-cycle", h.memory_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        MachineConfig::default().validate();
    }

    #[test]
    fn builders_apply() {
        let cfg = MachineConfig::default()
            .with_contexts(4)
            .with_spawn_overhead(500)
            .with_queue_capacity(2)
            .with_granularity_bytes(64)
            .with_silent_store_suppression(false)
            .with_trigger_check_overhead(1);
        assert_eq!(cfg.contexts, 4);
        assert_eq!(cfg.spawn_overhead, 500);
        assert_eq!(cfg.queue_capacity, 2);
        assert_eq!(cfg.granularity_bytes, 64);
        assert!(!cfg.suppress_silent_stores);
        assert_eq!(cfg.trigger_check_overhead, 1);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn zero_contexts_rejected() {
        MachineConfig::default().with_contexts(0).validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_granularity_rejected() {
        MachineConfig::default()
            .with_granularity_bytes(12)
            .validate();
    }

    #[test]
    fn display_covers_machine_rows() {
        let text = MachineConfig::default().to_string();
        for needle in ["contexts", "spawn", "queue", "L1D", "L2", "L3", "memory"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
