//! Golden-file pin of the `StatsSnapshot` JSON shape.
//!
//! `dtt obs metrics` and the JSON exporters all serialize through
//! `StatsSnapshot::to_json`, whose field list comes from the same macro as
//! `Counters::fields`. This test pins the exact serialized bytes for a
//! fully populated snapshot against `tests/golden/stats_snapshot.json`, so
//! any accidental rename, reorder, or format change of the shared
//! serialization path fails loudly.

use dtt_core::stats::{Counters, StatsSnapshot};

const GOLDEN: &str = include_str!("golden/stats_snapshot.json");

/// Distinct, position-dependent values so swapped fields cannot cancel.
fn populated() -> Counters {
    let mut c = Counters::new();
    let names: Vec<&'static str> = c.fields().into_iter().map(|(n, _)| n).collect();
    for (i, name) in names.into_iter().enumerate() {
        assert!(c.set_field(name, (i as u64 + 1) * 101));
    }
    c
}

#[test]
fn to_json_matches_golden_file() {
    let json = populated().snapshot().to_json();
    assert_eq!(
        json,
        GOLDEN.trim_end(),
        "StatsSnapshot::to_json drifted from tests/golden/stats_snapshot.json; \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn golden_file_parses_back_to_the_same_snapshot() {
    let snap = StatsSnapshot::from_json(GOLDEN.trim_end()).unwrap();
    assert_eq!(snap, populated().snapshot());
    // And the full loop is the identity on the golden bytes.
    assert_eq!(snap.to_json(), GOLDEN.trim_end());
}
