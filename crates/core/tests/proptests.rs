//! Property-based tests for the DTT core data structures and runtime
//! invariants.

use dtt_core::addr::{Addr, AddrRange, Granularity};
use dtt_core::queue::{CoalescingQueue, PushOutcome};
use dtt_core::tthread::TthreadId;
use dtt_core::{Config, JoinOutcome, Runtime};
use proptest::prelude::*;

fn granularities() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::Exact),
        Just(Granularity::Word),
        Just(Granularity::Line),
        (2u32..=10).prop_map(|p| Granularity::Block(1 << p)),
    ]
}

proptest! {
    /// Rounding a range never shrinks it and always aligns its bounds.
    #[test]
    fn rounding_expands_and_aligns(
        start in 0u64..1_000_000,
        len in 1u64..4096,
        g in granularities(),
    ) {
        let r = AddrRange::new(Addr::new(start), len);
        let rounded = r.round_to(g);
        let w = g.width() as u64;
        prop_assert!(rounded.start().raw() <= r.start().raw());
        prop_assert!(rounded.end().raw() >= r.end().raw());
        prop_assert_eq!(rounded.start().raw() % w, 0);
        prop_assert_eq!(rounded.end().raw() % w, 0);
        // Idempotent.
        prop_assert_eq!(rounded.round_to(g), rounded);
    }

    /// Intersection is symmetric and agrees with a brute-force byte check.
    #[test]
    fn intersection_matches_brute_force(
        s1 in 0u64..500, l1 in 0u64..64,
        s2 in 0u64..500, l2 in 0u64..64,
    ) {
        let a = AddrRange::new(Addr::new(s1), l1);
        let b = AddrRange::new(Addr::new(s2), l2);
        let brute = (s1..s1 + l1).any(|x| x >= s2 && x < s2 + l2);
        prop_assert_eq!(a.intersects(&b), brute);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// The coalescing queue never exceeds capacity, never holds duplicates,
    /// and pops in FIFO order of first-enqueue.
    #[test]
    fn queue_invariants(ops in prop::collection::vec((0u32..16, prop::bool::ANY), 1..200)) {
        let mut q = CoalescingQueue::new(4, true);
        let mut model: Vec<u32> = Vec::new();
        for (id, do_pop) in ops {
            if do_pop {
                let got = q.pop().map(|t| t.index() as u32);
                let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                prop_assert_eq!(got, want);
            } else {
                let outcome = q.push(TthreadId::new(id));
                match outcome {
                    PushOutcome::Enqueued => model.push(id),
                    PushOutcome::Coalesced => prop_assert!(model.contains(&id)),
                    PushOutcome::Full => prop_assert_eq!(model.len(), 4),
                }
            }
            prop_assert!(q.len() <= 4);
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// DTT execution is *transparent*: for any sequence of stores, the
    /// tthread-maintained aggregate equals a from-scratch recomputation.
    #[test]
    fn dtt_matches_recompute(stores in prop::collection::vec((0usize..8, 0u32..4), 0..64)) {
        let mut rt = Runtime::new(Config::default(), 0u64);
        let xs = rt.alloc_array::<u32>(8).unwrap();
        let tt = rt.register("sum", move |ctx| {
            let s: u64 = (0..8).map(|i| ctx.read(xs, i) as u64).sum();
            *ctx.user_mut() = s;
        });
        rt.watch(tt, xs.range()).unwrap();
        rt.force(tt).unwrap();

        let mut shadow = [0u32; 8];
        for (i, v) in stores {
            rt.with(|ctx| ctx.write(xs, i, v));
            shadow[i] = v;
            rt.join(tt).unwrap();
            let expect: u64 = shadow.iter().map(|&x| x as u64).sum();
            prop_assert_eq!(rt.with(|ctx| *ctx.user()), expect);
        }
    }

    /// Writing a value equal to the current contents never executes the
    /// tthread, at any granularity.
    #[test]
    fn silent_stores_never_execute(
        g in granularities(),
        values in prop::collection::vec(0u32..3, 1..32),
    ) {
        let cfg = Config::default().with_granularity(g);
        let mut rt = Runtime::new(cfg, 0u32);
        let x = rt.alloc(0u32).unwrap();
        let tt = rt.register("count", |ctx| *ctx.user_mut() += 1);
        rt.watch(tt, x.range()).unwrap();

        let mut current = 0u32;
        let mut changes = 0u64;
        for v in values {
            rt.with(|ctx| ctx.set(x, v));
            if v != current {
                changes += 1;
                current = v;
            }
            rt.join(tt).unwrap();
        }
        let snap = rt.stats();
        prop_assert_eq!(snap.counters().executions, changes);
        prop_assert_eq!(u64::from(rt.with(|ctx| *ctx.user())), changes);
    }

    /// With coalescing, N consecutive changing stores before a single join
    /// produce exactly one execution (deferred executor).
    #[test]
    fn triggers_coalesce_to_one_execution(n in 1usize..50) {
        let mut rt = Runtime::new(Config::default(), ());
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, x.range()).unwrap();
        for i in 0..n {
            rt.write(x, i as u64 + 1);
        }
        prop_assert_eq!(rt.join(tt).unwrap(), JoinOutcome::RanInline);
        prop_assert_eq!(rt.stats().counters().executions, 1);
        prop_assert_eq!(
            rt.stats().counters().coalesced_triggers,
            n as u64 - 1
        );
    }

    /// Parallel executor: whatever the interleaving and queue capacity, the
    /// published aggregate after join equals the deterministic recompute.
    #[test]
    fn parallel_converges(
        workers in 1usize..4,
        cap in 1usize..8,
        stores in prop::collection::vec((0usize..4, 0u64..100), 1..40),
    ) {
        let cfg = Config::default().with_workers(workers).with_queue_capacity(cap);
        let mut rt = Runtime::new(cfg, 0u64);
        let xs = rt.alloc_array::<u64>(4).unwrap();
        let tt = rt.register("sum", move |ctx| {
            let s: u64 = (0..4).map(|i| ctx.read(xs, i)).sum();
            *ctx.user_mut() = s;
        });
        rt.watch(tt, xs.range()).unwrap();
        let mut shadow = [0u64; 4];
        for (i, v) in stores {
            rt.with(|ctx| ctx.write(xs, i, v));
            shadow[i] = v;
        }
        rt.join(tt).unwrap();
        let expect: u64 = shadow.iter().sum();
        prop_assert_eq!(rt.with(|ctx| *ctx.user()), expect);
    }

    /// Counter conservation across random schedules, executors and configs:
    /// every execution is attributed to exactly one site (inline or worker),
    /// every tracked store is classified (silent or changing) — including
    /// stores replayed from detached write logs — and per-tthread execution
    /// counts sum to the global count.
    #[test]
    fn counters_stay_conserved(
        workers in 0usize..3,
        cap in 1usize..4,
        coalesce in prop::bool::ANY,
        detached in prop::bool::ANY,
        lockfree in prop::bool::ANY,
        cutoff in prop::bool::ANY,
        ops in prop::collection::vec((0u8..4, 0usize..4, 0u64..3), 1..60),
    ) {
        let cfg = Config::default()
            .with_workers(workers)
            .with_queue_capacity(cap)
            .with_coalescing(coalesce)
            .with_detached_execution(detached)
            .with_lockfree_dispatch(lockfree)
            .with_early_cutoff(cutoff);
        let mut rt = Runtime::new(cfg, 0u64);
        let xs = rt.alloc_array::<u64>(4).unwrap();
        let sum = rt.register("sum", move |ctx| {
            let s: u64 = (0..4).map(|i| ctx.read(xs, i)).sum();
            *ctx.user_mut() = s;
        });
        rt.watch(sum, xs.range()).unwrap();
        // A second tthread that *stores* into tracked memory, so detached
        // commits and cascade dispatch are exercised too.
        let mirror = rt.alloc_array::<u64>(4).unwrap();
        let copy = rt.register("copy", move |ctx| {
            for i in 0..4 {
                let v = ctx.read(xs, i);
                ctx.write(mirror, i, v);
            }
        });
        rt.watch(copy, xs.range()).unwrap();
        // A third stage downstream of `copy`, so its commits raise trigger
        // waves: the wave conservation identity below gets real cascades
        // (and, with small value ranges, real dedups and cutoffs).
        let sink = rt.register("sink", move |ctx| {
            let s: u64 = (0..4).map(|i| ctx.read(mirror, i)).sum();
            *ctx.user_mut() = s;
        });
        rt.watch(sink, mirror.range()).unwrap();

        for (op, i, v) in ops {
            match op {
                0 | 1 => rt.with(|ctx| ctx.write(xs, i, v)),
                2 => {
                    rt.join(sum).unwrap();
                }
                _ => {
                    rt.join_all().unwrap();
                }
            }
        }
        rt.join_all().unwrap();

        let snap = rt.stats();
        let c = snap.counters();
        prop_assert_eq!(c.executions, c.inline_executions + c.worker_executions);
        prop_assert_eq!(c.tracked_stores, c.silent_stores + c.changing_stores);
        prop_assert!(c.detached_executions <= c.worker_executions);
        if workers == 0 || !detached {
            prop_assert_eq!(c.detached_executions, 0);
        }
        let per_tthread: u64 = rt
            .tthread_counters()
            .iter()
            .map(|(_, execs, _, _)| *execs)
            .sum();
        prop_assert_eq!(per_tthread, c.executions);
        // Dispatch-path conservation: with workers, every fired trigger is
        // accounted for exactly once — enqueued, coalesced/absorbed, or
        // overflowed. The deferred executor (workers = 0) marks a Clean
        // tthread Triggered without touching the queue counters, so there
        // the sum only bounds the fired triggers from below.
        if workers == 0 {
            prop_assert_eq!(c.enqueues, 0);
            prop_assert_eq!(c.queue_overflows, 0);
            prop_assert!(c.triggers_fired >= c.coalesced_triggers);
            prop_assert_eq!(c.worker_wakes, 0);
            prop_assert_eq!(c.worker_parks, 0);
            // The deferred executor has no workers to steal, park or be
            // rescued: the scheduler-v2 counters stay untouched.
            prop_assert_eq!(c.steals, 0);
            prop_assert_eq!(c.steal_batches, 0);
            prop_assert_eq!(c.park_timeouts, 0);
        } else {
            prop_assert_eq!(
                c.triggers_fired,
                c.enqueues + c.coalesced_triggers + c.queue_overflows
            );
        }
        // Wave conservation: every cascade resolved exactly one way —
        // activated a downstream slot, coalesced into a pending run, or
        // was counted as the terminal cutoff of its own silent commit.
        // Dropped and deduped raises bump none of these by design.
        prop_assert_eq!(
            c.cascades,
            c.cascade_enqueues + c.cascade_coalesced + c.cascade_cutoffs
        );
        if !cutoff {
            // Cutoffs are only *counted* under early cutoff; the ablation
            // propagates silent commits instead of terminating waves.
            prop_assert_eq!(c.cascade_cutoffs, 0);
        }
        // Wake discipline: at most one wake per enqueued unit, and a queue
        // entry can go stale (lose its claim race) at most once.
        prop_assert!(c.worker_wakes <= c.enqueues);
        prop_assert!(c.queue_stale_skips <= c.enqueues);
        // Steal discipline: every successful steal attempt migrates at
        // least its returned head entry, so batches never outnumber moved
        // entries; and the locked baseline never steals at all.
        prop_assert!(c.steal_batches <= c.steals);
        if !lockfree {
            prop_assert_eq!(c.steals, 0);
        }
        // Pending-length audit: at quiescence the reservation counter and
        // the entries physically in the shards must agree — a double
        // decrement on the stale-skip, steal or overflow paths would
        // split them apart *permanently*. A worker draining leftover
        // stale entries can skew the two reads transiently (a steal's
        // batch is between shards for a moment), so retry briefly:
        // transient skew converges, a real accounting bug never does.
        let mut lens = rt.pending_queue_consistency();
        for _ in 0..500 {
            if lens.0 == lens.1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            lens = rt.pending_queue_consistency();
        }
        prop_assert_eq!(lens.0, lens.1);
    }

    /// Coarse granularity can only add triggers, never lose one: every
    /// precise change that fires under `Exact` also fires under any coarser
    /// granularity (same store sequence).
    #[test]
    fn coarse_granularity_is_superset(
        stores in prop::collection::vec((0usize..16, 0u32..4), 1..50),
        g in granularities(),
    ) {
        let run = |granularity: Granularity| -> u64 {
            let cfg = Config::default().with_granularity(granularity);
            let mut rt = Runtime::new(cfg, ());
            let xs = rt.alloc_array::<u32>(16).unwrap();
            let tt = rt.register("t", |_| {});
            // Watch only the first quarter of the array.
            rt.watch(tt, xs.range_of(0, 4)).unwrap();
            for &(i, v) in &stores {
                rt.with(|ctx| ctx.write(xs, i, v));
            }
            rt.stats().counters().triggers_fired
        };
        prop_assert!(run(g) >= run(Granularity::Exact));
    }
}
