//! The dependency-graph contract, exercised through the public API only:
//! a tthread that stores into another tthread's watched region must
//! trigger it exactly once per wave, dynamic trigger chains must converge
//! instead of livelocking (silence is the termination condition, the
//! commit-retry cap the backstop), and statically declared cycles must be
//! rejected at watch time with the offending path.

use dtt_core::{Config, Error, Runtime};

/// The baseline tthread-triggers-tthread regression: one store, one wave,
/// each stage executing exactly once — under both executors.
#[test]
fn foreign_region_store_triggers_downstream_exactly_once() {
    for workers in [0usize, 2] {
        let mut rt = Runtime::new(Config::default().with_workers(workers), 0u64);
        let a = rt.alloc_array::<u64>(1).unwrap();
        let b = rt.alloc_array::<u64>(1).unwrap();
        let double = rt.register("double", move |ctx| {
            let v = ctx.read(a, 0);
            ctx.write(b, 0, v * 2);
        });
        rt.watch(double, a.range()).unwrap();
        rt.declare_output(double, b.range()).unwrap();
        let publish = rt.register("publish", move |ctx| {
            *ctx.user_mut() = ctx.read(b, 0);
        });
        rt.watch(publish, b.range()).unwrap();

        rt.with(|ctx| ctx.write(a, 0, 21));
        rt.join(double).unwrap();
        rt.join(publish).unwrap();

        assert_eq!(rt.with(|ctx| *ctx.user()), 42, "workers={workers}");
        let counters: Vec<u64> = rt
            .tthread_counters()
            .iter()
            .map(|(_, execs, _, _)| *execs)
            .collect();
        assert_eq!(counters, vec![1, 1], "workers={workers}");
        let c = rt.stats();
        let c = c.counters();
        assert_eq!(c.cascades, 1, "workers={workers}");
        assert_eq!(
            c.cascades,
            c.cascade_enqueues + c.cascade_coalesced + c.cascade_cutoffs,
            "workers={workers}"
        );
    }
}

/// A dynamic two-tthread cycle (no declared outputs, so watch-time
/// detection cannot see it) must converge through silent-store
/// suppression rather than livelock: once both sides reach the fixed
/// point their stores go silent and the ping-pong stops.
#[test]
fn converging_dynamic_cycle_terminates() {
    for workers in [0usize, 2] {
        let mut rt = Runtime::new(Config::default().with_workers(workers), ());
        let x = rt.alloc_array::<u64>(1).unwrap();
        let y = rt.alloc_array::<u64>(1).unwrap();
        // Both bodies saturate at 10: the fixed point (10, 10).
        let a = rt.register("a", move |ctx| {
            let v = ctx.read(x, 0);
            ctx.write(y, 0, v.min(10));
        });
        rt.watch(a, x.range()).unwrap();
        let b = rt.register("b", move |ctx| {
            let v = ctx.read(y, 0);
            ctx.write(x, 0, v.min(10));
        });
        rt.watch(b, y.range()).unwrap();

        rt.with(|ctx| ctx.write(x, 0, 37));
        rt.join_all().unwrap();

        assert_eq!(rt.with(|ctx| ctx.read(x, 0)), 10, "workers={workers}");
        assert_eq!(rt.with(|ctx| ctx.read(y, 0)), 10, "workers={workers}");
    }
}

/// A self-retriggering countdown that also feeds a downstream reader:
/// the bounded commit-retry loop (the runtime backstop for dynamic
/// cycles) must neither livelock nor lose the downstream wave when the
/// cap is exhausted mid-chain.
#[test]
fn retry_cap_bounds_self_retrigger_without_losing_the_cascade() {
    let mut rt = Runtime::new(
        Config::default().with_commit_retry_cap(2).with_workers(1),
        0u64,
    );
    let x = rt.alloc_array::<u64>(1).unwrap();
    let out = rt.alloc_array::<u64>(1).unwrap();
    let count = rt.register("countdown", move |ctx| {
        let v = ctx.read(x, 0);
        if v > 0 {
            ctx.write(x, 0, v - 1);
        }
        ctx.write(out, 0, v);
    });
    rt.watch(count, x.range()).unwrap();
    let sink = rt.register("sink", move |ctx| {
        *ctx.user_mut() = ctx.read(out, 0);
    });
    rt.watch(sink, out.range()).unwrap();

    rt.with(|ctx| ctx.write(x, 0, 9));
    // Let the worker hit the cap (the joins below run the rest inline,
    // and the inline path absorbs reruns without the retry accounting).
    for _ in 0..2000 {
        if rt.stats().counters().commit_retry_exhausted >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Exhaustion defers to the join; repeated joins must still drive the
    // countdown to zero instead of wedging or spinning.
    for _ in 0..16 {
        rt.join(count).unwrap();
    }
    rt.join(sink).unwrap();

    assert_eq!(rt.with(|ctx| ctx.read(x, 0)), 0);
    assert_eq!(rt.with(|ctx| *ctx.user()), 0);
    let snap = rt.stats();
    let c = snap.counters();
    assert!(
        c.commit_retries > 0,
        "self-retriggers must use the retry loop"
    );
    assert_eq!(
        c.cascades,
        c.cascade_enqueues + c.cascade_coalesced + c.cascade_cutoffs
    );
}

/// The acceptance-criterion cycle: three tthreads whose declared outputs
/// and watches form a ring are rejected at watch time with the full path,
/// and the rejected edge is rolled back.
#[test]
fn three_node_declared_cycle_is_rejected_at_watch_time() {
    let mut rt = Runtime::new(Config::default(), ());
    let r1 = rt.alloc_array::<u64>(1).unwrap();
    let r2 = rt.alloc_array::<u64>(1).unwrap();
    let r3 = rt.alloc_array::<u64>(1).unwrap();
    let t1 = rt.register("t1", |_| {});
    let t2 = rt.register("t2", |_| {});
    let t3 = rt.register("t3", |_| {});
    rt.declare_output(t1, r2.range()).unwrap();
    rt.declare_output(t2, r3.range()).unwrap();
    rt.declare_output(t3, r1.range()).unwrap();
    rt.watch(t2, r2.range()).unwrap();
    rt.watch(t3, r3.range()).unwrap();
    // t1 watching r1 closes t1 -> t2 -> t3 -> t1.
    let err = rt.watch(t1, r1.range()).unwrap_err();
    match err {
        Error::TriggerCycle { path } => {
            assert_eq!(path.len(), 4, "cycle path: {path:?}");
            assert_eq!(path.first(), path.last());
        }
        other => panic!("expected TriggerCycle, got {other:?}"),
    }
    // The rejected watch must not have been installed: the same store
    // leaves t1 clean, and the edge map still has exactly two edges.
    assert_eq!(rt.graph_edges().len(), 2);
    let snap = rt.stats();
    assert_eq!(snap.counters().trigger_cycles_rejected, 1);
}
