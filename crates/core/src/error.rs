//! Error types for the DTT runtime.

use std::error::Error as StdError;
use std::fmt;

use crate::tthread::TthreadId;

/// Errors returned by fallible DTT runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A [`TthreadId`] was used that this runtime never issued.
    UnknownTthread(TthreadId),
    /// A watch was attached to a region outside the tracked arena.
    RegionOutOfBounds {
        /// Start offset of the offending region.
        start: u64,
        /// Length of the offending region.
        len: u64,
        /// Current size of the tracked arena.
        heap_len: u64,
    },
    /// An allocation would exceed the configured arena capacity.
    ArenaExhausted {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining under the capacity limit.
        available: u64,
    },
    /// `unwatch` named a region that was never watched by that tthread.
    NoSuchWatch(TthreadId),
    /// A cascade of tthreads triggering tthreads exceeded the configured depth.
    CascadeDepthExceeded(u32),
    /// The tthread's body panicked during a previous execution; its outputs
    /// are suspect until the poison is cleared.
    TthreadPoisoned(TthreadId),
    /// The tthread's body overran the configured wall-clock deadline; its
    /// write log was discarded and its outputs are stale until the flag is
    /// cleared (see [`crate::runtime::Runtime::clear_timeout`]).
    TthreadTimedOut(TthreadId),
    /// A graceful shutdown drained past its timeout with worker threads
    /// still running.
    WorkersStillActive {
        /// Number of workers that had not finished at the deadline.
        active: usize,
    },
    /// Installing a watch or declaring an output would close a cycle in the
    /// declared dependency graph (tthread A's output feeds B's trigger
    /// region and a chain of such edges leads back to A). The edge is
    /// rejected instead of letting the trigger wave livelock; the path
    /// lists the tthreads on the cycle, starting and ending at the one
    /// whose edge was rejected.
    TriggerCycle {
        /// The tthreads on the rejected cycle, in wave order.
        path: Vec<TthreadId>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTthread(id) => write!(f, "unknown tthread id {id}"),
            Error::RegionOutOfBounds { start, len, heap_len } => write!(
                f,
                "region [0x{start:x}, 0x{:x}) lies outside the tracked arena of {heap_len} bytes",
                start + len
            ),
            Error::ArenaExhausted { requested, available } => write!(
                f,
                "allocation of {requested} bytes exceeds remaining arena capacity of {available} bytes"
            ),
            Error::NoSuchWatch(id) => {
                write!(f, "tthread {id} has no watch on the given region")
            }
            Error::CascadeDepthExceeded(depth) => {
                write!(f, "tthread cascade exceeded maximum depth {depth}")
            }
            Error::TthreadPoisoned(id) => {
                write!(f, "tthread {id} panicked during a previous execution")
            }
            Error::TthreadTimedOut(id) => {
                write!(f, "tthread {id} exceeded its body deadline; the execution was discarded")
            }
            Error::WorkersStillActive { active } => {
                write!(
                    f,
                    "shutdown timed out with {active} worker thread(s) still active"
                )
            }
            Error::TriggerCycle { path } => {
                let chain: Vec<String> = path.iter().map(|id| id.to_string()).collect();
                write!(
                    f,
                    "edge would close a trigger cycle through tthreads {}",
                    chain.join(" -> ")
                )
            }
        }
    }
}

impl StdError for Error {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<Error> = vec![
            Error::UnknownTthread(TthreadId::new(3)),
            Error::RegionOutOfBounds {
                start: 0,
                len: 8,
                heap_len: 4,
            },
            Error::ArenaExhausted {
                requested: 100,
                available: 10,
            },
            Error::NoSuchWatch(TthreadId::new(0)),
            Error::CascadeDepthExceeded(32),
            Error::TthreadPoisoned(TthreadId::new(1)),
            Error::TthreadTimedOut(TthreadId::new(2)),
            Error::WorkersStillActive { active: 2 },
            Error::TriggerCycle {
                path: vec![TthreadId::new(0), TthreadId::new(1), TthreadId::new(0)],
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: StdError + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
