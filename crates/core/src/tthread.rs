//! Tthread identity and the thread status table (TST).
//!
//! The HPCA'11 hardware keeps a small *thread status table* recording, for
//! every registered tthread, whether its attached computation is up to date.
//! [`StatusTable`] is that structure. The main thread's `tstatus` check at a
//! consumption point is [`crate::runtime::Runtime::join`], which consults
//! this table to decide skip / run / wait.
//!
//! Since the dispatch path moved off the state lock, the *live* part of the
//! TST entry — status, retrigger flag, completed-since-join flag, trigger
//! count — is a packed atomic word in [`crate::dispatch::SlotTable`], CAS'd
//! by raisers and claimers without the state lock. Because every transition
//! bumps the word's token bits, the raw word doubles as a *generation
//! counter*: a lock-free `join` that finds a tthread `Running` snapshots
//! the word, drops the state lock, and sleeps until the word changes —
//! which is exactly "the run I observed ended or was re-raised". What
//! remains here is the slow bookkeeping only ever touched under the state
//! lock: poison/timeout fault state and the execution/epoch/skip tallies.

use std::fmt;

/// Identifier of a registered data-triggered thread.
///
/// Issued by [`crate::runtime::Runtime::register`]; only meaningful for the
/// runtime that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TthreadId(u32);

impl TthreadId {
    /// Creates an id from a raw index. Intended for tests and tooling;
    /// normal code receives ids from `register`.
    pub const fn new(raw: u32) -> Self {
        TthreadId(raw)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TthreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tt#{}", self.0)
    }
}

/// Execution status of a tthread, as recorded in the TST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TthreadStatus {
    /// The last execution's outputs are still valid; a join may skip.
    #[default]
    Clean,
    /// A trigger fired; the computation must run before its next consumption
    /// (deferred executor, or parallel executor with
    /// [`crate::config::OverflowPolicy::DeferToJoin`]).
    Triggered,
    /// Enqueued, waiting for a worker.
    Queued,
    /// Currently executing on some thread.
    Running,
}

impl fmt::Display for TthreadStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TthreadStatus::Clean => "clean",
            TthreadStatus::Triggered => "triggered",
            TthreadStatus::Queued => "queued",
            TthreadStatus::Running => "running",
        };
        f.write_str(s)
    }
}

/// Per-tthread bookkeeping entry: the slow half of the TST, only read or
/// written under the state lock. The live status machine (state, retrigger,
/// completed-since-join, trigger count) lives in the lock-free
/// [`crate::dispatch::SlotTable`].
#[derive(Debug, Clone, Default)]
pub struct TstEntry {
    /// Set when the tthread's body panicked: its outputs are suspect and
    /// joins fail until [`crate::runtime::Runtime::clear_poison`] is called.
    pub poisoned: bool,
    /// Set when the tthread's body overran the configured deadline: its
    /// write log was discarded, so its outputs are stale and joins fail
    /// until [`crate::runtime::Runtime::clear_timeout`] is called.
    pub timed_out: bool,
    /// Total times this tthread has executed.
    pub executions: u64,
    /// Completed-execution epoch: bumped once each time the tthread leaves
    /// `Running` for `Clean` with its outputs published (a retrigger loop
    /// of several body runs advances the epoch once; a poisoned run not at
    /// all). Detached executions bump it at commit, when their effects
    /// become visible.
    pub epoch: u64,
    /// Total joins that skipped because the tthread was clean.
    pub skips: u64,
}

/// The thread status table: one [`TstEntry`] per registered tthread.
#[derive(Debug, Clone, Default)]
pub struct StatusTable {
    entries: Vec<TstEntry>,
}

impl StatusTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry for a newly registered tthread and returns its id.
    pub fn push(&mut self) -> TthreadId {
        let id = TthreadId(u32::try_from(self.entries.len()).expect("too many tthreads"));
        self.entries.push(TstEntry::default());
        id
    }

    /// Number of registered tthreads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no tthreads are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` was issued by this table.
    pub fn contains(&self, id: TthreadId) -> bool {
        id.index() < self.entries.len()
    }

    /// Shared access to an entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown; the runtime validates ids at its public
    /// boundary.
    pub fn entry(&self, id: TthreadId) -> &TstEntry {
        &self.entries[id.index()]
    }

    /// Mutable access to an entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn entry_mut(&mut self, id: TthreadId) -> &mut TstEntry {
        &mut self.entries[id.index()]
    }

    /// Iterates over `(id, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TthreadId, &TstEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (TthreadId(i as u32), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = StatusTable::new();
        assert!(t.is_empty());
        let a = t.push();
        let b = t.push();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert!(a < b);
        assert_eq!(t.len(), 2);
        assert!(t.contains(a));
        assert!(!t.contains(TthreadId::new(2)));
    }

    #[test]
    fn entries_start_clean() {
        let mut t = StatusTable::new();
        let id = t.push();
        assert!(!t.entry(id).poisoned);
        assert!(!t.entry(id).timed_out);
        assert_eq!(t.entry(id).executions, 0);
        assert_eq!(t.entry(id).epoch, 0);
    }

    #[test]
    fn entry_mutation_is_visible() {
        let mut t = StatusTable::new();
        let id = t.push();
        t.entry_mut(id).executions += 1;
        t.entry_mut(id).poisoned = true;
        assert_eq!(t.entry(id).executions, 1);
        assert!(t.entry(id).poisoned);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = StatusTable::new();
        let ids: Vec<_> = (0..5).map(|_| t.push()).collect();
        let seen: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TthreadId::new(9).to_string(), "tt#9");
        assert_eq!(TthreadStatus::Clean.to_string(), "clean");
        assert_eq!(TthreadStatus::Running.to_string(), "running");
    }
}
