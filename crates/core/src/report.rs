//! Human-readable runtime diagnostics.
//!
//! [`crate::runtime::Runtime::report`] produces a structured snapshot of
//! the whole runtime — tthreads with their TST state, watched regions,
//! queue occupancy, arena usage and the counter block — for debugging DTT
//! programs ("why did this tthread not fire?").

use std::fmt;

use crate::addr::AddrRange;
use crate::stats::StatsSnapshot;
use crate::tthread::TthreadStatus;

/// One tthread's row in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct TthreadReportRow {
    /// Registered name.
    pub name: String,
    /// Current TST status.
    pub status: TthreadStatus,
    /// Whether a previous execution panicked.
    pub poisoned: bool,
    /// Whether a previous execution overran the body deadline (its write
    /// log was discarded).
    pub timed_out: bool,
    /// Executions so far.
    pub executions: u64,
    /// Completed-execution epoch (see [`crate::tthread::TstEntry::epoch`]).
    pub epoch: u64,
    /// Skipped joins so far.
    pub skips: u64,
    /// Triggers received so far.
    pub triggers: u64,
    /// Regions this tthread watches.
    pub watches: Vec<AddrRange>,
}

/// A point-in-time snapshot of the runtime's observable state.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Per-tthread rows, in registration order.
    pub tthreads: Vec<TthreadReportRow>,
    /// Entries currently in the pending queue.
    pub queue_len: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Highest queue occupancy ever reached.
    pub queue_high_watermark: usize,
    /// Bytes allocated in the tracked arena.
    pub arena_used: u64,
    /// Arena capacity bound.
    pub arena_capacity: u64,
    /// Worker threads configured.
    pub workers: usize,
    /// Counter snapshot.
    pub stats: StatsSnapshot,
}

impl RuntimeReport {
    /// Names of tthreads currently flagged poisoned (a previous execution
    /// panicked).
    pub fn poisoned(&self) -> Vec<&str> {
        self.tthreads
            .iter()
            .filter(|t| t.poisoned)
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Names of tthreads currently flagged timed out (a previous execution
    /// overran the body deadline).
    pub fn timed_out(&self) -> Vec<&str> {
        self.tthreads
            .iter()
            .filter(|t| t.timed_out)
            .map(|t| t.name.as_str())
            .collect()
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "runtime: {} tthreads, {} workers, queue {}/{} (peak {}), arena {}/{} bytes",
            self.tthreads.len(),
            self.workers,
            self.queue_len,
            self.queue_capacity,
            self.queue_high_watermark,
            self.arena_used,
            self.arena_capacity
        )?;
        for t in &self.tthreads {
            writeln!(
                f,
                "  {:<24} {:<9}{}{} exec {:<8} epoch {:<8} skip {:<8} trig {:<8}",
                t.name,
                t.status,
                if t.poisoned { " POISONED" } else { "" },
                if t.timed_out { " TIMED-OUT" } else { "" },
                t.executions,
                t.epoch,
                t.skips,
                t.triggers
            )?;
            for w in &t.watches {
                writeln!(f, "    watches {w}")?;
            }
        }
        write!(f, "{}", self.stats)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Config, Runtime};

    #[test]
    fn report_reflects_runtime_state() {
        let mut rt = Runtime::new(Config::default(), ());
        let x = rt.alloc(0u64).unwrap();
        let xs = rt.alloc_array::<u32>(4).unwrap();
        let t1 = rt.register("alpha", |_| {});
        let t2 = rt.register("beta", |_| {});
        rt.watch(t1, x.range()).unwrap();
        rt.watch(t2, xs.range()).unwrap();
        rt.watch(t2, x.range()).unwrap();
        rt.write(x, 9);

        let report = rt.report();
        assert_eq!(report.tthreads.len(), 2);
        assert_eq!(report.tthreads[0].name, "alpha");
        assert_eq!(report.tthreads[0].watches.len(), 1);
        assert_eq!(report.tthreads[1].watches.len(), 2);
        assert_eq!(
            report.tthreads[0].status,
            crate::tthread::TthreadStatus::Triggered
        );
        assert_eq!(report.tthreads[0].triggers, 1);
        assert!(report.arena_used >= 8 + 16);
        assert_eq!(report.workers, 0);
        let _ = rt.join(t1);

        let text = rt.report().to_string();
        for needle in ["alpha", "beta", "watches", "tracked stores", "queue 0/"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn report_marks_poisoned_tthreads() {
        let mut rt = Runtime::new(Config::default(), ());
        let bad = rt.register("bad", |_| panic!("boom"));
        rt.mark_dirty(bad).unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.join(bad)));
        let report = rt.report();
        assert!(report.tthreads[0].poisoned);
        assert!(report.to_string().contains("POISONED"));
        assert_eq!(report.poisoned(), vec!["bad"]);
        assert!(report.timed_out().is_empty());
    }
}
