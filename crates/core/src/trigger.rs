//! The trigger table: mapping store addresses to the tthreads they fire.
//!
//! The hardware analogue is an associative structure consulted by every
//! store. We index watched regions by fixed-size address *buckets* so that a
//! store consults only the regions near it, keeping tracked stores O(1) in
//! the common case.

use std::collections::HashMap;

use crate::addr::{AddrRange, Granularity};
use crate::error::{Error, Result};
use crate::tthread::TthreadId;

const BUCKET_SHIFT: u32 = 8; // 256-byte buckets

/// One trigger match produced by a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerHit {
    /// The tthread to fire.
    pub tthread: TthreadId,
    /// Whether the store's *precise* byte range overlapped the watched
    /// region. `false` means this is a false trigger introduced by coarse
    /// granularity.
    pub precise: bool,
}

#[derive(Debug, Clone)]
struct Region {
    range: AddrRange,
    rounded: AddrRange,
    tthread: TthreadId,
    active: bool,
}

/// Watched-region index consulted on every tracked store.
///
/// The table observes stores at a fixed [`Granularity`] chosen at
/// construction: both watched regions and incoming stores are rounded to
/// that granularity before matching, which is exactly how a word- or
/// line-grained hardware trigger mechanism behaves.
#[derive(Debug, Clone)]
pub struct TriggerTable {
    granularity: Granularity,
    regions: Vec<Region>,
    buckets: HashMap<u64, Vec<u32>>,
    active_regions: usize,
}

impl TriggerTable {
    /// Creates an empty table observing stores at `granularity`.
    pub fn new(granularity: Granularity) -> Self {
        TriggerTable {
            granularity,
            regions: Vec::new(),
            buckets: HashMap::new(),
            active_regions: 0,
        }
    }

    /// The observation granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of active watched regions.
    pub fn len(&self) -> usize {
        self.active_regions
    }

    /// Whether no regions are watched.
    pub fn is_empty(&self) -> bool {
        self.active_regions == 0
    }

    /// Watches `range` on behalf of `tthread`.
    ///
    /// Watching an empty range is a no-op that still succeeds (nothing can
    /// ever match it).
    pub fn watch(&mut self, tthread: TthreadId, range: AddrRange) {
        let rounded = range.round_to(self.granularity);
        let idx = self.regions.len() as u32;
        self.regions.push(Region {
            range,
            rounded,
            tthread,
            active: true,
        });
        self.active_regions += 1;
        for b in bucket_span(rounded) {
            self.buckets.entry(b).or_default().push(idx);
        }
    }

    /// Removes the watch `tthread` holds on exactly `range`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchWatch`] if no active watch matches both the
    /// tthread and the precise range.
    pub fn unwatch(&mut self, tthread: TthreadId, range: AddrRange) -> Result<()> {
        for region in self.regions.iter_mut().rev() {
            if region.active && region.tthread == tthread && region.range == range {
                region.active = false;
                self.active_regions -= 1;
                return Ok(());
            }
        }
        Err(Error::NoSuchWatch(tthread))
    }

    /// Returns the tthreads fired by a store to `store_range`, deduplicated
    /// by tthread. A hit is `precise` if any of the tthread's matched
    /// regions precisely overlaps the store.
    pub fn lookup(&self, store_range: AddrRange) -> Vec<TriggerHit> {
        let rounded = store_range.round_to(self.granularity);
        if rounded.is_empty() || self.buckets.is_empty() {
            return Vec::new();
        }
        let mut hits: Vec<TriggerHit> = Vec::new();
        let mut seen_regions: Vec<u32> = Vec::new();
        for b in bucket_span(rounded) {
            let Some(ids) = self.buckets.get(&b) else {
                continue;
            };
            for &idx in ids {
                if seen_regions.contains(&idx) {
                    continue;
                }
                seen_regions.push(idx);
                let region = &self.regions[idx as usize];
                if !region.active || !region.rounded.intersects(&rounded) {
                    continue;
                }
                let precise = region.range.intersects(&store_range);
                match hits.iter_mut().find(|h| h.tthread == region.tthread) {
                    Some(h) => h.precise |= precise,
                    None => hits.push(TriggerHit {
                        tthread: region.tthread,
                        precise,
                    }),
                }
            }
        }
        hits
    }

    /// Iterates over active `(tthread, range)` watches.
    pub fn iter(&self) -> impl Iterator<Item = (TthreadId, AddrRange)> + '_ {
        self.regions
            .iter()
            .filter(|r| r.active)
            .map(|r| (r.tthread, r.range))
    }
}

fn bucket_span(range: AddrRange) -> impl Iterator<Item = u64> {
    let first = range.start().raw() >> BUCKET_SHIFT;
    let last = if range.is_empty() {
        first
    } else {
        (range.end().raw() - 1) >> BUCKET_SHIFT
    };
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn r(start: u64, len: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), len)
    }

    #[test]
    fn store_inside_watch_fires_precisely() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(100, 50));
        let hits = t.lookup(r(120, 4));
        assert_eq!(
            hits,
            vec![TriggerHit {
                tthread: tt,
                precise: true
            }]
        );
    }

    #[test]
    fn store_outside_watch_misses() {
        let mut t = TriggerTable::new(Granularity::Exact);
        t.watch(TthreadId::new(0), r(100, 50));
        assert!(t.lookup(r(150, 4)).is_empty());
        assert!(t.lookup(r(96, 4)).is_empty());
    }

    #[test]
    fn adjacent_store_at_line_granularity_is_false_trigger() {
        let mut t = TriggerTable::new(Granularity::Line);
        let tt = TthreadId::new(3);
        t.watch(tt, r(0, 8));
        // Store to bytes 32..36: same 64-byte line, no precise overlap.
        let hits = t.lookup(r(32, 4));
        assert_eq!(
            hits,
            vec![TriggerHit {
                tthread: tt,
                precise: false
            }]
        );
        // Store in the next line: no hit at all.
        assert!(t.lookup(r(64, 4)).is_empty());
    }

    #[test]
    fn multiple_regions_same_tthread_dedup() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(1);
        t.watch(tt, r(0, 16));
        t.watch(tt, r(8, 16));
        let hits = t.lookup(r(8, 8));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].precise);
    }

    #[test]
    fn multiple_tthreads_all_fire() {
        let mut t = TriggerTable::new(Granularity::Exact);
        t.watch(TthreadId::new(0), r(0, 16));
        t.watch(TthreadId::new(1), r(8, 16));
        let mut hits = t.lookup(r(8, 4));
        hits.sort_by_key(|h| h.tthread);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn unwatch_removes_only_exact_watch() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(0, 16));
        t.watch(tt, r(32, 16));
        assert_eq!(t.len(), 2);
        t.unwatch(tt, r(0, 16)).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.lookup(r(4, 4)).is_empty());
        assert_eq!(t.lookup(r(36, 4)).len(), 1);
        assert!(matches!(
            t.unwatch(tt, r(0, 16)),
            Err(Error::NoSuchWatch(_))
        ));
    }

    #[test]
    fn large_region_spanning_buckets() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(0, 10_000));
        assert_eq!(t.lookup(r(9_999, 1)).len(), 1);
        assert_eq!(t.lookup(r(512, 8)).len(), 1);
        assert!(t.lookup(r(10_000, 1)).is_empty());
    }

    #[test]
    fn store_spanning_region_boundary_hits() {
        let mut t = TriggerTable::new(Granularity::Exact);
        t.watch(TthreadId::new(0), r(100, 8));
        // Store 96..104 straddles the start of the region.
        assert_eq!(t.lookup(r(96, 8)).len(), 1);
    }

    #[test]
    fn empty_watch_never_fires() {
        let mut t = TriggerTable::new(Granularity::Line);
        t.watch(TthreadId::new(0), r(100, 0));
        assert!(t.lookup(r(100, 4)).is_empty());
    }

    #[test]
    fn empty_store_never_fires() {
        let mut t = TriggerTable::new(Granularity::Line);
        t.watch(TthreadId::new(0), r(100, 8));
        assert!(t.lookup(r(100, 0)).is_empty());
    }

    #[test]
    fn word_granularity_rounding() {
        let mut t = TriggerTable::new(Granularity::Word);
        let tt = TthreadId::new(0);
        t.watch(tt, r(8, 4)); // watches word [8,16)
        let hits = t.lookup(r(13, 1)); // same word, outside precise range
        assert_eq!(
            hits,
            vec![TriggerHit {
                tthread: tt,
                precise: false
            }]
        );
        assert!(t.lookup(r(16, 1)).is_empty());
    }

    #[test]
    fn iter_lists_active_watches() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(0, 4));
        t.watch(tt, r(8, 4));
        t.unwatch(tt, r(0, 4)).unwrap();
        let watches: Vec<_> = t.iter().collect();
        assert_eq!(watches, vec![(tt, r(8, 4))]);
    }
}
