//! The trigger table: mapping store addresses to the tthreads they fire.
//!
//! The hardware analogue is an associative structure consulted by every
//! store. We index watched regions by fixed-size address *buckets* so that a
//! store consults only the regions near it, keeping tracked stores O(1) in
//! the common case.
//!
//! The table is *read-mostly*: [`TriggerTable::lookup_with`] runs on every
//! tracked store (under a read lock in the runtime) and is allocation-free —
//! callers supply a reusable [`LookupScratch`] whose generation-stamped
//! seen-marks replace the per-store dedup set. Mutation
//! ([`TriggerTable::watch`]/[`TriggerTable::unwatch`]) recycles region slots
//! through a free list and prunes bucket entries eagerly, so
//! watch/unwatch-churning workloads stay bounded in both memory and lookup
//! cost.

use std::collections::HashMap;

use crate::addr::{AddrRange, Granularity};
use crate::error::{Error, Result};
use crate::tthread::TthreadId;

const BUCKET_SHIFT: u32 = 8; // 256-byte buckets

/// One trigger match produced by a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerHit {
    /// The tthread to fire.
    pub tthread: TthreadId,
    /// Whether the store's *precise* byte range overlapped the watched
    /// region. `false` means this is a false trigger introduced by coarse
    /// granularity.
    pub precise: bool,
}

#[derive(Debug, Clone)]
struct Region {
    range: AddrRange,
    rounded: AddrRange,
    tthread: TthreadId,
    active: bool,
}

/// Reusable per-caller lookup state, making the per-store trigger lookup
/// allocation-free after warmup.
///
/// A store spanning several buckets can see the same region index more than
/// once; instead of collecting seen indices into a set (allocating, and
/// quadratic in the span), each lookup stamps `marks[region]` with the
/// current `generation` and skips already-stamped regions. Bumping the
/// generation invalidates every mark in O(1).
///
/// # Examples
///
/// ```
/// use dtt_core::addr::{Addr, AddrRange, Granularity};
/// use dtt_core::trigger::{LookupScratch, TriggerTable};
/// use dtt_core::tthread::TthreadId;
///
/// let mut table = TriggerTable::new(Granularity::Exact);
/// table.watch(TthreadId::new(0), AddrRange::new(Addr::new(0), 1024));
/// let mut scratch = LookupScratch::new();
/// table.lookup_with(AddrRange::new(Addr::new(100), 8), &mut scratch);
/// assert_eq!(scratch.hits().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LookupScratch {
    /// `marks[i] == generation` ⇔ region `i` was already visited by the
    /// current lookup.
    marks: Vec<u32>,
    /// Stamp of the lookup in progress; `0` is never a valid stamp.
    generation: u32,
    /// Matches produced by the most recent lookup.
    pub(crate) hits: Vec<TriggerHit>,
}

impl LookupScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The matches produced by the most recent
    /// [`TriggerTable::lookup_with`] call.
    pub fn hits(&self) -> &[TriggerHit] {
        &self.hits
    }
}

/// Watched-region index consulted on every tracked store.
///
/// The table observes stores at a fixed [`Granularity`] chosen at
/// construction: both watched regions and incoming stores are rounded to
/// that granularity before matching, which is exactly how a word- or
/// line-grained hardware trigger mechanism behaves.
#[derive(Debug, Clone)]
pub struct TriggerTable {
    granularity: Granularity,
    regions: Vec<Region>,
    buckets: HashMap<u64, Vec<u32>>,
    /// Region slots freed by `unwatch`, reused by the next `watch`.
    free: Vec<u32>,
    active_regions: usize,
}

impl TriggerTable {
    /// Creates an empty table observing stores at `granularity`.
    pub fn new(granularity: Granularity) -> Self {
        TriggerTable {
            granularity,
            regions: Vec::new(),
            buckets: HashMap::new(),
            free: Vec::new(),
            active_regions: 0,
        }
    }

    /// The observation granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of active watched regions.
    pub fn len(&self) -> usize {
        self.active_regions
    }

    /// Whether no regions are watched.
    pub fn is_empty(&self) -> bool {
        self.active_regions == 0
    }

    /// Number of region slots allocated (active plus free-listed). Bounded
    /// by the peak number of *simultaneously* active watches, not by the
    /// total watch/unwatch churn — a diagnostic for leak regressions.
    pub fn region_slots(&self) -> usize {
        self.regions.len()
    }

    /// Total bucket-vector entries currently indexed — like
    /// [`TriggerTable::region_slots`], a churn-leak diagnostic.
    pub fn bucket_entries(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Watches `range` on behalf of `tthread`.
    ///
    /// Watching an empty range is a no-op that still succeeds (nothing can
    /// ever match it).
    pub fn watch(&mut self, tthread: TthreadId, range: AddrRange) {
        let rounded = range.round_to(self.granularity);
        let region = Region {
            range,
            rounded,
            tthread,
            active: true,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.regions[idx as usize] = region;
                idx
            }
            None => {
                let idx = self.regions.len() as u32;
                self.regions.push(region);
                idx
            }
        };
        self.active_regions += 1;
        for b in bucket_span(rounded) {
            self.buckets.entry(b).or_default().push(idx);
        }
    }

    /// Removes the watch `tthread` holds on exactly `range`, recycling its
    /// region slot and pruning its bucket entries.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchWatch`] if no active watch matches both the
    /// tthread and the precise range.
    pub fn unwatch(&mut self, tthread: TthreadId, range: AddrRange) -> Result<()> {
        let found = self
            .regions
            .iter()
            .enumerate()
            .rev()
            .find(|(_, r)| r.active && r.tthread == tthread && r.range == range)
            .map(|(i, r)| (i as u32, r.rounded));
        let Some((idx, rounded)) = found else {
            return Err(Error::NoSuchWatch(tthread));
        };
        self.regions[idx as usize].active = false;
        self.active_regions -= 1;
        for b in bucket_span(rounded) {
            if let Some(ids) = self.buckets.get_mut(&b) {
                ids.retain(|&i| i != idx);
                if ids.is_empty() {
                    self.buckets.remove(&b);
                }
            }
        }
        self.free.push(idx);
        Ok(())
    }

    /// Returns the tthreads fired by a store to `store_range`, deduplicated
    /// by tthread. A hit is `precise` if any of the tthread's matched
    /// regions precisely overlaps the store.
    ///
    /// Convenience wrapper that allocates; the per-store path uses
    /// [`TriggerTable::lookup_with`] with reused scratch instead.
    pub fn lookup(&self, store_range: AddrRange) -> Vec<TriggerHit> {
        let mut scratch = LookupScratch::new();
        self.lookup_with(store_range, &mut scratch);
        scratch.hits
    }

    /// Allocation-free lookup: leaves the matches in `scratch.hits()`
    /// (cleared first). Semantically identical to [`TriggerTable::lookup`].
    pub fn lookup_with(&self, store_range: AddrRange, scratch: &mut LookupScratch) {
        scratch.hits.clear();
        let rounded = store_range.round_to(self.granularity);
        if rounded.is_empty() || self.buckets.is_empty() {
            return;
        }
        if scratch.marks.len() < self.regions.len() {
            scratch.marks.resize(self.regions.len(), 0);
        }
        scratch.generation = scratch.generation.wrapping_add(1);
        if scratch.generation == 0 {
            // Stamp wraparound: clear the marks so stale stamps from 2^32
            // lookups ago cannot alias.
            scratch.marks.fill(0);
            scratch.generation = 1;
        }
        let generation = scratch.generation;
        for b in bucket_span(rounded) {
            let Some(ids) = self.buckets.get(&b) else {
                continue;
            };
            for &idx in ids {
                let mark = &mut scratch.marks[idx as usize];
                if *mark == generation {
                    continue;
                }
                *mark = generation;
                let region = &self.regions[idx as usize];
                if !region.active || !region.rounded.intersects(&rounded) {
                    continue;
                }
                let precise = region.range.intersects(&store_range);
                match scratch
                    .hits
                    .iter_mut()
                    .find(|h| h.tthread == region.tthread)
                {
                    Some(h) => h.precise |= precise,
                    None => scratch.hits.push(TriggerHit {
                        tthread: region.tthread,
                        precise,
                    }),
                }
            }
        }
    }

    /// Iterates over active `(tthread, range)` watches.
    pub fn iter(&self) -> impl Iterator<Item = (TthreadId, AddrRange)> + '_ {
        self.regions
            .iter()
            .filter(|r| r.active)
            .map(|r| (r.tthread, r.range))
    }
}

fn bucket_span(range: AddrRange) -> impl Iterator<Item = u64> {
    let first = range.start().raw() >> BUCKET_SHIFT;
    let last = if range.is_empty() {
        first
    } else {
        (range.end().raw() - 1) >> BUCKET_SHIFT
    };
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn r(start: u64, len: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), len)
    }

    #[test]
    fn store_inside_watch_fires_precisely() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(100, 50));
        let hits = t.lookup(r(120, 4));
        assert_eq!(
            hits,
            vec![TriggerHit {
                tthread: tt,
                precise: true
            }]
        );
    }

    #[test]
    fn store_outside_watch_misses() {
        let mut t = TriggerTable::new(Granularity::Exact);
        t.watch(TthreadId::new(0), r(100, 50));
        assert!(t.lookup(r(150, 4)).is_empty());
        assert!(t.lookup(r(96, 4)).is_empty());
    }

    #[test]
    fn adjacent_store_at_line_granularity_is_false_trigger() {
        let mut t = TriggerTable::new(Granularity::Line);
        let tt = TthreadId::new(3);
        t.watch(tt, r(0, 8));
        // Store to bytes 32..36: same 64-byte line, no precise overlap.
        let hits = t.lookup(r(32, 4));
        assert_eq!(
            hits,
            vec![TriggerHit {
                tthread: tt,
                precise: false
            }]
        );
        // Store in the next line: no hit at all.
        assert!(t.lookup(r(64, 4)).is_empty());
    }

    #[test]
    fn multiple_regions_same_tthread_dedup() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(1);
        t.watch(tt, r(0, 16));
        t.watch(tt, r(8, 16));
        let hits = t.lookup(r(8, 8));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].precise);
    }

    #[test]
    fn multiple_tthreads_all_fire() {
        let mut t = TriggerTable::new(Granularity::Exact);
        t.watch(TthreadId::new(0), r(0, 16));
        t.watch(TthreadId::new(1), r(8, 16));
        let mut hits = t.lookup(r(8, 4));
        hits.sort_by_key(|h| h.tthread);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn unwatch_removes_only_exact_watch() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(0, 16));
        t.watch(tt, r(32, 16));
        assert_eq!(t.len(), 2);
        t.unwatch(tt, r(0, 16)).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.lookup(r(4, 4)).is_empty());
        assert_eq!(t.lookup(r(36, 4)).len(), 1);
        assert!(matches!(
            t.unwatch(tt, r(0, 16)),
            Err(Error::NoSuchWatch(_))
        ));
    }

    #[test]
    fn large_region_spanning_buckets() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(0, 10_000));
        assert_eq!(t.lookup(r(9_999, 1)).len(), 1);
        assert_eq!(t.lookup(r(512, 8)).len(), 1);
        assert!(t.lookup(r(10_000, 1)).is_empty());
    }

    #[test]
    fn store_spanning_region_boundary_hits() {
        let mut t = TriggerTable::new(Granularity::Exact);
        t.watch(TthreadId::new(0), r(100, 8));
        // Store 96..104 straddles the start of the region.
        assert_eq!(t.lookup(r(96, 8)).len(), 1);
    }

    #[test]
    fn empty_watch_never_fires() {
        let mut t = TriggerTable::new(Granularity::Line);
        t.watch(TthreadId::new(0), r(100, 0));
        assert!(t.lookup(r(100, 4)).is_empty());
    }

    #[test]
    fn empty_store_never_fires() {
        let mut t = TriggerTable::new(Granularity::Line);
        t.watch(TthreadId::new(0), r(100, 8));
        assert!(t.lookup(r(100, 0)).is_empty());
    }

    #[test]
    fn word_granularity_rounding() {
        let mut t = TriggerTable::new(Granularity::Word);
        let tt = TthreadId::new(0);
        t.watch(tt, r(8, 4)); // watches word [8,16)
        let hits = t.lookup(r(13, 1)); // same word, outside precise range
        assert_eq!(
            hits,
            vec![TriggerHit {
                tthread: tt,
                precise: false
            }]
        );
        assert!(t.lookup(r(16, 1)).is_empty());
    }

    #[test]
    fn iter_lists_active_watches() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(0, 4));
        t.watch(tt, r(8, 4));
        t.unwatch(tt, r(0, 4)).unwrap();
        let watches: Vec<_> = t.iter().collect();
        assert_eq!(watches, vec![(tt, r(8, 4))]);
    }

    #[test]
    fn churn_keeps_regions_and_buckets_bounded() {
        // Regression for the unwatch leak: watch/unwatch cycles used to grow
        // `regions` and the bucket vectors without bound.
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        for i in 0..10_000u64 {
            // Two overlapping multi-bucket regions alive at a time, walking
            // through the address space.
            let base = (i % 64) * 128;
            t.watch(tt, r(base, 600));
            t.watch(tt, r(base + 64, 600));
            t.unwatch(tt, r(base, 600)).unwrap();
            t.unwatch(tt, r(base + 64, 600)).unwrap();
        }
        assert_eq!(t.len(), 0);
        // Peak concurrency was 2, so at most 2 slots exist and no bucket
        // entries survive.
        assert!(t.region_slots() <= 2, "slots leaked: {}", t.region_slots());
        assert_eq!(t.bucket_entries(), 0);
        // Lookups over the churned space see nothing.
        assert!(t.lookup(r(0, 8192)).is_empty());
        // The table still works after churn.
        t.watch(tt, r(40, 8));
        assert_eq!(t.lookup(r(40, 4)).len(), 1);
    }

    #[test]
    fn reused_slot_does_not_resurrect_old_buckets() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let a = TthreadId::new(0);
        let b = TthreadId::new(1);
        // Region spanning buckets 0..=3.
        t.watch(a, r(0, 1024));
        t.unwatch(a, r(0, 1024)).unwrap();
        // Reuses the freed slot, but only for bucket 8.
        t.watch(b, r(2048, 16));
        assert!(t.lookup(r(512, 8)).is_empty());
        assert_eq!(
            t.lookup(r(2048, 8)),
            vec![TriggerHit {
                tthread: b,
                precise: true
            }]
        );
        assert_eq!(t.region_slots(), 1);
    }

    #[test]
    fn lookup_with_matches_lookup_across_reuse() {
        let mut t = TriggerTable::new(Granularity::Line);
        for i in 0..32u32 {
            t.watch(TthreadId::new(i % 8), r((i as u64) * 96, 80));
        }
        let mut scratch = LookupScratch::new();
        for start in (0..4096u64).step_by(40) {
            for len in [1u64, 8, 100, 700] {
                let store = r(start, len);
                t.lookup_with(store, &mut scratch);
                let mut fresh = t.lookup(store);
                let mut reused = scratch.hits().to_vec();
                fresh.sort_by_key(|h| h.tthread);
                reused.sort_by_key(|h| h.tthread);
                assert_eq!(fresh, reused, "mismatch at store {store}");
            }
        }
    }

    #[test]
    fn scratch_generation_wraparound_stays_correct() {
        let mut t = TriggerTable::new(Granularity::Exact);
        let tt = TthreadId::new(0);
        t.watch(tt, r(0, 512)); // spans buckets 0 and 1
        let mut scratch = LookupScratch::new();
        // Force the stamp to the wraparound boundary.
        scratch.generation = u32::MAX - 1;
        scratch.marks = vec![u32::MAX - 1; 1];
        for _ in 0..4 {
            t.lookup_with(r(200, 112), &mut scratch);
            assert_eq!(scratch.hits().len(), 1, "lost hit near wraparound");
        }
    }
}
