//! Runtime configuration.

use std::time::Duration;

use crate::addr::Granularity;
use crate::fault::FaultPlan;

/// What the runtime does when a trigger fires while the thread queue is full.
///
/// The HPCA'11 design lets the *triggering* (main) thread execute the tthread
/// itself when no queue slot is free, so correctness never depends on queue
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Execute the tthread immediately on the triggering thread (paper behaviour).
    #[default]
    ExecuteInline,
    /// Leave the tthread marked triggered; it runs at the next `join`.
    DeferToJoin,
    /// Apply backpressure: the triggering thread drains the oldest pending
    /// tthreads inline (up to [`Config::backpressure_assist_budget`] per
    /// overflow) to free a slot. If the queue is still full afterwards the
    /// trigger is *shed* — left marked triggered for the next `join` — and
    /// counted in `overflow_sheds`.
    Backpressure,
}

/// Configuration for a [`crate::runtime::Runtime`].
///
/// Construct with [`Config::default`] and adjust with the builder-style
/// setters:
///
/// ```
/// use dtt_core::config::Config;
/// use dtt_core::addr::Granularity;
///
/// let cfg = Config::default()
///     .with_granularity(Granularity::Word)
///     .with_workers(2)
///     .with_queue_capacity(16);
/// assert_eq!(cfg.workers, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Granularity at which stores are matched against trigger regions.
    ///
    /// Coarser granularities cause false triggers (see R-Fig.9).
    pub granularity: Granularity,
    /// Compare old/new bytes on every tracked store and suppress triggers for
    /// *silent stores* (stores that do not change the value). Disabling this
    /// makes every store to a watched region fire, as a system without
    /// value-comparing stores would.
    pub suppress_silent_stores: bool,
    /// Coalesce triggers: a tthread already pending is not enqueued again.
    /// Disabling this floods the queue under bursty triggers (R-Fig.10).
    pub coalesce: bool,
    /// Capacity of the pending-tthread queue.
    pub queue_capacity: usize,
    /// Number of worker threads executing tthreads in parallel with the main
    /// thread. `0` selects the *deferred* executor: triggered tthreads run on
    /// the main thread at their `join` point, which is fully deterministic
    /// and captures pure redundancy elimination.
    pub workers: usize,
    /// Behaviour on queue overflow (parallel executor only).
    pub overflow: OverflowPolicy,
    /// Run worker tthread bodies *detached*: snapshot tracked memory under
    /// the state lock, execute the body lock-free against the snapshot, and
    /// commit its stores (firing triggers) under the lock afterwards. This
    /// is what makes worker executions overlap the main thread. Disabling
    /// it restores the legacy attached executor, which holds the state lock
    /// across the whole body — fully serialized, useful as an ablation
    /// baseline. Ignored by the deferred executor (`workers == 0`).
    pub detached_execution: bool,
    /// Maximum depth of tthreads triggering tthreads before
    /// [`crate::error::Error::CascadeDepthExceeded`] aborts the cascade.
    pub max_cascade_depth: u32,
    /// Maximum bytes the tracked arena may grow to.
    pub arena_capacity: u64,
    /// Number of lock stripes sharding the tracked-memory hot path (value
    /// compare + access counters). Always a power of two; `1` serializes
    /// every tracked access on one lock, reproducing the pre-sharding
    /// behaviour as an ablation baseline.
    ///
    /// The default derives from [`std::thread::available_parallelism`]
    /// (oversubscribed 4× so disjoint working sets rarely collide, clamped
    /// to `[1, 256]`) and can be overridden with the `DTT_MEM_SHARDS`
    /// environment variable.
    pub mem_shards: usize,
    /// Record lifecycle events (stores, triggers, bodies, commits, joins)
    /// into the per-shard observability rings (see [`crate::obs`]). Off by
    /// default; when off every instrumentation hook costs one relaxed
    /// atomic load and the rings are never allocated. Can also be flipped
    /// at runtime with [`crate::runtime::Runtime::set_observing`].
    pub observability: bool,
    /// Capacity (events) of each observability ring. Rounded up to a power
    /// of two; the oldest events are overwritten (and counted as dropped)
    /// when a ring overflows between drains.
    pub obs_ring_capacity: usize,
    /// Deterministic fault schedule (see [`crate::fault`]). `None` (the
    /// default) leaves every injection probe as a single relaxed atomic
    /// load that never fires.
    pub fault_plan: Option<FaultPlan>,
    /// Deadline for a single tthread body execution (detached worker
    /// executor only), measured on the **monotonic** clock
    /// (`std::time::Instant`) so a wall-clock jump can neither spuriously
    /// time a body out nor immortalize it — see `dtt_core::deadline` for
    /// the (injectable) overrun math. A body that overruns has its write
    /// log discarded at commit, the tthread is flagged timed-out, and its
    /// next `join` returns [`crate::error::Error::TthreadTimedOut`].
    /// `None` (the default) disables the deadline.
    pub body_deadline: Option<Duration>,
    /// Maximum times a worker re-runs a tthread's body because a trigger
    /// landed during the previous run (the commit→retrigger loop). When
    /// the cap is hit the tthread is deferred to its next `join` instead,
    /// so adversarial stores cannot livelock a worker. Counted in
    /// `commit_retries` / `commit_retry_exhausted`.
    pub commit_retry_cap: u32,
    /// Base delay for bounded exponential backoff between commit retries
    /// (detached worker executor only). `None` (the default) re-runs the
    /// body immediately, the historical behaviour; `Some(base)` sleeps
    /// `base << min(retry-1, 6)` plus SplitMix64 jitter (up to half the
    /// step, drawn from the fault layer's stream so seeded runs stay
    /// deterministic) before each go-around, off every lock. Under a
    /// trigger storm this stops a worker from burning its whole retry
    /// budget in microseconds and gives the storm time to subside.
    /// Counted in `commit_backoff_waits`.
    pub commit_backoff: Option<Duration>,
    /// How many pending tthreads the triggering thread will drain inline
    /// per overflow under [`OverflowPolicy::Backpressure`] before shedding.
    pub backpressure_assist_budget: u32,
    /// Run trigger dispatch lock-free: status transitions go through the
    /// per-tthread atomic status word, enqueues land in the sharded pending
    /// queue, and workers park on an eventcount — the state lock is only
    /// taken for slow paths (overflow fallback, commit, join bookkeeping,
    /// report/shutdown). Disabling this restores the fully locked dispatch
    /// baseline (single mutex-guarded queue, `Condvar` broadcast wakes) as
    /// an ablation, like `detached_execution=false` and `mem_shards=1`.
    ///
    /// The default is `true` and can be overridden with the
    /// `DTT_LOCKFREE_DISPATCH` environment variable (`0`/`false` disable).
    pub lockfree_dispatch: bool,
    /// Work stealing (lock-free dispatch only): an idle worker whose own
    /// pending-queue shards are empty migrates a batch from the fullest
    /// foreign shard before parking, keeping every worker busy whenever
    /// any pending trigger exists. Disabling it restores park-on-empty
    /// affinity scheduling as an ablation — an imbalanced trigger
    /// distribution then serializes on the shard's owning worker.
    pub work_stealing: bool,
    /// Detect changes in bulk stores with the vectorized 64-byte-line lane
    /// loop (eight xor'd words per step, branch-free over silent lines)
    /// instead of word-at-a-time comparison. Semantics are identical (the
    /// equivalence proptest pins changed counts and run vectors); disabling
    /// it restores the scalar path as an ablation.
    ///
    /// The default is `true` and can be overridden with the `DTT_SIMD`
    /// environment variable (`0`/`false` disable).
    pub simd_store: bool,
    /// Early cutoff for trigger waves: when a cascade-driven recomputation
    /// commits fully silently (zero non-silent watched lines), the wave
    /// stops there instead of invalidating downstream tthreads — the
    /// paper's redundancy elimination applied transitively across graph
    /// stages. Disabling it propagates invalidation on every committed
    /// *write* regardless of silence (the classic invalidate-on-write
    /// dataflow baseline), so the whole downstream chain recomputes on
    /// every upstream edit.
    ///
    /// The default is `true` and can be overridden with the
    /// `DTT_EARLY_CUTOFF` environment variable (`0`/`false` disable).
    pub early_cutoff: bool,
    /// How long an idle worker (or a lock-free joiner) sleeps on its
    /// eventcount before re-checking for work — the missed-wake rescue
    /// backstop. Shorter timeouts bound the worst-case latency of a
    /// dropped wake at the cost of more idle wakeups.
    ///
    /// The default is 50 ms and can be overridden with the
    /// `DTT_PARK_TIMEOUT` environment variable (milliseconds, positive
    /// integer).
    pub park_timeout: Duration,
}

/// Parses a boolean-ish env override: `1`/`true`/`on`/`yes` and
/// `0`/`false`/`off`/`no` (trimmed, ASCII case-insensitive). Anything else
/// is `None` — the caller warns and falls back to its default.
fn parse_env_bool(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Parses a positive-integer env override; `None` for anything else.
fn parse_env_shards(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Reads a boolean env override through `parse_env_bool`, warning once per
/// process (per variable) when the value is set but malformed instead of
/// silently falling back.
fn env_bool(var: &str, warn_once: &'static std::sync::Once, default: bool) -> bool {
    match std::env::var(var) {
        Ok(v) => parse_env_bool(&v).unwrap_or_else(|| {
            warn_once.call_once(|| {
                eprintln!(
                    "dtt: ignoring malformed {var}={v:?} (expected 1/true/on/yes \
                     or 0/false/off/no); using default {default}"
                );
            });
            default
        }),
        Err(_) => default,
    }
}

fn default_lockfree_dispatch() -> bool {
    static WARN: std::sync::Once = std::sync::Once::new();
    env_bool("DTT_LOCKFREE_DISPATCH", &WARN, true)
}

fn default_simd_store() -> bool {
    static WARN: std::sync::Once = std::sync::Once::new();
    env_bool("DTT_SIMD", &WARN, true)
}

fn default_early_cutoff() -> bool {
    static WARN: std::sync::Once = std::sync::Once::new();
    env_bool("DTT_EARLY_CUTOFF", &WARN, true)
}

fn default_park_timeout() -> Duration {
    static WARN: std::sync::Once = std::sync::Once::new();
    let default = crate::dispatch::PARK_TIMEOUT;
    match std::env::var("DTT_PARK_TIMEOUT") {
        Ok(v) => match parse_env_shards(&v) {
            Some(ms) => Duration::from_millis(ms as u64),
            None => {
                WARN.call_once(|| {
                    eprintln!(
                        "dtt: ignoring malformed DTT_PARK_TIMEOUT={v:?} (expected a \
                         positive integer of milliseconds); using default {default:?}"
                    );
                });
                default
            }
        },
        Err(_) => default,
    }
}

fn default_mem_shards() -> usize {
    static WARN: std::sync::Once = std::sync::Once::new();
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get() * 4)
            .unwrap_or(16)
    };
    let requested = match std::env::var("DTT_MEM_SHARDS") {
        Ok(v) => parse_env_shards(&v).unwrap_or_else(|| {
            WARN.call_once(|| {
                eprintln!(
                    "dtt: ignoring malformed DTT_MEM_SHARDS={v:?} (expected a \
                     positive integer); deriving the shard count from the host"
                );
            });
            fallback()
        }),
        Err(_) => fallback(),
    };
    requested.clamp(1, 256).next_power_of_two()
}

impl Default for Config {
    fn default() -> Self {
        Config {
            granularity: Granularity::Exact,
            suppress_silent_stores: true,
            coalesce: true,
            queue_capacity: 64,
            workers: 0,
            overflow: OverflowPolicy::default(),
            detached_execution: true,
            max_cascade_depth: 64,
            arena_capacity: 1 << 32,
            mem_shards: default_mem_shards(),
            observability: false,
            obs_ring_capacity: 1024,
            fault_plan: None,
            body_deadline: None,
            commit_retry_cap: 8,
            commit_backoff: None,
            backpressure_assist_budget: 4,
            lockfree_dispatch: default_lockfree_dispatch(),
            work_stealing: true,
            simd_store: default_simd_store(),
            early_cutoff: default_early_cutoff(),
            park_timeout: default_park_timeout(),
        }
    }
}

impl Config {
    /// Sets the trigger-matching granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Enables or disables silent-store suppression.
    pub fn with_silent_store_suppression(mut self, on: bool) -> Self {
        self.suppress_silent_stores = on;
        self
    }

    /// Enables or disables trigger coalescing.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Sets the pending-tthread queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the number of parallel worker threads (0 = deferred executor).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue-overflow policy.
    pub fn with_overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Enables or disables detached (snapshot/commit) worker execution.
    pub fn with_detached_execution(mut self, on: bool) -> Self {
        self.detached_execution = on;
        self
    }

    /// Sets the maximum trigger-cascade depth.
    pub fn with_max_cascade_depth(mut self, depth: u32) -> Self {
        self.max_cascade_depth = depth;
        self
    }

    /// Sets the tracked-arena capacity in bytes.
    pub fn with_arena_capacity(mut self, bytes: u64) -> Self {
        self.arena_capacity = bytes;
        self
    }

    /// Sets the tracked-memory shard count (rounded up to a power of two;
    /// `0` is treated as `1`). `1` reproduces the fully serialized
    /// single-lock hot path for ablations.
    pub fn with_mem_shards(mut self, shards: usize) -> Self {
        self.mem_shards = shards.max(1).next_power_of_two();
        self
    }

    /// Enables or disables lifecycle event recording from the start.
    pub fn with_observability(mut self, on: bool) -> Self {
        self.observability = on;
        self
    }

    /// Sets the per-ring observability event capacity (rounded up to a
    /// power of two; `0` is treated as `2`).
    pub fn with_obs_ring_capacity(mut self, capacity: usize) -> Self {
        self.obs_ring_capacity = capacity.max(2).next_power_of_two();
        self
    }

    /// Installs a deterministic fault schedule (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the per-body monotonic deadline (detached executor only).
    pub fn with_body_deadline(mut self, deadline: Duration) -> Self {
        self.body_deadline = Some(deadline);
        self
    }

    /// Sets the commit→retrigger retry cap (`0` defers on the first
    /// post-commit retrigger).
    pub fn with_commit_retry_cap(mut self, cap: u32) -> Self {
        self.commit_retry_cap = cap;
        self
    }

    /// Sets the base delay for bounded exponential backoff between commit
    /// retries (detached executor only; `None` by default — immediate
    /// re-execution).
    pub fn with_commit_backoff(mut self, base: Duration) -> Self {
        self.commit_backoff = Some(base);
        self
    }

    /// Sets the inline-drain budget for [`OverflowPolicy::Backpressure`].
    pub fn with_backpressure_assist_budget(mut self, budget: u32) -> Self {
        self.backpressure_assist_budget = budget;
        self
    }

    /// Enables or disables lock-free trigger dispatch (`false` restores the
    /// fully locked dispatch baseline for ablations).
    pub fn with_lockfree_dispatch(mut self, on: bool) -> Self {
        self.lockfree_dispatch = on;
        self
    }

    /// Enables or disables work stealing between pending-queue shards
    /// (`false` restores park-on-empty affinity scheduling for ablations).
    pub fn with_work_stealing(mut self, on: bool) -> Self {
        self.work_stealing = on;
        self
    }

    /// Enables or disables the vectorized bulk-store change detection
    /// (`false` restores the word-at-a-time scalar path for ablations).
    pub fn with_simd_store(mut self, on: bool) -> Self {
        self.simd_store = on;
        self
    }

    /// Enables or disables early cutoff of trigger waves (`false` restores
    /// invalidate-on-write propagation for ablations).
    pub fn with_early_cutoff(mut self, on: bool) -> Self {
        self.early_cutoff = on;
        self
    }

    /// Sets the idle park timeout for workers and lock-free joiners.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero (a zero timeout turns parking into a
    /// spin loop).
    pub fn with_park_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "park timeout must be nonzero");
        self.park_timeout = timeout;
        self
    }

    /// Whether this configuration selects the deferred (single-threaded)
    /// executor.
    pub fn is_deferred(&self) -> bool {
        self.workers == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_deferred_and_precise() {
        let cfg = Config::default();
        assert!(cfg.is_deferred());
        assert_eq!(cfg.granularity, Granularity::Exact);
        assert!(cfg.suppress_silent_stores);
        assert!(cfg.coalesce);
        assert!(cfg.mem_shards >= 1);
        assert!(cfg.mem_shards.is_power_of_two());
        assert!(cfg.mem_shards <= 256);
        assert!(!cfg.observability);
        assert_eq!(cfg.obs_ring_capacity, 1024);
        assert_eq!(cfg.fault_plan, None);
        assert_eq!(cfg.body_deadline, None);
        assert_eq!(cfg.commit_retry_cap, 8);
        assert_eq!(cfg.commit_backoff, None);
        assert_eq!(cfg.backpressure_assist_budget, 4);
        assert!(cfg.work_stealing);
        assert!(!cfg.park_timeout.is_zero());
        // Honors DTT_LOCKFREE_DISPATCH and DTT_EARLY_CUTOFF, defaulting on;
        // the test environment may set either, so just check the builder
        // wiring below.
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = Config::default()
            .with_granularity(Granularity::Line)
            .with_silent_store_suppression(false)
            .with_coalescing(false)
            .with_queue_capacity(3)
            .with_workers(4)
            .with_overflow(OverflowPolicy::DeferToJoin)
            .with_max_cascade_depth(7)
            .with_arena_capacity(1024)
            .with_mem_shards(5)
            .with_observability(true)
            .with_obs_ring_capacity(100)
            .with_fault_plan(crate::fault::FaultPlan::new(11))
            .with_body_deadline(Duration::from_millis(250))
            .with_commit_retry_cap(3)
            .with_commit_backoff(Duration::from_micros(50))
            .with_backpressure_assist_budget(2)
            .with_lockfree_dispatch(false)
            .with_work_stealing(false)
            .with_simd_store(false)
            .with_early_cutoff(false)
            .with_park_timeout(Duration::from_millis(20));
        assert_eq!(cfg.granularity, Granularity::Line);
        assert!(!cfg.suppress_silent_stores);
        assert!(!cfg.coalesce);
        assert_eq!(cfg.queue_capacity, 3);
        assert_eq!(cfg.workers, 4);
        assert!(!cfg.is_deferred());
        assert_eq!(cfg.overflow, OverflowPolicy::DeferToJoin);
        assert_eq!(cfg.max_cascade_depth, 7);
        assert_eq!(cfg.arena_capacity, 1024);
        // Shard counts normalize to the next power of two.
        assert_eq!(cfg.mem_shards, 8);
        assert_eq!(Config::default().with_mem_shards(0).mem_shards, 1);
        assert_eq!(Config::default().with_mem_shards(1).mem_shards, 1);
        assert!(cfg.observability);
        // Ring capacities normalize to the next power of two too.
        assert_eq!(cfg.obs_ring_capacity, 128);
        assert_eq!(
            Config::default()
                .with_obs_ring_capacity(0)
                .obs_ring_capacity,
            2
        );
        assert_eq!(cfg.fault_plan.as_ref().map(|p| p.seed), Some(11));
        assert_eq!(cfg.body_deadline, Some(Duration::from_millis(250)));
        assert_eq!(cfg.commit_retry_cap, 3);
        assert_eq!(cfg.commit_backoff, Some(Duration::from_micros(50)));
        assert_eq!(cfg.backpressure_assist_budget, 2);
        assert!(!cfg.lockfree_dispatch);
        assert!(
            Config::default()
                .with_lockfree_dispatch(true)
                .lockfree_dispatch
        );
        assert!(!cfg.work_stealing);
        assert!(Config::default().with_work_stealing(true).work_stealing);
        assert!(!cfg.simd_store);
        assert!(Config::default().with_simd_store(true).simd_store);
        assert!(!cfg.early_cutoff);
        assert!(Config::default().with_early_cutoff(true).early_cutoff);
        assert_eq!(cfg.park_timeout, Duration::from_millis(20));
    }

    #[test]
    fn env_bool_parsing_accepts_documented_forms_only() {
        for yes in ["1", "true", "on", "yes", " TRUE ", "On", "YES"] {
            assert_eq!(parse_env_bool(yes), Some(true), "{yes:?}");
        }
        for no in ["0", "false", "off", "no", " False ", "OFF", "nO"] {
            assert_eq!(parse_env_bool(no), Some(false), "{no:?}");
        }
        // The seed silently treated any unrecognized value as "enabled";
        // malformed values are now rejected (the env readers warn once and
        // fall back to the default).
        for bad in ["maybe", "", "2", "yes!", "tru", "-1", "on off"] {
            assert_eq!(parse_env_bool(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn env_shards_parsing_rejects_non_positive_integers() {
        assert_eq!(parse_env_shards("8"), Some(8));
        assert_eq!(parse_env_shards(" 64 "), Some(64));
        for bad in ["abc", "", "0", "-4", "3.5", "8 shards", "0x10"] {
            assert_eq!(parse_env_shards(bad), None, "{bad:?}");
        }
    }

    #[test]
    #[should_panic(expected = "queue capacity must be nonzero")]
    fn zero_queue_capacity_panics() {
        let _ = Config::default().with_queue_capacity(0);
    }

    #[test]
    #[should_panic(expected = "park timeout must be nonzero")]
    fn zero_park_timeout_panics() {
        let _ = Config::default().with_park_timeout(Duration::ZERO);
    }
}
