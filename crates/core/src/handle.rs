//! Typed handles into tracked memory.
//!
//! A handle is a cheap `Copy` token naming a typed location in the arena.
//! Handles are created by allocation ([`crate::runtime::Runtime::alloc`],
//! [`crate::runtime::Runtime::alloc_array`]) and consumed by the context API
//! ([`crate::ctx::Ctx::get`], [`crate::ctx::Ctx::set`], …). They carry no
//! lifetime: like a hardware address, a handle stays valid for as long as
//! the runtime that issued it.

use std::fmt;
use std::marker::PhantomData;

use crate::addr::{Addr, AddrRange};
use crate::pod::Pod;

/// A typed scalar cell in tracked memory.
pub struct Tracked<T> {
    addr: Addr,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Pod> Tracked<T> {
    pub(crate) fn new(addr: Addr) -> Self {
        Tracked {
            addr,
            _marker: PhantomData,
        }
    }

    /// The cell's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The byte range occupied by the cell — the region to watch for this
    /// value.
    ///
    /// # Examples
    ///
    /// ```
    /// use dtt_core::{Config, Runtime};
    /// let mut rt = Runtime::new(Config::default(), ());
    /// let cell = rt.alloc(5u32).unwrap();
    /// assert_eq!(cell.range().len(), 4);
    /// ```
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.addr, T::SIZE as u64)
    }
}

impl<T> Clone for Tracked<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Tracked<T> {}

impl<T> fmt::Debug for Tracked<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracked")
            .field("addr", &self.addr)
            .field("type", &std::any::type_name::<T>())
            .finish()
    }
}

impl<T> PartialEq for Tracked<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<T> Eq for Tracked<T> {}

/// A typed fixed-length array in tracked memory.
pub struct TrackedArray<T> {
    addr: Addr,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Pod> TrackedArray<T> {
    pub(crate) fn new(addr: Addr, len: usize) -> Self {
        TrackedArray {
            addr,
            len,
            _marker: PhantomData,
        }
    }

    /// Base address of the array.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Handle to element `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn at(&self, index: usize) -> Tracked<T> {
        assert!(
            index < self.len,
            "index {index} out of bounds (len {})",
            self.len
        );
        Tracked::new(self.addr.offset((index * T::SIZE) as u64))
    }

    /// The byte range of the whole array.
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.addr, (self.len * T::SIZE) as u64)
    }

    /// A sub-array handle over elements `[from, to)` of this array.
    ///
    /// Useful for partitioning one array into disjoint per-thread chunks
    /// (e.g. one [`crate::accessor::Accessor`] per worker writing its own
    /// slice); the sub-array addresses the same tracked memory.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > self.len()`.
    pub fn slice(&self, from: usize, to: usize) -> TrackedArray<T> {
        assert!(
            from <= to && to <= self.len,
            "invalid element range {from}..{to}"
        );
        TrackedArray::new(self.addr.offset((from * T::SIZE) as u64), to - from)
    }

    /// The byte range of elements `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > self.len()`.
    pub fn range_of(&self, from: usize, to: usize) -> AddrRange {
        assert!(
            from <= to && to <= self.len,
            "invalid element range {from}..{to}"
        );
        AddrRange::new(
            self.addr.offset((from * T::SIZE) as u64),
            ((to - from) * T::SIZE) as u64,
        )
    }
}

impl<T> Clone for TrackedArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TrackedArray<T> {}

impl<T> fmt::Debug for TrackedArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedArray")
            .field("addr", &self.addr)
            .field("len", &self.len)
            .field("type", &std::any::type_name::<T>())
            .finish()
    }
}

impl<T> PartialEq for TrackedArray<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr && self.len == other.len
    }
}
impl<T> Eq for TrackedArray<T> {}

/// A typed row-major 2-D array in tracked memory.
///
/// Rows are contiguous, which makes *per-row watching* natural: a tthread
/// that recomputes one row's derived data watches [`TrackedMatrix::row_range`].
pub struct TrackedMatrix<T> {
    addr: Addr,
    rows: usize,
    cols: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Pod> TrackedMatrix<T> {
    pub(crate) fn new(addr: Addr, rows: usize, cols: usize) -> Self {
        TrackedMatrix {
            addr,
            rows,
            cols,
            _marker: PhantomData,
        }
    }

    /// Base address of the matrix.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Handle to element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn at(&self, row: usize, col: usize) -> Tracked<T> {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        Tracked::new(self.addr.offset(((row * self.cols + col) * T::SIZE) as u64))
    }

    /// The whole matrix viewed as a flat array of `rows * cols` elements.
    pub fn as_array(&self) -> TrackedArray<T> {
        TrackedArray::new(self.addr, self.rows * self.cols)
    }

    /// The byte range of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_range(&self, row: usize) -> AddrRange {
        assert!(
            row < self.rows,
            "row {row} out of bounds ({} rows)",
            self.rows
        );
        AddrRange::new(
            self.addr.offset((row * self.cols * T::SIZE) as u64),
            (self.cols * T::SIZE) as u64,
        )
    }

    /// The byte range of the whole matrix.
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.addr, (self.rows * self.cols * T::SIZE) as u64)
    }
}

impl<T> Clone for TrackedMatrix<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TrackedMatrix<T> {}

impl<T> fmt::Debug for TrackedMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMatrix")
            .field("addr", &self.addr)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("type", &std::any::type_name::<T>())
            .finish()
    }
}

impl<T> PartialEq for TrackedMatrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr && self.rows == other.rows && self.cols == other.cols
    }
}
impl<T> Eq for TrackedMatrix<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_range_covers_type_size() {
        let t: Tracked<u64> = Tracked::new(Addr::new(16));
        assert_eq!(t.range().start().raw(), 16);
        assert_eq!(t.range().len(), 8);
    }

    #[test]
    fn array_element_addressing() {
        let a: TrackedArray<u32> = TrackedArray::new(Addr::new(100), 10);
        assert_eq!(a.at(0).addr().raw(), 100);
        assert_eq!(a.at(3).addr().raw(), 112);
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
    }

    #[test]
    fn array_subrange() {
        let a: TrackedArray<f64> = TrackedArray::new(Addr::new(0), 8);
        let r = a.range_of(2, 5);
        assert_eq!(r.start().raw(), 16);
        assert_eq!(r.len(), 24);
        assert_eq!(a.range_of(0, 8), a.range());
        assert!(a.range_of(3, 3).is_empty());
    }

    #[test]
    fn array_slice_addresses_same_memory() {
        let a: TrackedArray<u32> = TrackedArray::new(Addr::new(100), 10);
        let s = a.slice(2, 7);
        assert_eq!(s.len(), 5);
        assert_eq!(s.at(0), a.at(2));
        assert_eq!(s.at(4), a.at(6));
        assert_eq!(s.range(), a.range_of(2, 7));
        assert!(a.slice(3, 3).is_empty());
        assert_eq!(a.slice(0, 10), a);
    }

    #[test]
    #[should_panic(expected = "invalid element range")]
    fn array_slice_out_of_bounds_panics() {
        let a: TrackedArray<u8> = TrackedArray::new(Addr::new(0), 4);
        a.slice(2, 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_index_out_of_bounds_panics() {
        let a: TrackedArray<u8> = TrackedArray::new(Addr::new(0), 4);
        a.at(4);
    }

    #[test]
    #[should_panic(expected = "invalid element range")]
    fn array_invalid_range_panics() {
        let a: TrackedArray<u8> = TrackedArray::new(Addr::new(0), 4);
        a.range_of(3, 2);
    }

    #[test]
    fn matrix_addressing_is_row_major() {
        let m: TrackedMatrix<f64> = TrackedMatrix::new(Addr::new(0x100), 3, 4);
        assert_eq!(m.at(0, 0).addr().raw(), 0x100);
        assert_eq!(m.at(0, 3).addr().raw(), 0x100 + 3 * 8);
        assert_eq!(m.at(1, 0).addr().raw(), 0x100 + 4 * 8);
        assert_eq!(m.at(2, 3).addr().raw(), 0x100 + 11 * 8);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
    }

    #[test]
    fn matrix_row_ranges_tile_the_matrix() {
        let m: TrackedMatrix<u32> = TrackedMatrix::new(Addr::new(0), 4, 8);
        let mut end = 0;
        for r in 0..4 {
            let range = m.row_range(r);
            assert_eq!(range.start().raw(), end);
            assert_eq!(range.len(), 8 * 4);
            end = range.end().raw();
        }
        assert_eq!(end, m.range().len());
        assert_eq!(m.as_array().len(), 32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_row_out_of_bounds_panics() {
        let m: TrackedMatrix<u8> = TrackedMatrix::new(Addr::new(0), 2, 2);
        m.at(2, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_col_out_of_bounds_panics() {
        let m: TrackedMatrix<u8> = TrackedMatrix::new(Addr::new(0), 2, 2);
        m.at(0, 2);
    }

    #[test]
    fn handles_are_copy_and_comparable() {
        let a: Tracked<u32> = Tracked::new(Addr::new(4));
        let b = a;
        assert_eq!(a, b);
        let arr: TrackedArray<u32> = TrackedArray::new(Addr::new(4), 2);
        let arr2 = arr;
        assert_eq!(arr, arr2);
        assert!(format!("{a:?}").contains("Tracked"));
        assert!(format!("{arr:?}").contains("TrackedArray"));
    }
}
