//! Logical addresses, address ranges, and trigger granularity.
//!
//! The DTT runtime tracks writes to a *logical* byte-addressable arena (see
//! [`crate::heap::TrackedHeap`]). Addresses in that arena are represented by
//! [`Addr`], extents by [`AddrRange`]. Hardware DTT proposals attach triggers
//! at a fixed granularity (a word or a cache line); [`Granularity`] models
//! that choice and is the knob behind the paper's false-triggering ablation
//! (R-Fig.9 in DESIGN.md).

use std::fmt;

/// A logical byte address inside a [`crate::heap::TrackedHeap`] arena.
///
/// `Addr` is an opaque offset; it is only meaningful for the heap that issued
/// it. Handles ([`crate::handle::Tracked`], [`crate::handle::TrackedArray`])
/// carry an `Addr` internally.
///
/// # Examples
///
/// ```
/// use dtt_core::addr::Addr;
/// let a = Addr::new(64);
/// assert_eq!(a.offset(8).raw(), 72);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw arena offset.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw arena offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address `bytes` past `self`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit address space.
    pub fn offset(self, bytes: u64) -> Self {
        Addr(self.0.checked_add(bytes).expect("address overflow"))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A half-open byte range `[start, start+len)` in the tracked arena.
///
/// # Examples
///
/// ```
/// use dtt_core::addr::{Addr, AddrRange};
/// let r = AddrRange::new(Addr::new(16), 8);
/// assert!(r.contains(Addr::new(23)));
/// assert!(!r.contains(Addr::new(24)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    start: u64,
    len: u64,
}

impl AddrRange {
    /// Creates a range starting at `start` spanning `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range would overflow the address space.
    pub fn new(start: Addr, len: u64) -> Self {
        assert!(
            start.raw().checked_add(len).is_some(),
            "address range overflow"
        );
        AddrRange {
            start: start.raw(),
            len,
        }
    }

    /// The first address of the range.
    pub const fn start(&self) -> Addr {
        Addr(self.start)
    }

    /// One past the last address of the range.
    pub const fn end(&self) -> Addr {
        Addr(self.start + self.len)
    }

    /// Length in bytes.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Whether the range is empty.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: Addr) -> bool {
        let a = addr.raw();
        a >= self.start && a < self.start + self.len
    }

    /// Whether two ranges share at least one byte.
    pub fn intersects(&self, other: &AddrRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start < other.start + other.len
            && other.start < self.start + self.len
    }

    /// Expands the range outward to `granularity` boundaries.
    ///
    /// This is how a coarser-grained trigger mechanism *sees* a store: a
    /// one-byte store observed at cache-line granularity looks like a store
    /// to the whole 64-byte line. Rounding an empty range yields an empty
    /// range.
    pub fn round_to(&self, granularity: Granularity) -> AddrRange {
        if self.is_empty() {
            return *self;
        }
        let width = granularity.width() as u64;
        let start = self.start / width * width;
        let end = (self.start + self.len).div_ceil(width) * width;
        AddrRange {
            start,
            len: end - start,
        }
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[0x{:x}, 0x{:x})", self.start, self.start + self.len)
    }
}

/// The granularity at which the trigger mechanism observes stores.
///
/// The HPCA'11 design attaches triggers to memory at a hardware-convenient
/// granularity. Finer granularity means precise triggering; coarser
/// granularity (a cache line) is cheaper to implement but causes *false
/// triggers*: a store that changes bytes *near* a trigger region — in the
/// same word or line — fires the tthread even though the watched bytes are
/// untouched.
///
/// # Examples
///
/// ```
/// use dtt_core::addr::{Addr, AddrRange, Granularity};
/// let store = AddrRange::new(Addr::new(70), 1);
/// let rounded = store.round_to(Granularity::Line);
/// assert_eq!(rounded.start().raw(), 64);
/// assert_eq!(rounded.len(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// Byte-precise triggering: only stores overlapping the watched bytes fire.
    #[default]
    Exact,
    /// 8-byte (machine word) granularity.
    Word,
    /// 64-byte cache-line granularity.
    Line,
    /// A custom power-of-two block size in bytes.
    Block(u32),
}

impl Granularity {
    /// Width of the observation window in bytes.
    ///
    /// # Panics
    ///
    /// Panics if a [`Granularity::Block`] width is zero or not a power of two.
    pub fn width(self) -> u32 {
        match self {
            Granularity::Exact => 1,
            Granularity::Word => 8,
            Granularity::Line => 64,
            Granularity::Block(w) => {
                assert!(
                    w.is_power_of_two(),
                    "block granularity must be a power of two"
                );
                w
            }
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Granularity::Exact => write!(f, "exact"),
            Granularity::Word => write!(f, "word(8B)"),
            Granularity::Line => write!(f, "line(64B)"),
            Granularity::Block(w) => write!(f, "block({w}B)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset_and_raw_round_trip() {
        let a = Addr::new(100);
        assert_eq!(a.offset(28).raw(), 128);
        assert_eq!(Addr::from(7u64), Addr::new(7));
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn addr_offset_overflow_panics() {
        Addr::new(u64::MAX).offset(1);
    }

    #[test]
    fn range_contains_is_half_open() {
        let r = AddrRange::new(Addr::new(10), 5);
        assert!(r.contains(Addr::new(10)));
        assert!(r.contains(Addr::new(14)));
        assert!(!r.contains(Addr::new(15)));
        assert!(!r.contains(Addr::new(9)));
    }

    #[test]
    fn empty_range_intersects_nothing() {
        let empty = AddrRange::new(Addr::new(10), 0);
        let full = AddrRange::new(Addr::new(0), 100);
        assert!(!empty.intersects(&full));
        assert!(!full.intersects(&empty));
        assert!(empty.is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = AddrRange::new(Addr::new(0), 10);
        let b = AddrRange::new(Addr::new(9), 1);
        let c = AddrRange::new(Addr::new(10), 1);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // symmetric
        assert!(b.intersects(&a));
        assert!(!c.intersects(&a));
    }

    #[test]
    fn rounding_exact_is_identity() {
        let r = AddrRange::new(Addr::new(13), 3);
        assert_eq!(r.round_to(Granularity::Exact), r);
    }

    #[test]
    fn rounding_to_word_and_line() {
        let r = AddrRange::new(Addr::new(13), 3);
        let w = r.round_to(Granularity::Word);
        assert_eq!(w.start().raw(), 8);
        assert_eq!(w.end().raw(), 16);
        let l = r.round_to(Granularity::Line);
        assert_eq!(l.start().raw(), 0);
        assert_eq!(l.len(), 64);
    }

    #[test]
    fn rounding_spanning_two_lines() {
        let r = AddrRange::new(Addr::new(60), 8);
        let l = r.round_to(Granularity::Line);
        assert_eq!(l.start().raw(), 0);
        assert_eq!(l.end().raw(), 128);
    }

    #[test]
    fn rounding_empty_stays_empty() {
        let r = AddrRange::new(Addr::new(13), 0);
        assert!(r.round_to(Granularity::Line).is_empty());
    }

    #[test]
    fn granularity_widths() {
        assert_eq!(Granularity::Exact.width(), 1);
        assert_eq!(Granularity::Word.width(), 8);
        assert_eq!(Granularity::Line.width(), 64);
        assert_eq!(Granularity::Block(16).width(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_panics() {
        Granularity::Block(12).width();
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(AddrRange::new(Addr::new(0), 4).to_string(), "[0x0, 0x4)");
        assert_eq!(Granularity::Word.to_string(), "word(8B)");
    }
}
