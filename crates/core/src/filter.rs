//! The hierarchical lock-free watched-address filter.
//!
//! Every changing tracked store must answer "could any watch match this
//! range?" before touching the trigger table. The table lookup takes a read
//! lock and walks address buckets; the filter answers the common *no* from
//! one or two atomic loads instead.
//!
//! # Structure
//!
//! Two bitmap levels, both plain [`AtomicU64`] words sized to the arena —
//! no wrapping, so distinct pages never alias:
//!
//! * **Level 1 — pages.** One bit per 4 KiB page, allocated eagerly (the
//!   default 4 GiB arena needs 128 KiB of zeroed words). A store whose
//!   pages carry no bit exits after one load per page word — for the
//!   overwhelmingly common single-page store, exactly one load.
//! * **Level 2 — lines.** One word per watched page holding one bit per
//!   64-byte line (64 lines × 64 B = 4 KiB). Line words live in lazily
//!   initialized chunks, so a huge arena with a handful of watches only
//!   materializes the chunks those watches touch. A store that lands on a
//!   watched page but misses every watched *line* exits here, still
//!   without the table's read lock.
//!
//! # Correctness contract
//!
//! The filter must never under-approximate: a probe miss must *prove* the
//! trigger table would find no hit. The table matches rounded ranges —
//! `rounded(store) ∩ rounded(watch)` at the configured
//! [`Granularity`] — while the probe tests the store's *raw* line cover,
//! so [`WatchFilter::watch`] sets bits for the watch's rounded range padded
//! outward by `width − 1` bytes. If the rounded ranges share a byte, that
//! byte lies within `width − 1` bytes of the raw store, so the padded watch
//! cover overlaps the raw store and shares one of its lines. Probe hits are
//! allowed to be spurious (the table settles precision); the proptests
//! below pin the no-false-negative direction, including after `unwatch`
//! rebuilds.
//!
//! Mutators (`watch`/`rebuild`) are serialized by the runtime's state lock;
//! probes run lock-free and concurrently. Watch-side stores publish line
//! bits *before* page bits (both `Release`), and probes load page bits with
//! `Acquire` before descending, so a probe that sees a page bit always
//! finds the line word it covers. `rebuild` recomputes only the removed
//! watch's span and writes each line word to exactly the remaining
//! coverage, so surviving watches are never transiently unprotected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::addr::{AddrRange, Granularity};

/// Bytes per level-1 page (4 KiB): one page bit covers 64 line bits.
const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;

/// Bytes per level-2 line (matches the memory stripe and obs region size).
const LINE_SHIFT: u32 = 6;

/// Pages per lazily initialized line-word chunk (8192 pages = 64 KiB of
/// line words covering 32 MiB of arena).
const LINE_CHUNK_SHIFT: u32 = 13;
const LINE_CHUNK_PAGES: u64 = 1 << LINE_CHUNK_SHIFT;

/// Where a store-side probe exited the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FilterProbe {
    /// No page bit set: the cheapest exit, one load per page word (one
    /// load total for a single-page store).
    MissPage,
    /// A page bit was set but no watched line overlaps the store: exits at
    /// level 2, still without the trigger-table read lock.
    MissLine,
    /// A watched line overlaps the store; the caller must consult the
    /// trigger table (which may still find no precise hit).
    Hit,
}

impl FilterProbe {
    /// Whether the probe proves no trigger can match (either miss level).
    #[inline]
    pub(crate) fn is_miss(self) -> bool {
        !matches!(self, FilterProbe::Hit)
    }
}

/// The two-level watched-address filter. See the module docs.
#[derive(Debug)]
pub(crate) struct WatchFilter {
    /// Level 1: bit `p & 63` of word `p >> 6` covers page `p`.
    pages: Box<[AtomicU64]>,
    /// Level 2: one line-bit word per page, in lazily initialized chunks of
    /// [`LINE_CHUNK_PAGES`] pages.
    lines: Box<[OnceLock<Box<[AtomicU64]>>]>,
    /// Pages covered by the arena capacity.
    npages: u64,
}

/// Bits `lo..=hi` (both ≤ 63) of a 64-bit word.
#[inline]
fn bit_span(lo: u32, hi: u32) -> u64 {
    debug_assert!(lo <= hi && hi < 64);
    let span = hi - lo;
    if span >= 63 {
        u64::MAX
    } else {
        ((1u64 << (span + 1)) - 1) << lo
    }
}

/// Line bits of page `page` covered by the byte interval `[first, last]`
/// (inclusive); the interval must overlap the page.
#[inline]
fn line_mask_within_page(first: u64, last: u64, page: u64) -> u64 {
    let page_first = page << PAGE_SHIFT;
    let page_last = page_first + PAGE_BYTES - 1;
    let lo = ((first.max(page_first) >> LINE_SHIFT) & 63) as u32;
    let hi = ((last.min(page_last) >> LINE_SHIFT) & 63) as u32;
    bit_span(lo, hi)
}

impl WatchFilter {
    /// Creates a filter covering an arena of `capacity` bytes with no
    /// watches set.
    pub(crate) fn new(capacity: u64) -> Self {
        let npages = capacity.div_ceil(PAGE_BYTES);
        let page_words = npages.div_ceil(64) as usize;
        let line_chunks = npages.div_ceil(LINE_CHUNK_PAGES) as usize;
        WatchFilter {
            pages: (0..page_words).map(|_| AtomicU64::new(0)).collect(),
            lines: (0..line_chunks).map(|_| OnceLock::new()).collect(),
            npages,
        }
    }

    /// The line-bit word of `page`, materializing its chunk.
    fn line_word(&self, page: u64) -> &AtomicU64 {
        let chunk = self.lines[(page >> LINE_CHUNK_SHIFT) as usize].get_or_init(|| {
            let pages_in_chunk =
                (self.npages - (page & !(LINE_CHUNK_PAGES - 1))).min(LINE_CHUNK_PAGES) as usize;
            (0..pages_in_chunk).map(|_| AtomicU64::new(0)).collect()
        });
        &chunk[(page & (LINE_CHUNK_PAGES - 1)) as usize]
    }

    /// The line-bit word of `page` if its chunk exists.
    #[inline]
    fn line_word_opt(&self, page: u64) -> Option<&AtomicU64> {
        let chunk = self.lines[(page >> LINE_CHUNK_SHIFT) as usize].get()?;
        Some(&chunk[(page & (LINE_CHUNK_PAGES - 1)) as usize])
    }

    /// The filter cover of a watch on `range` at `granularity`, as an
    /// inclusive byte interval: the rounded range padded outward by
    /// `width − 1` bytes (how far store-side rounding can reach toward the
    /// watch), clamped to the filter's page coverage.
    fn padded_span(&self, range: AddrRange, granularity: Granularity) -> Option<(u64, u64)> {
        let rounded = range.round_to(granularity);
        if rounded.is_empty() || self.npages == 0 {
            return None;
        }
        let pad = (granularity.width() - 1) as u64;
        let first = rounded.start().raw().saturating_sub(pad);
        let limit = self.npages << PAGE_SHIFT;
        if first >= limit {
            return None;
        }
        let last = (rounded.end().raw() - 1).saturating_add(pad).min(limit - 1);
        Some((first, last))
    }

    /// Sets the filter bits covering a watch on `range` at `granularity`.
    /// Caller serializes with other mutators (the runtime's state lock).
    pub(crate) fn watch(&self, range: AddrRange, granularity: Granularity) {
        let Some((first, last)) = self.padded_span(range, granularity) else {
            return;
        };
        let p0 = first >> PAGE_SHIFT;
        let p1 = last >> PAGE_SHIFT;
        // Line bits first, page bits second (both Release): a probe whose
        // Acquire page load sees the bit is guaranteed to find the line
        // word populated.
        for p in p0..=p1 {
            self.line_word(p)
                .fetch_or(line_mask_within_page(first, last, p), Ordering::Release);
        }
        for w in (p0 >> 6)..=(p1 >> 6) {
            let lo = if w == p0 >> 6 { (p0 & 63) as u32 } else { 0 };
            let hi = if w == p1 >> 6 { (p1 & 63) as u32 } else { 63 };
            self.pages[w as usize].fetch_or(bit_span(lo, hi), Ordering::Release);
        }
    }

    /// Recomputes the filter over the span a removed watch on `removed`
    /// covered, from the `remaining` active watch ranges. Bits outside the
    /// removed span are untouched; within it, each line word is written to
    /// exactly the remaining coverage (line bits before page-bit clears,
    /// so surviving watches are never transiently unfiltered). Caller
    /// serializes with other mutators.
    pub(crate) fn rebuild(
        &self,
        removed: AddrRange,
        granularity: Granularity,
        remaining: &[AddrRange],
    ) {
        let Some((first, last)) = self.padded_span(removed, granularity) else {
            return;
        };
        let spans: Vec<(u64, u64)> = remaining
            .iter()
            .filter_map(|r| self.padded_span(*r, granularity))
            .collect();
        for p in (first >> PAGE_SHIFT)..=(last >> PAGE_SHIFT) {
            let page_first = p << PAGE_SHIFT;
            let page_last = page_first + PAGE_BYTES - 1;
            let mut desired = 0u64;
            for &(s0, s1) in &spans {
                if s0 <= page_last && s1 >= page_first {
                    desired |= line_mask_within_page(s0, s1, p);
                }
            }
            let bit = 1u64 << (p & 63);
            let word = &self.pages[(p >> 6) as usize];
            if desired != 0 {
                // Shrink (or keep) the line cover while the page bit stays
                // set; probes racing this see a superset of the remaining
                // watches at every instant.
                self.line_word(p).store(desired, Ordering::Release);
                word.fetch_or(bit, Ordering::Release);
            } else {
                // Nothing left on this page: hide it at level 1 first, then
                // clear the line word for the next watch to start clean.
                word.fetch_and(!bit, Ordering::Release);
                if let Some(lw) = self.line_word_opt(p) {
                    lw.store(0, Ordering::Release);
                }
            }
        }
    }

    /// Store-side membership probe over the *raw* store range. A miss
    /// proves the trigger table holds no watch whose rounded range can
    /// intersect the store's rounded range; a hit sends the caller to the
    /// table.
    #[inline]
    pub(crate) fn probe(&self, range: AddrRange) -> FilterProbe {
        if range.is_empty() {
            return FilterProbe::MissPage;
        }
        let first = range.start().raw();
        let last = range.end().raw() - 1;
        let p0 = first >> PAGE_SHIFT;
        let p1 = last >> PAGE_SHIFT;
        if p1 >= self.npages {
            // Out of the filter's coverage (stores are bounds-checked
            // upstream, so this is defensive): over-approximate.
            return FilterProbe::Hit;
        }
        if p0 == p1 {
            // The common case — a store inside one page: a single page-bit
            // load decides the unwatched-traffic exit.
            if self.pages[(p0 >> 6) as usize].load(Ordering::Acquire) & (1u64 << (p0 & 63)) == 0 {
                return FilterProbe::MissPage;
            }
            let Some(lw) = self.line_word_opt(p0) else {
                return FilterProbe::Hit;
            };
            if lw.load(Ordering::Acquire) & line_mask_within_page(first, last, p0) == 0 {
                return FilterProbe::MissLine;
            }
            return FilterProbe::Hit;
        }
        let mut descended = false;
        for p in p0..=p1 {
            if self.pages[(p >> 6) as usize].load(Ordering::Acquire) & (1u64 << (p & 63)) == 0 {
                continue;
            }
            descended = true;
            let Some(lw) = self.line_word_opt(p) else {
                return FilterProbe::Hit;
            };
            if lw.load(Ordering::Acquire) & line_mask_within_page(first, last, p) != 0 {
                return FilterProbe::Hit;
            }
        }
        if descended {
            FilterProbe::MissLine
        } else {
            FilterProbe::MissPage
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::trigger::TriggerTable;
    use crate::tthread::TthreadId;
    use proptest::prelude::*;

    fn r(start: u64, len: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), len)
    }

    #[test]
    fn distinct_pages_never_alias() {
        // The seed's single-word filter wrapped page indices mod 64, so a
        // watch on page 0 slow-pathed every store to pages 64, 128, ...;
        // the sized bitmap keeps them apart.
        let f = WatchFilter::new(1 << 30);
        f.watch(r(0, 64), Granularity::Exact);
        assert_eq!(f.probe(r(16, 8)), FilterProbe::Hit);
        for aliased_page in [64u64, 128, 192, 1024] {
            let addr = aliased_page * PAGE_BYTES + 16;
            assert_eq!(
                f.probe(r(addr, 8)),
                FilterProbe::MissPage,
                "page {aliased_page} aliased a watch on page 0"
            );
        }
    }

    #[test]
    fn line_level_separates_traffic_within_a_watched_page() {
        let f = WatchFilter::new(1 << 20);
        // Watch line 0 of page 3.
        f.watch(r(3 * PAGE_BYTES, 64), Granularity::Exact);
        // Same page, line 32: descends to level 2 and misses there.
        assert_eq!(
            f.probe(r(3 * PAGE_BYTES + 32 * 64, 8)),
            FilterProbe::MissLine
        );
        // Same line: hit.
        assert_eq!(f.probe(r(3 * PAGE_BYTES + 8, 4)), FilterProbe::Hit);
        // Different page: level-1 exit.
        assert_eq!(f.probe(r(2 * PAGE_BYTES, 8)), FilterProbe::MissPage);
    }

    #[test]
    fn coarse_granularity_covers_the_rounded_watch() {
        // At Block(256) a store sharing the watch's block matches the
        // table even when it's far outside the raw watch range; the filter
        // cover must span the whole rounded watch or it would under-filter.
        let g = Granularity::Block(256);
        let f = WatchFilter::new(1 << 20);
        let watch = r(4200, 64); // rounds to [4096, 4352)
        f.watch(watch, g);
        // 104 bytes before the raw watch, same 256-byte block.
        let store = r(4096, 1);
        assert!(
            store.round_to(g).intersects(&watch.round_to(g)),
            "test premise: the table would match"
        );
        assert_eq!(f.probe(store), FilterProbe::Hit);
        // Past the padded cover ([4096-255, 4352+255)) but on the same
        // page: the page bit is set, the line bit is not.
        assert_eq!(f.probe(r(4700, 1)), FilterProbe::MissLine);
    }

    #[test]
    fn rebuild_clears_removed_and_keeps_remaining() {
        let f = WatchFilter::new(1 << 30);
        let a = r(0, 64); // page 0
        let b = r(64 * PAGE_BYTES, 64); // page 64 (the old filter's alias)
        f.watch(a, Granularity::Exact);
        f.watch(b, Granularity::Exact);
        f.rebuild(a, Granularity::Exact, &[b]);
        assert_eq!(f.probe(r(0, 8)), FilterProbe::MissPage, "removed watch");
        assert_eq!(f.probe(r(64 * PAGE_BYTES, 8)), FilterProbe::Hit);
        // Removing the survivor too empties the filter.
        f.rebuild(b, Granularity::Exact, &[]);
        assert_eq!(f.probe(r(64 * PAGE_BYTES, 8)), FilterProbe::MissPage);
    }

    #[test]
    fn rebuild_keeps_same_page_survivors_at_line_level() {
        let f = WatchFilter::new(1 << 20);
        let a = r(0, 64); // page 0 line 0
        let b = r(40 * 64, 64); // page 0 line 40
        f.watch(a, Granularity::Exact);
        f.watch(b, Granularity::Exact);
        f.rebuild(a, Granularity::Exact, &[b]);
        assert_eq!(f.probe(r(0, 8)), FilterProbe::MissLine);
        assert_eq!(f.probe(r(40 * 64, 8)), FilterProbe::Hit);
    }

    #[test]
    fn empty_and_out_of_cover_ranges() {
        let f = WatchFilter::new(PAGE_BYTES);
        assert_eq!(f.probe(r(100, 0)), FilterProbe::MissPage);
        // Beyond the filter's coverage: defensive over-approximation.
        assert_eq!(f.probe(r(PAGE_BYTES * 2, 8)), FilterProbe::Hit);
        // Watching outside the cover is a no-op, not a panic.
        f.watch(r(PAGE_BYTES * 2, 8), Granularity::Exact);
        f.watch(r(0, 0), Granularity::Exact);
        assert_eq!(f.probe(r(0, 8)), FilterProbe::MissPage);
    }

    #[test]
    fn multi_page_store_descends_only_on_watched_pages() {
        let f = WatchFilter::new(1 << 20);
        f.watch(r(5 * PAGE_BYTES + 100, 8), Granularity::Exact);
        // A store spanning pages 4..=6 must hit via page 5.
        assert_eq!(
            f.probe(r(4 * PAGE_BYTES + 4000, 2 * PAGE_BYTES)),
            FilterProbe::Hit
        );
        // Pages 0..=2: clean level-1 miss.
        assert_eq!(f.probe(r(100, 2 * PAGE_BYTES)), FilterProbe::MissPage);
    }

    /// Strategy mirroring the table's granularity space, `Block` included
    /// (widths above 64 are what force the watch-side padding).
    fn granularities() -> impl Strategy<Value = Granularity> {
        prop_oneof![
            Just(Granularity::Exact),
            Just(Granularity::Word),
            Just(Granularity::Line),
            (0u32..=10).prop_map(|s| Granularity::Block(1 << s)),
        ]
    }

    const PROP_ARENA: u64 = 1 << 18; // 64 pages

    fn ranges() -> impl Strategy<Value = AddrRange> {
        (0u64..PROP_ARENA, 1u64..300).prop_map(|(s, l)| r(s, l.min(PROP_ARENA - s).max(1)))
    }

    proptest! {
        /// Filter consistency: whenever the trigger table would match a
        /// store, the filter probe hits — no false negatives at either
        /// level — and this survives unwatching an arbitrary prefix.
        #[test]
        fn probe_never_misses_a_table_match(
            g in granularities(),
            watches in proptest::collection::vec(ranges(), 1..8),
            stores in proptest::collection::vec(ranges(), 1..32),
            unwatch_n in 0usize..8,
        ) {
            let mut table = TriggerTable::new(g);
            let filter = WatchFilter::new(PROP_ARENA);
            for (i, w) in watches.iter().enumerate() {
                table.watch(TthreadId::new(i as u32), *w);
                filter.watch(*w, g);
            }
            for s in &stores {
                if !table.lookup(*s).is_empty() {
                    prop_assert_eq!(
                        filter.probe(*s), FilterProbe::Hit,
                        "false negative for store {} against {:?} at {}", s, watches, g
                    );
                }
            }
            // Unwatch a prefix, rebuilding the filter span per removal the
            // way Runtime::unwatch does, and re-check the invariant.
            let n = unwatch_n.min(watches.len());
            for (i, w) in watches.iter().take(n).enumerate() {
                table.unwatch(TthreadId::new(i as u32), *w).unwrap();
                let remaining: Vec<AddrRange> = table.iter().map(|(_, r)| r).collect();
                filter.rebuild(*w, g, &remaining);
            }
            for s in &stores {
                if !table.lookup(*s).is_empty() {
                    prop_assert_eq!(
                        filter.probe(*s), FilterProbe::Hit,
                        "false negative after unwatch for store {}", s
                    );
                }
            }
        }
    }
}
