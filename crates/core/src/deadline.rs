//! Monotonic deadline and backoff arithmetic for the detached executor.
//!
//! The per-body deadline ([`crate::config::Config::with_body_deadline`]) and
//! the commit-retry backoff ([`crate::config::Config::with_commit_backoff`])
//! both reduce to small pure functions over time values. They live here,
//! factored away from the executor, for two reasons:
//!
//! * **Monotonicity is load-bearing.** Deadlines are measured against
//!   [`Instant`], never the wall clock: an NTP step or a suspended laptop
//!   must not spuriously time a body out, nor immortalize one. Keeping the
//!   arithmetic in one module makes that property auditable (no
//!   `SystemTime` imports) and lets tests *inject* constructed instants
//!   instead of sleeping.
//! * **The serve front-end reuses it.** `dtt-serve` applies the same
//!   deadline/backoff shapes to its request lifecycle; sharing the math
//!   keeps the two layers' semantics aligned.

use std::time::{Duration, Instant};

/// Exponent cap for [`backoff_delay`]: steps stop doubling after
/// `base << 6` (64×), bounding the worst-case sleep.
pub const BACKOFF_SHIFT_CAP: u32 = 6;

/// A monotonic per-body deadline: the body's start instant plus a limit.
///
/// Constructed at body start via [`BodyDeadline::starting`] and probed at
/// commit time via [`BodyDeadline::overrun`]. Both take the "current"
/// instant as an argument so tests can drive the math with constructed
/// instants rather than real sleeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BodyDeadline {
    start: Instant,
    limit: Duration,
}

impl BodyDeadline {
    /// Starts a deadline clock at `now`, or `None` when no limit is
    /// configured (the common path pays nothing).
    pub fn starting(limit: Option<Duration>, now: Instant) -> Option<BodyDeadline> {
        limit.map(|limit| BodyDeadline { start: now, limit })
    }

    /// Checks the deadline at `now`: `Some(elapsed)` when the body has
    /// overrun its limit (strictly exceeded — a body finishing exactly at
    /// the limit is on time), `None` otherwise.
    ///
    /// A zero limit always overruns: no body completes in literally zero
    /// time, so a measured zero elapsed is clock granularity, not an
    /// on-time finish. Tests lean on `Duration::ZERO` as the "impossible
    /// deadline" wedge idiom, which must not race the clock's tick size.
    pub fn overrun(&self, now: Instant) -> Option<Duration> {
        let elapsed = now.saturating_duration_since(self.start);
        (elapsed > self.limit || self.limit.is_zero()).then_some(elapsed)
    }

    /// The configured limit.
    pub fn limit(&self) -> Duration {
        self.limit
    }
}

/// The bounded-exponential commit-retry backoff with deterministic jitter.
///
/// Retry `r` (1-based) sleeps `base << min(r-1, BACKOFF_SHIFT_CAP)` plus a
/// jitter drawn from the caller's SplitMix64 stream, uniform in
/// `[0, step/2]`. The first retry therefore waits at least `base`; the
/// step stops doubling at 64× so a deep retry storm cannot sleep
/// unboundedly. A zero `base` disables the wait entirely (the counter
/// still ticks at the call site).
pub fn backoff_delay(base: Duration, retry: u32, jitter_draw: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let shift = retry.saturating_sub(1).min(BACKOFF_SHIFT_CAP);
    let step = base.saturating_mul(1 << shift);
    let half = step / 2;
    let jitter_ns = if half.is_zero() {
        0
    } else {
        jitter_draw % (half.as_nanos() as u64 + 1)
    };
    step.saturating_add(Duration::from_nanos(jitter_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_limit_means_no_deadline() {
        let now = Instant::now();
        assert_eq!(BodyDeadline::starting(None, now), None);
    }

    #[test]
    fn overrun_is_strict_and_monotonic() {
        let t0 = Instant::now();
        let dl = BodyDeadline::starting(Some(Duration::from_millis(10)), t0).unwrap();
        assert_eq!(dl.limit(), Duration::from_millis(10));
        // On time: at the start, and exactly at the limit.
        assert_eq!(dl.overrun(t0), None);
        assert_eq!(dl.overrun(t0 + Duration::from_millis(10)), None);
        // Past the limit: reports the elapsed time.
        assert_eq!(
            dl.overrun(t0 + Duration::from_millis(11)),
            Some(Duration::from_millis(11))
        );
        // A "now" before the start (possible when the probing thread read
        // its instant before the starting thread) saturates to zero
        // elapsed rather than panicking or overflowing.
        let early = t0.checked_sub(Duration::from_millis(5)).unwrap_or(t0);
        assert_eq!(dl.overrun(early), None);
    }

    #[test]
    fn zero_limit_always_overruns() {
        // The "impossible deadline" wedge idiom: a coarse clock may
        // measure zero elapsed for a real body, and that must still
        // count as an overrun rather than racing the tick size.
        let t0 = Instant::now();
        let dl = BodyDeadline::starting(Some(Duration::ZERO), t0).unwrap();
        assert_eq!(dl.overrun(t0), Some(Duration::ZERO));
        assert!(dl.overrun(t0 + Duration::from_nanos(1)).is_some());
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let base = Duration::from_micros(100);
        // Zero jitter draw isolates the deterministic step.
        assert_eq!(backoff_delay(base, 1, 0), Duration::from_micros(100));
        assert_eq!(backoff_delay(base, 2, 0), Duration::from_micros(200));
        assert_eq!(backoff_delay(base, 3, 0), Duration::from_micros(400));
        assert_eq!(backoff_delay(base, 7, 0), Duration::from_micros(6_400));
        // Past the cap the step stays at base << 6.
        assert_eq!(backoff_delay(base, 8, 0), Duration::from_micros(6_400));
        assert_eq!(backoff_delay(base, 1_000, 0), Duration::from_micros(6_400));
    }

    #[test]
    fn jitter_is_bounded_by_half_a_step() {
        let base = Duration::from_micros(100);
        for draw in [0, 1, u64::MAX / 2, u64::MAX] {
            let d = backoff_delay(base, 1, draw);
            assert!(d >= base, "{d:?}");
            assert!(d <= base + base / 2, "{d:?}");
        }
        // The jitter actually varies with the draw.
        assert_ne!(backoff_delay(base, 1, 0), backoff_delay(base, 1, 1));
    }

    #[test]
    fn zero_base_disables_the_wait() {
        assert_eq!(backoff_delay(Duration::ZERO, 5, 12345), Duration::ZERO);
    }
}
