//! The incremental computation graph: tthreads that trigger tthreads.
//!
//! The runtime already closes the single-tthread loop — a committed
//! non-silent store re-enters trigger detection and can retrigger its own
//! writer. This module applies that elimination *transitively*: when one
//! tthread's committed writes land in another tthread's trigger region,
//! the commit raises the downstream slot through the ordinary CAS status
//! machine, turning the runtime into a DICE-style incremental dataflow
//! engine. Three pieces live here:
//!
//! * **The versioned edge map.** Each tthread's *watch* regions (the
//!   reader side) are mirrored out of the trigger table, and its declared
//!   *output* regions (the writer side, [`crate::runtime::Runtime::declare_output`])
//!   are recorded alongside. An edge `W → R` exists when an output region
//!   of `W` overlaps a watch region of `R` at the configured granularity.
//! * **Per-epoch wave deduplication.** Every commit (and every inline
//!   body execution) opens a new *wave epoch*. A downstream tthread is
//!   raised at most once per epoch, no matter how many of the commit's
//!   stores land in its trigger regions: later hits are absorbed as
//!   `wave_dedups` without touching the status machine (beyond setting
//!   the rerun flag on a mid-commit claimant, which keeps snapshot
//!   freshness exact — see [`DepGraph::begin_wave`]).
//! * **Cycle detection.** Installing a watch or declaring an output runs
//!   a DFS over the declared edge map under the state lock; an edge that
//!   would close a cross-tthread cycle is rejected with
//!   [`crate::error::Error::TriggerCycle`] instead of being allowed to
//!   livelock the wave. Self-loops (a tthread watching its own output)
//!   are *not* rejected: that is the established self-retrigger pattern,
//!   bounded by [`crate::config::Config::commit_retry_cap`], which also
//!   backstops dynamic cycles the declared map cannot see.
//!
//! The fourth piece — **early cutoff** — lives in the commit path: a
//! cascade-driven recomputation whose commit is fully silent (zero
//! non-silent lines) stops the wave and is counted as a transitive skip
//! (`cascade_cutoffs`). Disabling [`crate::config::Config::early_cutoff`]
//! turns the runtime into an invalidate-on-write baseline where silent
//! recomputations still propagate downstream — the ablation the
//! `graph_throughput` bench measures against.

use crate::addr::{AddrRange, Granularity};
use crate::tthread::TthreadId;

/// A declared dependency edge of the incremental computation graph:
/// `writer`'s declared output region overlaps `reader`'s trigger region,
/// so `writer`'s non-silent commits raise `reader`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEdge {
    /// The upstream tthread whose declared output feeds the edge.
    pub writer: TthreadId,
    /// The downstream tthread whose watch region receives it.
    pub reader: TthreadId,
}

/// The dependency-graph half of the runtime state: region mirrors for the
/// declared edge map, plus the per-tthread wave bookkeeping (raise epoch
/// and wave depth). Lives inside `State` — every access happens under the
/// state lock, which already serializes commits, watch installation and
/// trigger raising.
#[derive(Debug)]
pub(crate) struct DepGraph {
    /// Trigger-match granularity; region overlap is evaluated after
    /// rounding to it, matching what the trigger table will actually do.
    granularity: Granularity,
    /// Declared output regions per tthread (writer side of edges).
    outputs: Vec<Vec<AddrRange>>,
    /// Mirror of the installed watch regions per tthread (reader side).
    watches: Vec<Vec<AddrRange>>,
    /// Wave epoch a tthread was last cascade-raised in (0 = never).
    last_raise: Vec<u64>,
    /// Wave depth of a tthread's most recent cascade raise; reset to 0
    /// when the raised execution commits (or when an external store
    /// re-dirties it at depth 0).
    depth: Vec<u32>,
    /// Current wave epoch; bumped once per commit replay and once per
    /// inline body execution, so dedup is per *commit*, not per store.
    epoch: u64,
}

impl DepGraph {
    pub(crate) fn new(granularity: Granularity) -> Self {
        DepGraph {
            granularity,
            outputs: Vec::new(),
            watches: Vec::new(),
            last_raise: Vec::new(),
            depth: Vec::new(),
            epoch: 0,
        }
    }

    /// Grows every per-tthread vector to cover index `idx`.
    pub(crate) fn ensure(&mut self, idx: usize) {
        if self.outputs.len() <= idx {
            let len = idx + 1;
            self.outputs.resize_with(len, Vec::new);
            self.watches.resize_with(len, Vec::new);
            self.last_raise.resize(len, 0);
            self.depth.resize(len, 0);
        }
    }

    /// Opens a new wave epoch (one commit replay or one inline body).
    pub(crate) fn begin_wave(&mut self) {
        self.epoch += 1;
    }

    /// Whether `id` was already cascade-raised in the current epoch.
    pub(crate) fn raised_this_epoch(&self, id: TthreadId) -> bool {
        self.last_raise[id.index()] == self.epoch
    }

    /// Records a cascade raise of `id` at wave depth `depth` in the
    /// current epoch. Deeper waves win so the depth reported at cutoff is
    /// the longest chain that reached the tthread.
    pub(crate) fn mark_raised(&mut self, id: TthreadId, depth: u32) {
        let i = id.index();
        self.last_raise[i] = self.epoch;
        self.depth[i] = self.depth[i].max(depth);
    }

    /// The wave depth of `id`'s most recent cascade raise (0 = raised
    /// externally, or never).
    pub(crate) fn wave_depth(&self, id: TthreadId) -> u32 {
        self.depth[id.index()]
    }

    /// Clears `id`'s wave depth after its raised execution committed (the
    /// wave either continued through the commit's own raises or stopped).
    pub(crate) fn clear_depth(&mut self, id: TthreadId) {
        self.depth[id.index()] = 0;
    }

    /// Mirrors a watch installation (reader side of the edge map).
    pub(crate) fn add_watch(&mut self, id: TthreadId, range: AddrRange) {
        self.ensure(id.index());
        self.watches[id.index()].push(range);
    }

    /// Removes one mirrored watch (the first region equal to `range`).
    pub(crate) fn remove_watch(&mut self, id: TthreadId, range: AddrRange) {
        self.ensure(id.index());
        let regions = &mut self.watches[id.index()];
        if let Some(pos) = regions.iter().position(|r| *r == range) {
            regions.swap_remove(pos);
        }
    }

    /// Records a declared output region (writer side of the edge map).
    pub(crate) fn add_output(&mut self, id: TthreadId, range: AddrRange) {
        self.ensure(id.index());
        self.outputs[id.index()].push(range);
    }

    /// Removes one declared output (undo for a rejected edge).
    pub(crate) fn remove_output(&mut self, id: TthreadId, range: AddrRange) {
        let regions = &mut self.outputs[id.index()];
        if let Some(pos) = regions.iter().position(|r| *r == range) {
            regions.swap_remove(pos);
        }
    }

    fn overlaps(&self, a: &AddrRange, b: &AddrRange) -> bool {
        a.round_to(self.granularity)
            .intersects(&b.round_to(self.granularity))
    }

    /// Whether the declared edge `writer → reader` exists (cross-tthread
    /// only: self-loops are the retry-cap-governed self-retrigger path).
    fn has_edge(&self, writer: usize, reader: usize) -> bool {
        if writer == reader {
            return false;
        }
        self.outputs[writer].iter().any(|out| {
            self.watches[reader]
                .iter()
                .any(|watch| self.overlaps(out, watch))
        })
    }

    /// Every declared edge, writer-major.
    pub(crate) fn edges(&self) -> Vec<GraphEdge> {
        let n = self.outputs.len();
        let mut edges = Vec::new();
        for w in 0..n {
            for r in 0..n {
                if self.has_edge(w, r) {
                    edges.push(GraphEdge {
                        writer: TthreadId::new(w as u32),
                        reader: TthreadId::new(r as u32),
                    });
                }
            }
        }
        edges
    }

    /// DFS over the declared edge map looking for a cycle through
    /// `start`. Returns the cycle path (starting and ending at `start`,
    /// in wave order) if one exists. Called under the state lock whenever
    /// an edge endpoint changes — the graph is small (tens of tthreads)
    /// and edges are recomputed from the region mirrors, so no separate
    /// adjacency structure needs maintaining.
    pub(crate) fn find_cycle(&self, start: TthreadId) -> Option<Vec<TthreadId>> {
        let n = self.outputs.len();
        let s = start.index();
        // Iterative DFS with an explicit path stack so the cycle can be
        // reported in wave order.
        let mut visited = vec![false; n];
        let mut path: Vec<usize> = vec![s];
        let mut iters: Vec<usize> = vec![0];
        while let Some(&node) = path.last() {
            let next = iters.last_mut().expect("stacks move in lockstep");
            let mut advanced = false;
            while *next < n {
                let cand = *next;
                *next += 1;
                if !self.has_edge(node, cand) {
                    continue;
                }
                if cand == s {
                    let mut cycle: Vec<TthreadId> =
                        path.iter().map(|&i| TthreadId::new(i as u32)).collect();
                    cycle.push(start);
                    return Some(cycle);
                }
                if !visited[cand] {
                    visited[cand] = true;
                    path.push(cand);
                    iters.push(0);
                    advanced = true;
                    break;
                }
            }
            if !advanced && path.last() == Some(&node) {
                path.pop();
                iters.pop();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn g() -> DepGraph {
        let mut g = DepGraph::new(Granularity::Exact);
        g.ensure(3);
        g
    }

    fn range(start: u64, len: u64) -> AddrRange {
        AddrRange::new(Addr::new(start), len)
    }

    #[test]
    fn edges_require_overlap_between_output_and_watch() {
        let mut g = g();
        g.add_output(TthreadId::new(0), range(0, 8));
        g.add_watch(TthreadId::new(1), range(4, 8));
        g.add_watch(TthreadId::new(2), range(100, 8));
        let edges = g.edges();
        assert_eq!(
            edges,
            vec![GraphEdge {
                writer: TthreadId::new(0),
                reader: TthreadId::new(1),
            }]
        );
    }

    #[test]
    fn self_loops_are_not_edges() {
        let mut g = g();
        g.add_output(TthreadId::new(0), range(0, 8));
        g.add_watch(TthreadId::new(0), range(0, 8));
        assert!(g.edges().is_empty());
        assert!(g.find_cycle(TthreadId::new(0)).is_none());
    }

    #[test]
    fn word_granularity_widens_overlap() {
        let mut g = DepGraph::new(Granularity::Word);
        g.ensure(1);
        // Disjoint at byte granularity, same 8-byte word.
        g.add_output(TthreadId::new(0), range(0, 1));
        g.add_watch(TthreadId::new(1), range(2, 1));
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn three_node_cycle_is_found_in_wave_order() {
        let mut g = g();
        for (writer, region) in [(0u32, 0u64), (1, 16), (2, 32)] {
            g.add_output(TthreadId::new(writer), range(region, 8));
        }
        // 0 → 1 → 2 → 0.
        g.add_watch(TthreadId::new(1), range(0, 8));
        g.add_watch(TthreadId::new(2), range(16, 8));
        g.add_watch(TthreadId::new(0), range(32, 8));
        let cycle = g.find_cycle(TthreadId::new(0)).expect("cycle exists");
        let ids: Vec<u32> = cycle.iter().map(|id| id.index() as u32).collect();
        assert_eq!(ids, vec![0, 1, 2, 0]);
        // Removing any edge endpoint breaks it.
        g.remove_watch(TthreadId::new(2), range(16, 8));
        assert!(g.find_cycle(TthreadId::new(0)).is_none());
    }

    #[test]
    fn diamond_is_acyclic() {
        let mut g = g();
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3: a join, not a cycle.
        g.add_output(TthreadId::new(0), range(0, 8));
        g.add_output(TthreadId::new(1), range(16, 8));
        g.add_output(TthreadId::new(2), range(24, 8));
        g.add_watch(TthreadId::new(1), range(0, 8));
        g.add_watch(TthreadId::new(2), range(0, 8));
        g.add_watch(TthreadId::new(3), range(16, 16));
        for t in 0..4 {
            assert!(g.find_cycle(TthreadId::new(t)).is_none(), "node {t}");
        }
        assert_eq!(g.edges().len(), 4);
    }

    #[test]
    fn wave_epoch_dedups_per_commit() {
        let mut g = g();
        let t = TthreadId::new(1);
        g.begin_wave();
        assert!(!g.raised_this_epoch(t));
        g.mark_raised(t, 1);
        assert!(g.raised_this_epoch(t));
        assert_eq!(g.wave_depth(t), 1);
        // Deeper raises win; shallower ones don't regress the depth.
        g.mark_raised(t, 3);
        g.mark_raised(t, 2);
        assert_eq!(g.wave_depth(t), 3);
        // A new epoch clears the dedup but not the depth…
        g.begin_wave();
        assert!(!g.raised_this_epoch(t));
        assert_eq!(g.wave_depth(t), 3);
        // …which only the committed execution clears.
        g.clear_depth(t);
        assert_eq!(g.wave_depth(t), 0);
    }

    #[test]
    fn removing_an_output_undoes_the_edge() {
        let mut g = g();
        g.add_output(TthreadId::new(0), range(0, 8));
        g.add_watch(TthreadId::new(1), range(0, 8));
        assert_eq!(g.edges().len(), 1);
        g.remove_output(TthreadId::new(0), range(0, 8));
        assert!(g.edges().is_empty());
    }
}
