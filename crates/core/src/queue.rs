//! The pending-tthread queue.
//!
//! A bounded FIFO with optional *coalescing*: a tthread that is already
//! pending is not enqueued a second time (the two triggers merge, exactly as
//! the hardware thread queue in the paper merges repeated triggers of the
//! same tthread). Capacity pressure is surfaced to the caller so the runtime
//! can apply its [`crate::config::OverflowPolicy`].

use std::collections::VecDeque;

use crate::tthread::TthreadId;

/// Outcome of a push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The tthread was added to the queue.
    Enqueued,
    /// The tthread was already pending and the trigger was absorbed.
    Coalesced,
    /// The queue was full; the caller must fall back per its overflow policy.
    Full,
}

/// Bounded coalescing FIFO of pending tthreads.
///
/// # Examples
///
/// ```
/// use dtt_core::queue::{CoalescingQueue, PushOutcome};
/// use dtt_core::tthread::TthreadId;
///
/// let mut q = CoalescingQueue::new(2, true);
/// let a = TthreadId::new(0);
/// assert_eq!(q.push(a), PushOutcome::Enqueued);
/// assert_eq!(q.push(a), PushOutcome::Coalesced);
/// assert_eq!(q.pop(), Some(a));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CoalescingQueue {
    queue: VecDeque<TthreadId>,
    /// Per-id count of queued occurrences. With coalescing on this is 0 or
    /// 1; with coalescing off it counts duplicates, so `pop` can clear the
    /// pending state in O(1) instead of rescanning the queue.
    pending: Vec<u32>,
    capacity: usize,
    coalesce: bool,
    /// Highest occupancy ever reached (exported by the runtime report and
    /// the observability collector as queue pressure).
    max_len: usize,
}

impl CoalescingQueue {
    /// Creates a queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, coalesce: bool) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        CoalescingQueue {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            pending: Vec::new(),
            capacity,
            coalesce,
            max_len: 0,
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The highest occupancy the queue has ever reached.
    pub fn high_watermark(&self) -> usize {
        self.max_len
    }

    /// Whether `id` is currently queued.
    pub fn contains(&self, id: TthreadId) -> bool {
        self.pending.get(id.index()).copied().unwrap_or(0) > 0
    }

    /// Attempts to enqueue `id`.
    pub fn push(&mut self, id: TthreadId) -> PushOutcome {
        if self.coalesce && self.contains(id) {
            return PushOutcome::Coalesced;
        }
        if self.queue.len() >= self.capacity {
            return PushOutcome::Full;
        }
        if self.pending.len() <= id.index() {
            self.pending.resize(id.index() + 1, 0);
        }
        self.pending[id.index()] += 1;
        self.queue.push_back(id);
        self.max_len = self.max_len.max(self.queue.len());
        PushOutcome::Enqueued
    }

    /// Dequeues the oldest pending tthread.
    pub fn pop(&mut self) -> Option<TthreadId> {
        let id = self.queue.pop_front()?;
        // Without coalescing the same id may appear again; the occurrence
        // count clears the pending state exactly when the last copy leaves.
        self.pending[id.index()] -= 1;
        Some(id)
    }

    /// Removes a specific tthread from anywhere in the queue (used when the
    /// main thread *steals* a queued tthread at a join point). Returns
    /// whether it was present. All queued occurrences are removed.
    pub fn remove(&mut self, id: TthreadId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&q| q != id);
        let removed = self.queue.len() != before;
        if removed {
            self.pending[id.index()] = 0;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TthreadId {
        TthreadId::new(n)
    }

    #[test]
    fn fifo_order() {
        let mut q = CoalescingQueue::new(8, true);
        q.push(id(2));
        q.push(id(0));
        q.push(id(1));
        assert_eq!(q.pop(), Some(id(2)));
        assert_eq!(q.pop(), Some(id(0)));
        assert_eq!(q.pop(), Some(id(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn coalescing_absorbs_duplicates() {
        let mut q = CoalescingQueue::new(8, true);
        assert_eq!(q.push(id(5)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(5)), PushOutcome::Coalesced);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(id(5)));
        assert!(!q.contains(id(5)));
        // After popping, the id can be enqueued again.
        assert_eq!(q.push(id(5)), PushOutcome::Enqueued);
    }

    #[test]
    fn without_coalescing_duplicates_accumulate() {
        let mut q = CoalescingQueue::new(8, false);
        assert_eq!(q.push(id(1)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(1)), PushOutcome::Enqueued);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(id(1)));
        // Still pending: a second copy remains queued.
        assert!(q.contains(id(1)));
        assert_eq!(q.pop(), Some(id(1)));
        assert!(!q.contains(id(1)));
    }

    #[test]
    fn high_watermark_tracks_peak_occupancy() {
        let mut q = CoalescingQueue::new(8, true);
        assert_eq!(q.high_watermark(), 0);
        q.push(id(0));
        q.push(id(1));
        q.push(id(2));
        assert_eq!(q.high_watermark(), 3);
        q.pop();
        q.pop();
        q.pop();
        // Draining does not lower the peak.
        assert_eq!(q.high_watermark(), 3);
        q.push(id(0));
        assert_eq!(q.high_watermark(), 3);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = CoalescingQueue::new(2, true);
        assert_eq!(q.push(id(0)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(1)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(2)), PushOutcome::Full);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.push(id(2)), PushOutcome::Enqueued);
    }

    #[test]
    fn coalesce_checked_before_capacity() {
        // A duplicate of an already-queued tthread coalesces even when the
        // queue is full: the trigger is absorbed, not dropped.
        let mut q = CoalescingQueue::new(2, true);
        q.push(id(0));
        q.push(id(1));
        assert_eq!(q.push(id(0)), PushOutcome::Coalesced);
    }

    #[test]
    fn remove_steals_from_middle() {
        let mut q = CoalescingQueue::new(8, true);
        q.push(id(0));
        q.push(id(1));
        q.push(id(2));
        assert!(q.remove(id(1)));
        assert!(!q.remove(id(1)));
        assert_eq!(q.pop(), Some(id(0)));
        assert_eq!(q.pop(), Some(id(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "queue capacity must be nonzero")]
    fn zero_capacity_panics() {
        CoalescingQueue::new(0, true);
    }

    #[test]
    fn duplicate_heavy_drain_keeps_pending_exact() {
        // Regression for the O(n²) drain: `pop` used to rescan the whole
        // queue per element to decide whether to clear the pending mark.
        // This drain exercises the occurrence-count bookkeeping it replaced.
        let mut q = CoalescingQueue::new(4096, false);
        for round in 0..512u32 {
            q.push(id(round % 4));
        }
        // Every id 0..4 is queued 128 times.
        for n in 0..4 {
            assert!(q.contains(id(n)));
        }
        for expect_round in 0..512u32 {
            assert_eq!(q.pop(), Some(id(expect_round % 4)));
        }
        assert_eq!(q.pop(), None);
        for n in 0..4 {
            assert!(!q.contains(id(n)), "id {n} still pending after drain");
        }
        // The queue is reusable after the drain.
        assert_eq!(q.push(id(2)), PushOutcome::Enqueued);
        assert!(q.contains(id(2)));
    }

    #[test]
    fn remove_clears_all_duplicate_occurrences() {
        let mut q = CoalescingQueue::new(16, false);
        q.push(id(7));
        q.push(id(3));
        q.push(id(7));
        q.push(id(7));
        assert!(q.remove(id(7)));
        assert!(!q.contains(id(7)));
        assert_eq!(q.pop(), Some(id(3)));
        assert_eq!(q.pop(), None);
        // Interleave pops with duplicate pushes: counts stay consistent.
        q.push(id(7));
        q.push(id(7));
        assert_eq!(q.pop(), Some(id(7)));
        assert!(q.contains(id(7)));
        assert_eq!(q.pop(), Some(id(7)));
        assert!(!q.contains(id(7)));
    }
}
