//! The pending-tthread queue.
//!
//! A bounded FIFO with optional *coalescing*: a tthread that is already
//! pending is not enqueued a second time (the two triggers merge, exactly as
//! the hardware thread queue in the paper merges repeated triggers of the
//! same tthread). Capacity pressure is surfaced to the caller so the runtime
//! can apply its [`crate::config::OverflowPolicy`].

use std::collections::VecDeque;

use crate::tthread::TthreadId;

/// Outcome of a push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The tthread was added to the queue.
    Enqueued,
    /// The tthread was already pending and the trigger was absorbed.
    Coalesced,
    /// The queue was full; the caller must fall back per its overflow policy.
    Full,
}

/// Bounded coalescing FIFO of pending tthreads.
///
/// # Examples
///
/// ```
/// use dtt_core::queue::{CoalescingQueue, PushOutcome};
/// use dtt_core::tthread::TthreadId;
///
/// let mut q = CoalescingQueue::new(2, true);
/// let a = TthreadId::new(0);
/// assert_eq!(q.push(a), PushOutcome::Enqueued);
/// assert_eq!(q.push(a), PushOutcome::Coalesced);
/// assert_eq!(q.pop(), Some(a));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CoalescingQueue {
    queue: VecDeque<TthreadId>,
    /// Per-id count of *live* queued occurrences. With coalescing on this
    /// is 0 or 1; with coalescing off it counts duplicates, so `pop` can
    /// clear the pending state in O(1) instead of rescanning the queue.
    pending: Vec<u32>,
    /// Per-id count of *tombstoned* occurrences: entries logically removed
    /// by [`CoalescingQueue::remove`] but still physically in the deque,
    /// skipped lazily by `pop`. Removal used to be an O(n) `retain` scan
    /// under the state lock at every join-steal; tombstoning makes it O(1).
    tombstones: Vec<u32>,
    /// Total tombstoned occurrences across all ids; once the dead entries
    /// exceed half the *live* count, a purge compacts the deque
    /// (amortized O(1) per removal).
    tombstoned: usize,
    capacity: usize,
    coalesce: bool,
    /// Highest occupancy ever reached (exported by the runtime report and
    /// the observability collector as queue pressure).
    max_len: usize,
}

impl CoalescingQueue {
    /// Creates a queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, coalesce: bool) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        CoalescingQueue {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            pending: Vec::new(),
            tombstones: Vec::new(),
            tombstoned: 0,
            capacity,
            coalesce,
            max_len: 0,
        }
    }

    /// Entries currently queued (live occurrences only; lazily-skipped
    /// tombstones do not count).
    pub fn len(&self) -> usize {
        self.queue.len() - self.tombstoned
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The highest occupancy the queue has ever reached.
    pub fn high_watermark(&self) -> usize {
        self.max_len
    }

    /// Whether `id` is currently queued.
    pub fn contains(&self, id: TthreadId) -> bool {
        self.pending.get(id.index()).copied().unwrap_or(0) > 0
    }

    /// Attempts to enqueue `id`.
    pub fn push(&mut self, id: TthreadId) -> PushOutcome {
        if self.coalesce && self.contains(id) {
            return PushOutcome::Coalesced;
        }
        if self.len() >= self.capacity {
            return PushOutcome::Full;
        }
        if self.pending.len() <= id.index() {
            self.pending.resize(id.index() + 1, 0);
        }
        self.pending[id.index()] += 1;
        self.queue.push_back(id);
        self.max_len = self.max_len.max(self.len());
        PushOutcome::Enqueued
    }

    /// Dequeues the oldest pending tthread, lazily discarding occurrences
    /// tombstoned by [`CoalescingQueue::remove`]. A tombstoned occurrence
    /// is always older than any live re-push of the same id, so consuming
    /// tombstones front-to-back never discards a live entry.
    pub fn pop(&mut self) -> Option<TthreadId> {
        while let Some(id) = self.queue.pop_front() {
            if let Some(t) = self.tombstones.get_mut(id.index()) {
                if *t > 0 {
                    *t -= 1;
                    self.tombstoned -= 1;
                    continue;
                }
            }
            // Without coalescing the same id may appear again; the
            // occurrence count clears the pending state exactly when the
            // last copy leaves.
            self.pending[id.index()] -= 1;
            return Some(id);
        }
        None
    }

    /// Removes a specific tthread from anywhere in the queue (used when the
    /// main thread *steals* a queued tthread at a join point). Returns
    /// whether it was present. All queued occurrences are removed — in O(1)
    /// per call: the occurrences are tombstoned where they sit and skipped
    /// when `pop` reaches them.
    pub fn remove(&mut self, id: TthreadId) -> bool {
        let n = self.pending.get(id.index()).copied().unwrap_or(0);
        if n == 0 {
            return false;
        }
        self.pending[id.index()] = 0;
        if self.tombstones.len() <= id.index() {
            self.tombstones.resize(id.index() + 1, 0);
        }
        self.tombstones[id.index()] += n;
        self.tombstoned += n as usize;
        // Compact once the tombstones exceed half the *live* entries.
        // Comparing against the physical deque length was too lax: since
        // the physical length includes the tombstones themselves, that
        // threshold let dead entries pile up to the live count, so a
        // steal-heavy phase over a large standing queue paid for the dead
        // weight on every subsequent pop. Against the live count, dead
        // entries are bounded by live/2, while each purge — O(live +
        // tombstoned) — still happens only after tombstoned > live/2
        // removals, keeping the amortized cost per removal O(1).
        if self.tombstoned * 2 > self.len() {
            self.purge();
        }
        true
    }

    /// Drops every tombstoned occurrence, compacting the physical deque.
    fn purge(&mut self) {
        if self.tombstoned == 0 {
            return;
        }
        let mut compacted = VecDeque::with_capacity(self.len().min(1024));
        for id in self.queue.drain(..) {
            match self.tombstones.get_mut(id.index()) {
                Some(t) if *t > 0 => *t -= 1,
                _ => compacted.push_back(id),
            }
        }
        self.queue = compacted;
        self.tombstoned = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TthreadId {
        TthreadId::new(n)
    }

    #[test]
    fn fifo_order() {
        let mut q = CoalescingQueue::new(8, true);
        q.push(id(2));
        q.push(id(0));
        q.push(id(1));
        assert_eq!(q.pop(), Some(id(2)));
        assert_eq!(q.pop(), Some(id(0)));
        assert_eq!(q.pop(), Some(id(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn coalescing_absorbs_duplicates() {
        let mut q = CoalescingQueue::new(8, true);
        assert_eq!(q.push(id(5)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(5)), PushOutcome::Coalesced);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(id(5)));
        assert!(!q.contains(id(5)));
        // After popping, the id can be enqueued again.
        assert_eq!(q.push(id(5)), PushOutcome::Enqueued);
    }

    #[test]
    fn without_coalescing_duplicates_accumulate() {
        let mut q = CoalescingQueue::new(8, false);
        assert_eq!(q.push(id(1)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(1)), PushOutcome::Enqueued);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(id(1)));
        // Still pending: a second copy remains queued.
        assert!(q.contains(id(1)));
        assert_eq!(q.pop(), Some(id(1)));
        assert!(!q.contains(id(1)));
    }

    #[test]
    fn high_watermark_tracks_peak_occupancy() {
        let mut q = CoalescingQueue::new(8, true);
        assert_eq!(q.high_watermark(), 0);
        q.push(id(0));
        q.push(id(1));
        q.push(id(2));
        assert_eq!(q.high_watermark(), 3);
        q.pop();
        q.pop();
        q.pop();
        // Draining does not lower the peak.
        assert_eq!(q.high_watermark(), 3);
        q.push(id(0));
        assert_eq!(q.high_watermark(), 3);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = CoalescingQueue::new(2, true);
        assert_eq!(q.push(id(0)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(1)), PushOutcome::Enqueued);
        assert_eq!(q.push(id(2)), PushOutcome::Full);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.push(id(2)), PushOutcome::Enqueued);
    }

    #[test]
    fn coalesce_checked_before_capacity() {
        // A duplicate of an already-queued tthread coalesces even when the
        // queue is full: the trigger is absorbed, not dropped.
        let mut q = CoalescingQueue::new(2, true);
        q.push(id(0));
        q.push(id(1));
        assert_eq!(q.push(id(0)), PushOutcome::Coalesced);
    }

    #[test]
    fn remove_steals_from_middle() {
        let mut q = CoalescingQueue::new(8, true);
        q.push(id(0));
        q.push(id(1));
        q.push(id(2));
        assert!(q.remove(id(1)));
        assert!(!q.remove(id(1)));
        assert_eq!(q.pop(), Some(id(0)));
        assert_eq!(q.pop(), Some(id(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "queue capacity must be nonzero")]
    fn zero_capacity_panics() {
        CoalescingQueue::new(0, true);
    }

    #[test]
    fn duplicate_heavy_drain_keeps_pending_exact() {
        // Regression for the O(n²) drain: `pop` used to rescan the whole
        // queue per element to decide whether to clear the pending mark.
        // This drain exercises the occurrence-count bookkeeping it replaced.
        let mut q = CoalescingQueue::new(4096, false);
        for round in 0..512u32 {
            q.push(id(round % 4));
        }
        // Every id 0..4 is queued 128 times.
        for n in 0..4 {
            assert!(q.contains(id(n)));
        }
        for expect_round in 0..512u32 {
            assert_eq!(q.pop(), Some(id(expect_round % 4)));
        }
        assert_eq!(q.pop(), None);
        for n in 0..4 {
            assert!(!q.contains(id(n)), "id {n} still pending after drain");
        }
        // The queue is reusable after the drain.
        assert_eq!(q.push(id(2)), PushOutcome::Enqueued);
        assert!(q.contains(id(2)));
    }

    #[test]
    fn interleaved_steals_duplicates_and_drains_stay_consistent() {
        // Regression for the tombstone rewrite of `remove`: interleave
        // duplicate pushes (coalescing off), mid-queue steals, re-pushes of
        // stolen ids, and partial drains, checking that pop order, pending
        // marks, and occupancy all match a straightforward model.
        let mut q = CoalescingQueue::new(64, false);
        let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        // A deterministic schedule mixing the three operations.
        for step in 0..400u32 {
            match step % 7 {
                // Duplicate-heavy pushes over a small id set.
                0 | 1 | 3 | 5 => {
                    let n = step % 5;
                    if q.push(id(n)) == PushOutcome::Enqueued {
                        model.push_back(n);
                    }
                }
                // Steal: all occurrences of one id vanish at once.
                2 => {
                    let n = (step / 7) % 5;
                    let present = model.contains(&n);
                    assert_eq!(q.remove(id(n)), present, "remove at step {step}");
                    model.retain(|&m| m != n);
                    // A stolen id is immediately re-pushable; the stale
                    // tombstones must not swallow the fresh entry.
                    if q.push(id(n)) == PushOutcome::Enqueued {
                        model.push_back(n);
                    }
                }
                // Partial drains.
                _ => {
                    assert_eq!(q.pop().map(|i| i.index() as u32), model.pop_front());
                }
            }
            assert_eq!(q.len(), model.len(), "occupancy at step {step}");
            for n in 0..5 {
                assert_eq!(
                    q.contains(id(n)),
                    model.contains(&n),
                    "pending at step {step}"
                );
            }
        }
        // Full drain matches the model to the end.
        while let Some(expect) = model.pop_front() {
            assert_eq!(q.pop(), Some(id(expect)));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn repeated_push_remove_cycles_do_not_grow_the_deque() {
        // The lazy-skip scheme must compact: a workload that only pushes
        // and steals (never pops) used to be the O(n) retain's worst case
        // and is the tombstone scheme's unbounded-growth hazard.
        let mut q = CoalescingQueue::new(8, true);
        for _ in 0..10_000 {
            assert_eq!(q.push(id(3)), PushOutcome::Enqueued);
            assert!(q.remove(id(3)));
        }
        assert!(q.is_empty());
        // Physical storage stayed bounded (purge keeps it under control).
        assert!(q.queue.len() <= 2, "deque grew to {}", q.queue.len());
        assert_eq!(q.push(id(3)), PushOutcome::Enqueued);
        assert_eq!(q.pop(), Some(id(3)));
    }

    #[test]
    fn steal_churn_over_a_standing_queue_stays_compact() {
        // Regression for the purge threshold: against the *physical*
        // length, a steal-heavy churn over a large standing population
        // accumulated one dead entry per live one before compacting. The
        // live-count threshold bounds tombstones to half the live
        // entries at every step.
        let mut q = CoalescingQueue::new(4096, true);
        // A standing population of 512 ids that never gets stolen.
        for n in 0..512 {
            assert_eq!(q.push(id(n)), PushOutcome::Enqueued);
        }
        // Churn: repeatedly enqueue-then-steal a disjoint hot set.
        for round in 0..2000u32 {
            let hot = 512 + (round % 64);
            assert_eq!(q.push(id(hot)), PushOutcome::Enqueued);
            assert!(q.remove(id(hot)));
            assert_eq!(q.len(), 512, "live count drifted at round {round}");
            assert!(
                q.queue.len() <= 512 + 512 / 2 + 1,
                "deque held {} entries for 512 live at round {round}",
                q.queue.len()
            );
        }
        // The standing population drains intact, in order.
        for n in 0..512 {
            assert_eq!(q.pop(), Some(id(n)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn remove_clears_all_duplicate_occurrences() {
        let mut q = CoalescingQueue::new(16, false);
        q.push(id(7));
        q.push(id(3));
        q.push(id(7));
        q.push(id(7));
        assert!(q.remove(id(7)));
        assert!(!q.contains(id(7)));
        assert_eq!(q.pop(), Some(id(3)));
        assert_eq!(q.pop(), None);
        // Interleave pops with duplicate pushes: counts stay consistent.
        q.push(id(7));
        q.push(id(7));
        assert_eq!(q.pop(), Some(id(7)));
        assert!(q.contains(id(7)));
        assert_eq!(q.pop(), Some(id(7)));
        assert!(!q.contains(id(7)));
    }
}
