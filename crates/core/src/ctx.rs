//! The execution context: tracked memory access plus trigger dispatch.
//!
//! A [`Ctx`] is how both the main thread (inside
//! [`crate::runtime::Runtime::with`]) and tthread bodies touch program
//! state. Every tracked store funnels through [`Ctx::set`]/[`Ctx::write`],
//! where the DTT pipeline runs:
//!
//! 1. write the bytes, comparing against the old contents;
//! 2. if the store was *silent* (value unchanged) — stop: no trigger;
//! 3. look the store up in the trigger table;
//! 4. for each matched tthread, advance its status machine: mark triggered,
//!    enqueue for a worker, coalesce with a pending instance, or fall back
//!    to inline execution when the queue is full.

use crate::config::OverflowPolicy;
use crate::error::Error;
use crate::handle::{Tracked, TrackedArray};
use crate::pod::Pod;
use crate::runtime::{Inner, State};
use crate::tthread::{TthreadId, TthreadStatus};

/// Mutable view of the runtime state handed to main-thread regions and
/// tthread bodies.
///
/// A `Ctx` borrows the runtime's state lock, so it cannot be stored; it
/// lives only for the duration of a [`crate::runtime::Runtime::with`] call
/// or a tthread execution.
pub struct Ctx<'a, U> {
    pub(crate) state: &'a mut State<U>,
    pub(crate) inner: &'a Inner<U>,
    pub(crate) depth: u32,
}

impl<'a, U: Send + 'static> Ctx<'a, U> {
    pub(crate) fn new(state: &'a mut State<U>, inner: &'a Inner<U>, depth: u32) -> Self {
        Ctx { state, inner, depth }
    }

    /// Shared access to the untracked user state.
    pub fn user(&self) -> &U {
        &self.state.user
    }

    /// Exclusive access to the untracked user state.
    ///
    /// Writes through this reference are *not* observed by the trigger
    /// mechanism; keep trigger-relevant data in tracked memory.
    pub fn user_mut(&mut self) -> &mut U {
        &mut self.state.user
    }

    /// Loads a tracked scalar.
    pub fn get<T: Pod>(&mut self, cell: Tracked<T>) -> T {
        self.state.stats.tracked_loads += 1;
        self.state.heap.load(cell.addr())
    }

    /// Stores a tracked scalar, firing triggers if the value changed.
    pub fn set<T: Pod>(&mut self, cell: Tracked<T>, value: T) {
        let detect = self.inner.cfg.suppress_silent_stores;
        let effect = self.state.heap.store(cell.addr(), value, detect);
        self.state.stats.tracked_stores += 1;
        self.state.stats.bytes_compared += effect.bytes_compared;
        if detect && !effect.changed {
            self.state.stats.silent_stores += 1;
            return;
        }
        self.state.stats.changing_stores += 1;
        self.dispatch(cell.range());
    }

    /// Loads element `index` of a tracked array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read<T: Pod>(&mut self, array: TrackedArray<T>, index: usize) -> T {
        self.get(array.at(index))
    }

    /// Stores element `index` of a tracked array, firing triggers if the
    /// value changed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write<T: Pod>(&mut self, array: TrackedArray<T>, index: usize, value: T) {
        self.set(array.at(index), value);
    }

    /// Writes a tracked scalar *without* consulting the trigger mechanism.
    ///
    /// Intended for initialization: the write is unconditional, is not
    /// counted as a tracked store, and never fires a trigger.
    pub fn init<T: Pod>(&mut self, cell: Tracked<T>, value: T) {
        self.state.heap.store(cell.addr(), value, false);
    }

    /// Array form of [`Ctx::init`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn init_at<T: Pod>(&mut self, array: TrackedArray<T>, index: usize, value: T) {
        self.init(array.at(index), value);
    }

    /// Reads a whole tracked array into a `Vec` (counts one tracked load per
    /// element).
    pub fn read_all<T: Pod>(&mut self, array: TrackedArray<T>) -> Vec<T> {
        (0..array.len()).map(|i| self.read(array, i)).collect()
    }

    /// Bulk-loads elements `[from, to)` of a tracked array into `out`
    /// (cleared first). Semantically identical to `to - from` calls of
    /// [`Ctx::read`], but with a single bounds check and a tight decode
    /// loop — use it when a tthread snapshots a whole input array.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > array.len()`.
    pub fn read_slice_into<T: Pod>(
        &mut self,
        array: TrackedArray<T>,
        from: usize,
        to: usize,
        out: &mut Vec<T>,
    ) {
        out.clear();
        if from == to {
            return;
        }
        let bytes = self.state.heap.load_bytes(array.range_of(from, to));
        out.reserve(to - from);
        for chunk in bytes.chunks_exact(T::SIZE) {
            out.push(T::read_le(chunk));
        }
        self.state.stats.tracked_loads += (to - from) as u64;
    }

    /// Bulk-loads the whole array; see [`Ctx::read_slice_into`].
    pub fn read_all_into<T: Pod>(&mut self, array: TrackedArray<T>, out: &mut Vec<T>) {
        self.read_slice_into(array, 0, array.len(), out);
    }

    /// Bulk-stores `values` over elements starting at `from`.
    ///
    /// Change detection runs per element, exactly as if each element were
    /// written with [`Ctx::write`]; consecutive *changed* elements are
    /// dispatched to the trigger table as one store range, so trigger
    /// *counts* can be lower than with element-wise writes while the set of
    /// tthreads that become dirty is identical.
    ///
    /// # Panics
    ///
    /// Panics if `from + values.len() > array.len()`.
    pub fn write_slice<T: Pod>(&mut self, array: TrackedArray<T>, from: usize, values: &[T]) {
        let n = values.len();
        if n == 0 {
            return;
        }
        let detect = self.inner.cfg.suppress_silent_stores;
        let range = array.range_of(from, from + n);
        // Phase 1: compare + copy per element, collecting runs of changed
        // elements.
        let mut runs: Vec<(usize, usize)> = Vec::new();
        {
            let slice = self.state.heap.slice_mut(range);
            let mut buf = [0u8; 16];
            let mut run_start: Option<usize> = None;
            for (k, v) in values.iter().enumerate() {
                let enc = &mut buf[..T::SIZE];
                v.write_le(enc);
                let dst = &mut slice[k * T::SIZE..(k + 1) * T::SIZE];
                let changed = !detect || dst != &*enc;
                if changed {
                    dst.copy_from_slice(enc);
                    if run_start.is_none() {
                        run_start = Some(k);
                    }
                } else if let Some(start) = run_start.take() {
                    runs.push((start, k));
                }
            }
            if let Some(start) = run_start {
                runs.push((start, n));
            }
        }
        // Phase 2: stats and trigger dispatch per changed run.
        let changed_elems: usize = runs.iter().map(|(a, b)| b - a).sum();
        self.state.stats.tracked_stores += n as u64;
        if detect {
            self.state.stats.bytes_compared += (n * T::SIZE) as u64;
            self.state.stats.silent_stores += (n - changed_elems) as u64;
        }
        self.state.stats.changing_stores += changed_elems as u64;
        for (a, b) in runs {
            self.dispatch(array.range_of(from + a, from + b));
        }
    }

    /// Route every store through the trigger table and raise matched
    /// tthreads.
    fn dispatch(&mut self, store_range: crate::addr::AddrRange) {
        let hits = self.state.triggers.lookup(store_range);
        if hits.is_empty() {
            return;
        }
        self.state.stats.triggering_stores += 1;
        for hit in hits {
            self.state.stats.triggers_fired += 1;
            if !hit.precise {
                self.state.stats.false_triggers += 1;
            }
            if self.depth > 0 {
                self.state.stats.cascade_triggers += 1;
            }
            self.raise(hit.tthread);
        }
    }

    /// Advance the status machine of `id` for one trigger.
    pub(crate) fn raise(&mut self, id: TthreadId) {
        self.state.tst.entry_mut(id).triggers += 1;
        match self.state.tst.entry(id).status {
            TthreadStatus::Running => {
                self.state.tst.entry_mut(id).retrigger = true;
                self.state.stats.coalesced_triggers += 1;
            }
            TthreadStatus::Triggered => {
                self.state.stats.coalesced_triggers += 1;
            }
            TthreadStatus::Queued => {
                if self.inner.cfg.coalesce {
                    self.state.stats.coalesced_triggers += 1;
                } else {
                    self.enqueue(id);
                }
            }
            TthreadStatus::Clean => {
                if self.inner.cfg.is_deferred() {
                    self.state.tst.entry_mut(id).status = TthreadStatus::Triggered;
                } else {
                    self.enqueue(id);
                }
            }
        }
    }

    /// Push `id` onto the worker queue, applying the overflow policy.
    fn enqueue(&mut self, id: TthreadId) {
        use crate::queue::PushOutcome;
        match self.state.queue.push(id) {
            PushOutcome::Enqueued => {
                self.state.tst.entry_mut(id).status = TthreadStatus::Queued;
                self.state.stats.enqueues += 1;
                self.inner.work_cv.notify_one();
            }
            PushOutcome::Coalesced => {
                self.state.stats.coalesced_triggers += 1;
            }
            PushOutcome::Full => {
                self.state.stats.queue_overflows += 1;
                match self.inner.cfg.overflow {
                    OverflowPolicy::ExecuteInline => self.run_inline(id),
                    OverflowPolicy::DeferToJoin => {
                        self.state.tst.entry_mut(id).status = TthreadStatus::Triggered;
                    }
                }
            }
        }
    }

    /// Execute tthread `id` on the current thread, re-running while
    /// retriggered.
    ///
    /// # Panics
    ///
    /// Panics if the trigger cascade exceeds
    /// [`crate::config::Config::max_cascade_depth`]. A panic from the
    /// tthread body itself is re-raised after the tthread is marked
    /// poisoned, so the runtime stays usable.
    pub(crate) fn run_inline(&mut self, id: TthreadId) {
        let next_depth = self.depth + 1;
        assert!(
            next_depth <= self.inner.cfg.max_cascade_depth,
            "{}",
            Error::CascadeDepthExceeded(self.inner.cfg.max_cascade_depth)
        );
        let func = self.inner.tthread_fn(id);
        loop {
            self.state.tst.entry_mut(id).status = TthreadStatus::Running;
            self.state.tst.entry_mut(id).retrigger = false;
            let outcome = {
                let mut nested = Ctx::new(self.state, self.inner, next_depth);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(&mut nested)))
            };
            if let Err(payload) = outcome {
                let entry = self.state.tst.entry_mut(id);
                entry.poisoned = true;
                entry.retrigger = false;
                entry.status = TthreadStatus::Clean;
                self.inner.done_cv.notify_all();
                std::panic::resume_unwind(payload);
            }
            self.state.stats.executions += 1;
            self.state.stats.inline_executions += 1;
            let entry = self.state.tst.entry_mut(id);
            entry.executions += 1;
            if !entry.retrigger {
                entry.status = TthreadStatus::Clean;
                break;
            }
        }
        self.inner.done_cv.notify_all();
    }
}
