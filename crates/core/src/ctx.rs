//! The execution context: tracked memory access plus trigger dispatch.
//!
//! A [`Ctx`] is how both the main thread (inside
//! [`crate::runtime::Runtime::with`]) and tthread bodies touch program
//! state. Every tracked store funnels through [`Ctx::set`]/[`Ctx::write`],
//! where the DTT pipeline runs:
//!
//! 1. write the bytes, comparing against the old contents;
//! 2. if the store was *silent* (value unchanged) — stop: no trigger;
//! 3. look the store up in the trigger table;
//! 4. for each matched tthread, advance its status machine: mark triggered,
//!    enqueue for a worker, coalesce with a pending instance, or fall back
//!    to inline execution when the queue is full.
//!
//! # Locked and detached execution
//!
//! A `Ctx` runs in one of two modes, invisible to user code:
//!
//! * **Locked** — the context borrows the runtime state under the global
//!   state lock. Main-thread regions, joins, the deferred executor and
//!   inline overflow executions all run locked; stores dispatch triggers
//!   immediately.
//! * **Detached** — used by worker threads when
//!   [`crate::config::Config::detached_execution`] is on. The body runs
//!   against a *privatized* snapshot of tracked memory taken under the lock
//!   (the privatization pattern of Balaji et al.): loads read the snapshot,
//!   stores apply to the snapshot and append to a write log. No triggers
//!   fire during the body; the worker reacquires the lock afterwards and
//!   *commits* the log — replaying the stores against live memory and
//!   dispatching triggers for the ones that still change it. Accessing the
//!   untracked user state from a detached body acquires the state lock (it
//!   cannot be snapshotted) and holds it through commit.

use std::cell::OnceCell;

use parking_lot::MutexGuard;

use crate::config::OverflowPolicy;
use crate::error::Error;
use crate::handle::{Tracked, TrackedArray};
use crate::heap::TrackedHeap;
use crate::obs::EventKind;
use crate::pod::Pod;
use crate::runtime::{Inner, State};
use crate::stats::Counters;
use crate::trigger::TriggerHit;
use crate::tthread::{TthreadId, TthreadStatus};

/// One store recorded by a detached execution, replayed at commit.
pub(crate) struct LoggedStore {
    /// Byte range the store covers.
    pub(crate) range: crate::addr::AddrRange,
    /// The bytes written.
    pub(crate) data: Vec<u8>,
    /// Whether the store consults the trigger table at commit
    /// (`false` for [`Ctx::init`]-style writes).
    pub(crate) dispatch: bool,
}

/// What one raise did to the target's status machine, as far as cascade
/// accounting cares: did it *activate* a new pending execution (enqueue,
/// defer, inline overflow run) or *coalesce* into one already pending?
/// Feeds the wave conservation identity
/// `cascades == cascade_enqueues + cascade_coalesced + cascade_cutoffs`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RaiseKind {
    /// The raise produced (or re-armed) a pending execution.
    Activated,
    /// The raise was absorbed by an already-pending or running instance.
    Coalesced,
}

/// The privatized view backing a detached execution.
pub(crate) struct DetachedView<'a, U> {
    /// Snapshot of tracked memory taken under the lock at execution start.
    snap: TrackedHeap,
    /// Stores performed by the body, in program order.
    log: Vec<LoggedStore>,
    /// Memory-access counters accumulated off the lock, merged at commit.
    delta: Counters,
    /// Lazily acquired state lock for user-state access; once taken it is
    /// held until commit, which reuses it instead of relocking.
    guard: OnceCell<MutexGuard<'a, State<U>>>,
}

enum CtxMode<'a, U> {
    Locked(&'a mut State<U>),
    // Boxed: the view embeds a whole TrackedHeap, which would otherwise
    // bloat every locked context.
    Detached(Box<DetachedView<'a, U>>),
}

/// Mutable view of the runtime state handed to main-thread regions and
/// tthread bodies.
///
/// A `Ctx` borrows the runtime's state lock (or, for a worker running
/// detached, a snapshot of tracked memory), so it cannot be stored; it
/// lives only for the duration of a [`crate::runtime::Runtime::with`] call
/// or a tthread execution.
pub struct Ctx<'a, U> {
    mode: CtxMode<'a, U>,
    pub(crate) inner: &'a Inner<U>,
    pub(crate) depth: u32,
    /// The tthread whose body or commit this context serves (`None` for
    /// main-thread regions and accessor-funneled raises). A raise from a
    /// `cur`-carrying context onto a *different* tthread is one wave unit
    /// of the incremental computation graph (see [`crate::graph`]).
    pub(crate) cur: Option<TthreadId>,
    /// When set, [`Ctx::raise_hits`] skips hits on `cur` itself: the
    /// invalidate-on-write ablation ([`crate::config::Config::early_cutoff`]
    /// off) propagates silent lines downstream without re-arming the
    /// silence-gated self-retrigger loop.
    pub(crate) skip_self_raise: bool,
    /// Tracked store operations this (locked body) context dispatched,
    /// silent or not — the early-cutoff denominator.
    pub(crate) body_dispatched: u64,
    /// How many of those actually changed memory. A cascade-raised body
    /// with `body_dispatched > 0 && body_changed == 0` stops the wave.
    pub(crate) body_changed: u64,
}

impl<'a, U: Send + 'static> Ctx<'a, U> {
    pub(crate) fn new(state: &'a mut State<U>, inner: &'a Inner<U>, depth: u32) -> Self {
        Self::new_for(state, inner, depth, None)
    }

    /// A locked context attributed to a tthread: used for bodies (inline
    /// and attached) and for commit replays, where raises onto other
    /// tthreads are cascade wave units.
    pub(crate) fn new_for(
        state: &'a mut State<U>,
        inner: &'a Inner<U>,
        depth: u32,
        cur: Option<TthreadId>,
    ) -> Self {
        Ctx {
            mode: CtxMode::Locked(state),
            inner,
            depth,
            cur,
            skip_self_raise: false,
            body_dispatched: 0,
            body_changed: 0,
        }
    }

    /// Creates a detached context over a snapshot of tracked memory.
    pub(crate) fn detached(snap: TrackedHeap, inner: &'a Inner<U>, depth: u32) -> Self {
        Ctx {
            mode: CtxMode::Detached(Box::new(DetachedView {
                snap,
                log: Vec::new(),
                delta: Counters::new(),
                guard: OnceCell::new(),
            })),
            inner,
            depth,
            cur: None,
            skip_self_raise: false,
            body_dispatched: 0,
            body_changed: 0,
        }
    }

    /// Tears a detached context apart for commit: the state-lock guard if
    /// the body acquired one (for user-state access), the write log, and
    /// the off-lock counter delta.
    ///
    /// # Panics
    ///
    /// Panics on a locked context.
    pub(crate) fn into_detached_parts(
        self,
    ) -> (Option<MutexGuard<'a, State<U>>>, Vec<LoggedStore>, Counters) {
        match self.mode {
            CtxMode::Detached(view) => {
                let view = *view;
                (view.guard.into_inner(), view.log, view.delta)
            }
            CtxMode::Locked(_) => unreachable!("only detached contexts are committed"),
        }
    }

    /// The locked runtime state; trigger dispatch and the status machine
    /// only ever run here.
    fn locked(&mut self) -> &mut State<U> {
        match &mut self.mode {
            CtxMode::Locked(state) => state,
            CtxMode::Detached(_) => {
                unreachable!("trigger dispatch runs only under the state lock")
            }
        }
    }

    /// Records one status-machine lifecycle event (no-op when observability
    /// is off; the guard is a single relaxed load).
    #[inline]
    fn obs_status(&self, kind: EventKind, id: TthreadId, payload: u64) {
        if self.inner.obs.on() {
            self.inner
                .obs
                .record(self.inner.obs.status_ring(), kind, Some(id), payload);
        }
    }

    /// Records a store event into the ring of the shard `addr` hashes to.
    #[inline]
    fn obs_store(&self, kind: EventKind, addr: crate::addr::Addr) {
        self.inner
            .obs
            .record(self.inner.mem.shard_of(addr), kind, None, addr.raw());
    }

    /// Shared access to the untracked user state.
    ///
    /// From a detached worker execution this acquires the runtime's state
    /// lock on first access (user state cannot be snapshotted) and holds it
    /// until the execution commits; see the module docs.
    pub fn user(&self) -> &U {
        let inner = self.inner;
        match &self.mode {
            CtxMode::Locked(state) => &state.user,
            CtxMode::Detached(view) => &view.guard.get_or_init(|| inner.state.lock()).user,
        }
    }

    /// Exclusive access to the untracked user state.
    ///
    /// Writes through this reference are *not* observed by the trigger
    /// mechanism; keep trigger-relevant data in tracked memory. The locking
    /// behaviour from detached executions matches [`Ctx::user`].
    pub fn user_mut(&mut self) -> &mut U {
        let inner = self.inner;
        match &mut self.mode {
            CtxMode::Locked(state) => &mut state.user,
            CtxMode::Detached(view) => {
                view.guard.get_or_init(|| inner.state.lock());
                &mut view.guard.get_mut().expect("guard initialized above").user
            }
        }
    }

    /// Loads a tracked scalar.
    pub fn get<T: Pod>(&mut self, cell: Tracked<T>) -> T {
        if let CtxMode::Detached(view) = &mut self.mode {
            view.delta.tracked_loads += 1;
            return view.snap.load(cell.addr());
        }
        // Locked mode holds the state lock, so the counter is a plain add on
        // the global stats; only the lock-free Accessor path needs the
        // atomic per-shard slots.
        self.locked().stats.tracked_loads += 1;
        self.inner.mem.load(cell.addr())
    }

    /// Stores a tracked scalar, firing triggers if the value changed.
    ///
    /// From a detached execution the change check runs against the
    /// snapshot, the store is logged, and triggers fire at commit time if
    /// the store still changes live memory.
    pub fn set<T: Pod>(&mut self, cell: Tracked<T>, value: T) {
        let detect = self.inner.cfg.suppress_silent_stores;
        if let CtxMode::Detached(view) = &mut self.mode {
            let effect = view.snap.store(cell.addr(), value, detect);
            view.delta.tracked_stores += 1;
            view.delta.bytes_compared += effect.bytes_compared;
            if detect && !effect.changed {
                view.delta.silent_stores += 1;
                if self.inner.cfg.early_cutoff {
                    return;
                }
                // Invalidate-on-write ablation: keep the silent store in the
                // log so the commit replay still walks its line and can
                // propagate the wave downstream. It is not a changing store;
                // the replay's own change re-detection classifies it again.
                let mut buf = [0u8; 16];
                let enc = &mut buf[..T::SIZE];
                value.write_le(enc);
                view.log.push(LoggedStore {
                    range: cell.range(),
                    data: enc.to_vec(),
                    dispatch: true,
                });
                return;
            }
            view.delta.changing_stores += 1;
            let mut buf = [0u8; 16];
            let enc = &mut buf[..T::SIZE];
            value.write_le(enc);
            view.log.push(LoggedStore {
                range: cell.range(),
                data: enc.to_vec(),
                dispatch: true,
            });
            return;
        }
        let effect = self.inner.mem.store(cell.addr(), value, detect);
        let in_body = self.depth > 0 && self.cur.is_some();
        let stats = &mut self.locked().stats;
        stats.tracked_stores += 1;
        stats.bytes_compared += effect.bytes_compared;
        if detect && !effect.changed {
            stats.silent_stores += 1;
            if in_body {
                self.body_dispatched += 1;
            }
            if self.inner.obs.on() {
                self.obs_store(EventKind::Store, cell.addr());
            }
            if in_body && !self.inner.cfg.early_cutoff {
                // Invalidate-on-write ablation: silent lines still
                // propagate the wave to *other* tthreads; the raise on the
                // writer itself stays silence-gated (else every silent
                // rewrite would re-arm its own retrigger loop).
                let prev = self.skip_self_raise;
                self.skip_self_raise = true;
                self.dispatch(cell.range());
                self.skip_self_raise = prev;
            }
            return;
        }
        stats.changing_stores += 1;
        if in_body {
            self.body_dispatched += 1;
            self.body_changed += 1;
        }
        if self.inner.obs.on() {
            self.obs_store(EventKind::ChangeDetected, cell.addr());
        }
        self.dispatch(cell.range());
    }

    /// Loads element `index` of a tracked array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read<T: Pod>(&mut self, array: TrackedArray<T>, index: usize) -> T {
        self.get(array.at(index))
    }

    /// Stores element `index` of a tracked array, firing triggers if the
    /// value changed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write<T: Pod>(&mut self, array: TrackedArray<T>, index: usize, value: T) {
        self.set(array.at(index), value);
    }

    /// Writes a tracked scalar *without* consulting the trigger mechanism.
    ///
    /// Intended for initialization: the write is unconditional, is not
    /// counted as a tracked store, and never fires a trigger.
    pub fn init<T: Pod>(&mut self, cell: Tracked<T>, value: T) {
        if let CtxMode::Detached(view) = &mut self.mode {
            view.snap.store(cell.addr(), value, false);
            let mut buf = [0u8; 16];
            let enc = &mut buf[..T::SIZE];
            value.write_le(enc);
            view.log.push(LoggedStore {
                range: cell.range(),
                data: enc.to_vec(),
                dispatch: false,
            });
            return;
        }
        self.inner.mem.store(cell.addr(), value, false);
    }

    /// Array form of [`Ctx::init`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn init_at<T: Pod>(&mut self, array: TrackedArray<T>, index: usize, value: T) {
        self.init(array.at(index), value);
    }

    /// Reads a whole tracked array into a `Vec` (counts one tracked load per
    /// element).
    pub fn read_all<T: Pod>(&mut self, array: TrackedArray<T>) -> Vec<T> {
        (0..array.len()).map(|i| self.read(array, i)).collect()
    }

    /// Bulk-loads elements `[from, to)` of a tracked array into `out`
    /// (cleared first). Semantically identical to `to - from` calls of
    /// [`Ctx::read`], but with a single bounds check and a tight decode
    /// loop — use it when a tthread snapshots a whole input array.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > array.len()`.
    pub fn read_slice_into<T: Pod>(
        &mut self,
        array: TrackedArray<T>,
        from: usize,
        to: usize,
        out: &mut Vec<T>,
    ) {
        out.clear();
        if from == to {
            return;
        }
        let range = array.range_of(from, to);
        out.reserve(to - from);
        if let CtxMode::Detached(view) = &mut self.mode {
            let bytes = view.snap.load_bytes(range);
            for chunk in bytes.chunks_exact(T::SIZE) {
                out.push(T::read_le(chunk));
            }
            view.delta.tracked_loads += (to - from) as u64;
            return;
        }
        self.inner.mem.load_elems(range, out);
        self.locked().stats.tracked_loads += (to - from) as u64;
    }

    /// Bulk-loads the whole array; see [`Ctx::read_slice_into`].
    pub fn read_all_into<T: Pod>(&mut self, array: TrackedArray<T>, out: &mut Vec<T>) {
        self.read_slice_into(array, 0, array.len(), out);
    }

    /// Bulk-stores `values` over elements starting at `from`.
    ///
    /// Change detection runs per element, exactly as if each element were
    /// written with [`Ctx::write`]; consecutive *changed* elements are
    /// dispatched to the trigger table as one store range, so trigger
    /// *counts* can be lower than with element-wise writes while the set of
    /// tthreads that become dirty is identical.
    ///
    /// # Panics
    ///
    /// Panics if `from + values.len() > array.len()`.
    pub fn write_slice<T: Pod>(&mut self, array: TrackedArray<T>, from: usize, values: &[T]) {
        let n = values.len();
        if n == 0 {
            return;
        }
        let detect = self.inner.cfg.suppress_silent_stores;
        let range = array.range_of(from, from + n);
        if let CtxMode::Detached(view) = &mut self.mode {
            // Phase 1: compare + copy per element against the snapshot,
            // collecting runs of changed elements.
            let mut runs: Vec<(usize, usize)> = Vec::new();
            {
                let slice = view.snap.slice_mut(range);
                let mut buf = [0u8; 16];
                let mut run_start: Option<usize> = None;
                for (k, v) in values.iter().enumerate() {
                    let enc = &mut buf[..T::SIZE];
                    v.write_le(enc);
                    let dst = &mut slice[k * T::SIZE..(k + 1) * T::SIZE];
                    let changed = !detect || dst != &*enc;
                    if changed {
                        dst.copy_from_slice(enc);
                        if run_start.is_none() {
                            run_start = Some(k);
                        }
                    } else if let Some(start) = run_start.take() {
                        runs.push((start, k));
                    }
                }
                if let Some(start) = run_start {
                    runs.push((start, n));
                }
            }
            // Phase 2: stats, and one logged store per changed run.
            let changed_elems: usize = runs.iter().map(|(a, b)| b - a).sum();
            view.delta.tracked_stores += n as u64;
            if detect {
                view.delta.bytes_compared += (n * T::SIZE) as u64;
                view.delta.silent_stores += (n - changed_elems) as u64;
            }
            view.delta.changing_stores += changed_elems as u64;
            let mut buf = [0u8; 16];
            for (a, b) in runs {
                let mut data = Vec::with_capacity((b - a) * T::SIZE);
                for v in &values[a..b] {
                    let enc = &mut buf[..T::SIZE];
                    v.write_le(enc);
                    data.extend_from_slice(enc);
                }
                view.log.push(LoggedStore {
                    range: array.range_of(from + a, from + b),
                    data,
                    dispatch: true,
                });
            }
            return;
        }
        // Locked mode: encode once, let the sharded arena run the
        // per-element compare under a single stripe-lock acquisition, then
        // dispatch each changed run. The vectorized store path encodes in
        // one pass over a pre-sized buffer; the ablation keeps the legacy
        // element-at-a-time append (a grow-check per element), so
        // `simd_store` off reproduces the pre-vectorization bulk path
        // end to end.
        let data = if self.inner.cfg.simd_store {
            // The scratch buffer persists across calls, so past the first
            // call the encode is one pass with no allocation or zero-fill
            // (every byte below `n * T::SIZE` is overwritten).
            let mut data = std::mem::take(&mut self.locked().bulk_scratch);
            data.resize(n * T::SIZE, 0);
            for (enc, v) in data.chunks_exact_mut(T::SIZE).zip(values) {
                v.write_le(enc);
            }
            data
        } else {
            let mut data = Vec::with_capacity(n * T::SIZE);
            let mut buf = [0u8; 16];
            for v in values {
                let enc = &mut buf[..T::SIZE];
                v.write_le(enc);
                data.extend_from_slice(enc);
            }
            data
        };
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let changed_elems = self
            .inner
            .mem
            .store_elems(range, &data, T::SIZE, detect, &mut runs);
        {
            let recycle = self.inner.cfg.simd_store;
            let state = self.locked();
            let stats = &mut state.stats;
            stats.tracked_stores += n as u64;
            if detect {
                stats.bytes_compared += (n * T::SIZE) as u64;
                stats.silent_stores += (n - changed_elems) as u64;
            }
            stats.changing_stores += changed_elems as u64;
            if recycle {
                state.bulk_scratch = data;
            }
        }
        if self.depth > 0 && self.cur.is_some() {
            // Early-cutoff accounting: each element counts as one dispatched
            // store op, exactly as element-wise writes would. (The
            // invalidate-on-write ablation does not propagate silent *bulk*
            // elements — use scalar writes in workloads that exercise it.)
            self.body_dispatched += n as u64;
            self.body_changed += changed_elems as u64;
        }
        for (a, b) in runs {
            let run_range = array.range_of(from + a, from + b);
            // Bulk stores record one change event per changed run (not per
            // element), matching how they dispatch to the trigger table.
            if self.inner.obs.on() {
                self.obs_store(EventKind::ChangeDetected, run_range.start());
            }
            self.dispatch(run_range);
        }
    }

    /// Route every store through the trigger table and raise matched
    /// tthreads. Only ever runs locked (the commit path calls this for
    /// replayed detached stores).
    pub(crate) fn dispatch(&mut self, store_range: crate::addr::AddrRange) {
        // Watched-address filter: most changing stores touch pages no watch
        // covers; proving that from one page-bit load (or a line-bit load
        // on a watched page) skips the trigger-table read lock and the
        // bucket walk entirely.
        let probe = self.inner.watch_filter.probe(store_range);
        {
            let stats = &mut self.locked().stats;
            stats.filter_checks += 1;
            if !matches!(probe, crate::filter::FilterProbe::MissPage) {
                stats.filter_page_hits += 1;
            }
            if matches!(probe, crate::filter::FilterProbe::Hit) {
                stats.filter_line_hits += 1;
            }
        }
        if probe.is_miss() {
            if self.inner.obs.on() {
                self.obs_store(EventKind::FilterSkip, store_range.start());
            }
            return;
        }
        // Scratch comes from the state-lock pool so the per-store lookup is
        // allocation-free after warmup; nested cascades simply pop another
        // buffer (or default-construct on first use).
        let mut scratch = self.locked().scratch.pop().unwrap_or_default();
        // The trigger-table read guard is dropped at the end of this
        // statement, *before* raising: an inline overflow execution under a
        // raised trigger can store (and look up) again, and a recursive
        // read of a std RwLock while a writer waits can deadlock.
        self.inner
            .triggers
            .read()
            .lookup_with(store_range, &mut scratch);
        self.raise_hits(&scratch.hits, store_range.start().raw());
        self.locked().scratch.push(scratch);
    }

    /// Raise the matched tthreads of one triggering store (whose start
    /// address is `store_addr`, recorded with each fired trigger). Runs
    /// locked; the concurrent accessor path
    /// ([`crate::accessor::Accessor`]) also funnels here after taking the
    /// state lock.
    pub(crate) fn raise_hits(&mut self, hits: &[TriggerHit], store_addr: u64) {
        if hits.is_empty() {
            return;
        }
        let depth = self.depth;
        let cur = self.cur;
        self.locked().stats.triggering_stores += 1;
        for hit in hits {
            if self.skip_self_raise && Some(hit.tthread) == cur {
                continue;
            }
            // One wave unit of the incremental graph: a store made *by* a
            // tthread (inline body or commit replay) raising a *different*
            // tthread. Self-retriggers stay plain triggers.
            let cascade = depth > 0 && cur.is_some_and(|c| c != hit.tthread);
            let mut wave = 0u32;
            if cascade {
                // Injected wave loss: the raise is swallowed before any
                // bookkeeping, so every wave counter (and `triggers_fired`)
                // excludes it and the conservation identities still hold.
                if self.inner.fault.fire(crate::fault::FaultPoint::CascadeDrop) {
                    continue;
                }
                let writer = cur.expect("cascade raises have a writer");
                let state = self.locked();
                if state.graph.raised_this_epoch(hit.tthread) {
                    // Already raised by this commit/body: dedupe per wave
                    // epoch, not per store. Setting RF covers the one race
                    // this could hide — a claimant that snapshotted before
                    // our earlier raise is forced to re-run, so it cannot
                    // complete against pre-wave inputs. (Under the state
                    // lock the bytes of this epoch's stores are already
                    // live, so the rerun reads fresh data.)
                    state.stats.wave_dedups += 1;
                    self.inner
                        .dispatch
                        .slots
                        .slot(hit.tthread.index())
                        .set_rf_if_running();
                    continue;
                }
                wave = state.graph.wave_depth(writer) + 1;
                state.graph.mark_raised(hit.tthread, wave);
            }
            let state = self.locked();
            state.stats.triggers_fired += 1;
            if !hit.precise {
                state.stats.false_triggers += 1;
            }
            if depth > 0 {
                state.stats.cascade_triggers += 1;
            }
            self.obs_status(EventKind::TriggerFired, hit.tthread, store_addr);
            let kind = self.raise(hit.tthread);
            if cascade {
                let state = self.locked();
                state.stats.cascades += 1;
                match kind {
                    RaiseKind::Activated => state.stats.cascade_enqueues += 1,
                    RaiseKind::Coalesced => state.stats.cascade_coalesced += 1,
                }
                self.obs_status(EventKind::CascadeFired, hit.tthread, u64::from(wave));
            }
        }
    }

    /// Advance the status machine of `id` for one trigger.
    ///
    /// Lock-free dispatch mode delegates to
    /// [`crate::runtime::Inner::raise_lockfree`] (the status-word CAS
    /// machine) and only comes back here — already under the state lock —
    /// for the overflow policy. Locked mode drives the same status words
    /// through the identical transitions, just serialized by the lock the
    /// caller already holds, and keeps the legacy [`CoalescingQueue`] as
    /// the pending structure: that is the ablation baseline
    /// ([`crate::config::Config::lockfree_dispatch`]` = false`).
    pub(crate) fn raise(&mut self, id: TthreadId) -> RaiseKind {
        if self.inner.cfg.lockfree_dispatch {
            return match self.inner.raise_lockfree(id) {
                crate::runtime::LockfreeRaise::Done { coalesced } => {
                    if coalesced {
                        RaiseKind::Coalesced
                    } else {
                        RaiseKind::Activated
                    }
                }
                crate::runtime::LockfreeRaise::Overflow(token) => {
                    self.overflow_lockfree(id, token);
                    RaiseKind::Activated
                }
            };
        }
        let deferred = self.inner.cfg.is_deferred();
        let coalesce = self.inner.cfg.coalesce;
        let slot = self.inner.dispatch.slots.slot(id.index());
        slot.triggers
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match slot.status() {
            TthreadStatus::Running => {
                slot.set_rf_if_running();
                let state = self.locked();
                state.stats.coalesced_triggers += 1;
                self.obs_status(EventKind::Coalesced, id, 0);
                RaiseKind::Coalesced
            }
            TthreadStatus::Triggered => {
                let state = self.locked();
                state.stats.coalesced_triggers += 1;
                self.obs_status(EventKind::Coalesced, id, 0);
                RaiseKind::Coalesced
            }
            TthreadStatus::Queued => {
                if coalesce {
                    let state = self.locked();
                    state.stats.coalesced_triggers += 1;
                    self.obs_status(EventKind::Coalesced, id, 0);
                    RaiseKind::Coalesced
                } else {
                    self.enqueue(id)
                }
            }
            TthreadStatus::Clean => {
                if deferred {
                    let _ = slot.raise(true, false);
                    RaiseKind::Activated
                } else {
                    self.enqueue(id)
                }
            }
        }
    }

    /// Push `id` onto the worker queue (locked baseline), applying the
    /// overflow policy.
    fn enqueue(&mut self, id: TthreadId) -> RaiseKind {
        use crate::queue::PushOutcome;
        let overflow = self.inner.cfg.overflow;
        let slot = self.inner.dispatch.slots.slot(id.index());
        // Injected saturation: report the queue full without consuming a
        // slot, driving the overflow policy on an otherwise-healthy queue.
        let forced_full = self.inner.fault.fire(crate::fault::FaultPoint::Enqueue);
        let state = self.locked();
        let outcome = if forced_full {
            PushOutcome::Full
        } else {
            state.queue.push(id)
        };
        match outcome {
            PushOutcome::Enqueued => {
                // Clean→Queued for the first entry; a duplicate entry
                // (coalescing off) finds the word already Queued and the
                // raise absorbs without bumping the token.
                let _ = slot.raise(false, false);
                state.stats.enqueues += 1;
                let occupancy = state.queue.len() as u64;
                self.obs_status(EventKind::TriggerEnqueued, id, occupancy);
                self.inner.work_cv.notify_one();
                RaiseKind::Activated
            }
            PushOutcome::Coalesced => {
                state.stats.coalesced_triggers += 1;
                self.obs_status(EventKind::Coalesced, id, 0);
                RaiseKind::Coalesced
            }
            PushOutcome::Full => {
                state.stats.queue_overflows += 1;
                let capacity = state.queue.capacity() as u64;
                // Without coalescing, `id` may already occupy a queue slot
                // from an earlier trigger. Drop it so the overflow handling
                // below is the *only* pending execution; leaving it would
                // let a worker run the tthread a second time.
                state.queue.remove(id);
                self.obs_status(EventKind::QueueOverflow, id, capacity);
                match overflow {
                    OverflowPolicy::ExecuteInline => {
                        slot.claim();
                        self.run_inline(id);
                    }
                    OverflowPolicy::DeferToJoin => slot.force_triggered(),
                    OverflowPolicy::Backpressure => self.backpressure(id),
                }
                // Whatever the policy did, the trigger was serviced by a
                // fresh activation (inline run, deferred mark, or shed),
                // not absorbed into a previously pending one.
                RaiseKind::Activated
            }
        }
    }

    /// Queue-overflow backpressure (locked baseline): the triggering thread
    /// assists by draining the oldest pending tthreads inline (FIFO-fair —
    /// the victim was enqueued first) to free a slot for `id`. If the
    /// assist budget runs out with the queue still full, the trigger is
    /// *shed*: `id` is left `Triggered` for its next join and the shed is
    /// counted.
    fn backpressure(&mut self, id: TthreadId) {
        use crate::queue::PushOutcome;
        let inner = self.inner;
        let budget = inner.cfg.backpressure_assist_budget;
        for _ in 0..budget {
            let Some(victim) = self.locked().queue.pop() else {
                break;
            };
            self.locked().stats.backpressure_waits += 1;
            inner.dispatch.slots.slot(victim.index()).claim();
            self.run_inline(victim);
            match self.locked().queue.push(id) {
                PushOutcome::Enqueued => {
                    let _ = inner.dispatch.slots.slot(id.index()).raise(false, false);
                    let state = self.locked();
                    state.stats.enqueues += 1;
                    let occupancy = state.queue.len() as u64;
                    self.obs_status(EventKind::TriggerEnqueued, id, occupancy);
                    inner.work_cv.notify_one();
                    return;
                }
                PushOutcome::Coalesced => {
                    self.locked().stats.coalesced_triggers += 1;
                    self.obs_status(EventKind::Coalesced, id, 0);
                    return;
                }
                PushOutcome::Full => {}
            }
        }
        let state = self.locked();
        state.stats.overflow_sheds += 1;
        let capacity = state.queue.capacity() as u64;
        inner.dispatch.slots.slot(id.index()).force_triggered();
        self.obs_status(EventKind::OverflowShed, id, capacity);
    }

    /// Lock-free raise overflow: the status word already advanced
    /// Clean→Queued, but no pending-queue entry landed. Applies the
    /// overflow policy under the state lock (the caller holds it),
    /// validating every transition with `token` so a concurrent join or
    /// force steal wins cleanly — in that case their inline run covers
    /// this trigger and the policy has nothing left to do.
    pub(crate) fn overflow_lockfree(&mut self, id: TthreadId, token: u64) {
        let inner = self.inner;
        let slot = inner.dispatch.slots.slot(id.index());
        self.locked().stats.queue_overflows += 1;
        let capacity = inner.dispatch.pending.capacity() as u64;
        self.obs_status(EventKind::QueueOverflow, id, capacity);
        match inner.cfg.overflow {
            OverflowPolicy::ExecuteInline => {
                if slot.try_claim_queued(token) {
                    self.run_inline(id);
                }
            }
            OverflowPolicy::DeferToJoin => {
                let _ = slot.try_defer_queued(token);
            }
            OverflowPolicy::Backpressure => self.backpressure_lockfree(id, token),
        }
    }

    /// Queue-overflow backpressure, lock-free dispatch flavour: drain
    /// claimed victims inline, retry the push with the original token, and
    /// shed to Triggered when the assist budget runs out. A victim whose
    /// entry went stale (stolen by a join) costs an assist round but no
    /// execution.
    ///
    /// Pending-length audit: each loop iteration pairs exactly one `pop`
    /// (global `len` −1) with at most one successful `push` (`len` +1,
    /// reserved before the shard insert); a stale victim decrements
    /// nothing further — its entry left the queue with the pop — so the
    /// reservation counter and the physical shard contents stay equal at
    /// quiescence. The proptest suite pins this via
    /// `Runtime::pending_queue_consistency`. The `pop(0)` here is the
    /// deliberately ownership-blind scan: the assisting thread may drain
    /// any shard, not just one worker's.
    fn backpressure_lockfree(&mut self, id: TthreadId, token: u64) {
        use crate::dispatch::PendingPush;
        let inner = self.inner;
        let dispatch = &inner.dispatch;
        let budget = inner.cfg.backpressure_assist_budget;
        for _ in 0..budget {
            let Some((vraw, vtoken)) = dispatch.pending.pop(0) else {
                break;
            };
            let victim = TthreadId::new(vraw);
            if dispatch.slots.slot(victim.index()).try_claim_queued(vtoken) {
                self.locked().stats.backpressure_waits += 1;
                self.run_inline(victim);
            } else {
                dispatch.counters.stale_skip(victim.index());
            }
            match dispatch.pending.push(id.index() as u32, token) {
                PendingPush::Pushed => {
                    dispatch.counters.enqueued(id.index());
                    let occupancy = dispatch.pending.len() as u64;
                    self.obs_status(EventKind::TriggerEnqueued, id, occupancy);
                    inner.wake_worker(id.index());
                    return;
                }
                PendingPush::Full => {}
            }
        }
        self.locked().stats.overflow_sheds += 1;
        let capacity = dispatch.pending.capacity() as u64;
        let _ = dispatch.slots.slot(id.index()).try_defer_queued(token);
        self.obs_status(EventKind::OverflowShed, id, capacity);
    }

    /// Execute tthread `id` on the current thread, re-running while
    /// retriggered. The caller must already have moved `id` to Running
    /// (a claim CAS, or [`crate::dispatch::Slot::claim`] under the lock).
    ///
    /// Completes with the CJ flag *preserved* (`try_complete(None)`): an
    /// overflow-inline run between a worker's commit and the next join
    /// must not turn a pending `Overlapped` report into a `Skipped` one.
    /// Join and force clear the flag themselves after their inline runs.
    ///
    /// # Panics
    ///
    /// Panics if the trigger cascade exceeds
    /// [`crate::config::Config::max_cascade_depth`]. A panic from the
    /// tthread body itself is re-raised after the tthread is marked
    /// poisoned, so the runtime stays usable.
    pub(crate) fn run_inline(&mut self, id: TthreadId) {
        let next_depth = self.depth + 1;
        assert!(
            next_depth <= self.inner.cfg.max_cascade_depth,
            "{}",
            Error::CascadeDepthExceeded(self.inner.cfg.max_cascade_depth)
        );
        let func = self.inner.tthread_fn(id);
        let inner = self.inner;
        let slot = inner.dispatch.slots.slot(id.index());
        loop {
            debug_assert_eq!(slot.status(), TthreadStatus::Running);
            let state = self.locked();
            let obs_on = inner.obs.on();
            let body_t0 = if obs_on {
                inner
                    .obs
                    .record(inner.obs.status_ring(), EventKind::BodyStart, Some(id), 0);
                inner.obs.now_ns()
            } else {
                0
            };
            let (outcome, dispatched, changed) = {
                // One body execution = one wave epoch: its stores raise each
                // downstream tthread at most once.
                state.graph.begin_wave();
                let mut nested = Ctx::new_for(state, inner, next_depth, Some(id));
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(&mut nested)));
                (outcome, nested.body_dispatched, nested.body_changed)
            };
            if obs_on {
                let dur = inner.obs.now_ns().saturating_sub(body_t0);
                inner
                    .obs
                    .record(inner.obs.status_ring(), EventKind::BodyEnd, Some(id), dur);
            }
            let state = self.locked();
            if let Err(payload) = outcome {
                state.tst.entry_mut(id).poisoned = true;
                state.graph.clear_depth(id);
                slot.force_clean();
                inner.done_cv.notify_all();
                if inner.cfg.lockfree_dispatch {
                    inner.wake_joiners();
                }
                std::panic::resume_unwind(payload);
            }
            state.stats.executions += 1;
            state.stats.inline_executions += 1;
            state.tst.entry_mut(id).executions += 1;
            // Early cutoff: a cascade-raised body whose tracked stores were
            // all silent stops the wave here. Counted as a terminal wave
            // unit so `cascades == enqueues + coalesced + cutoffs` holds.
            let wave = state.graph.wave_depth(id);
            if wave > 0 {
                if inner.cfg.early_cutoff && dispatched > 0 && changed == 0 {
                    state.stats.cascades += 1;
                    state.stats.cascade_cutoffs += 1;
                    self.obs_status(EventKind::CascadeCutoff, id, u64::from(wave));
                }
                self.locked().graph.clear_depth(id);
            }
            let state = self.locked();
            if slot.try_complete(None) {
                state.tst.entry_mut(id).epoch += 1;
                break;
            }
            // A trigger landed mid-body (RF): absorb it into another run.
            slot.absorb_rf();
        }
        self.inner.done_cv.notify_all();
        // An overflow-inline run on a *worker* thread (backpressure assist
        // or ExecuteInline during a commit cascade) can complete a tthread
        // the main thread is parked on: broadcast the completion
        // eventcount just like the worker loop does after its own runs.
        if self.inner.cfg.lockfree_dispatch {
            self.inner.wake_joiners();
        }
    }
}
