//! Low-overhead lifecycle observability: per-shard event rings.
//!
//! The runtime is instrumented at every stage of the DTT lifecycle —
//! store → change-detected → trigger-fired → enqueued/coalesced →
//! body-start → body-end → commit-begin → commit-conflict → commit-done →
//! join/skip — but the instrumentation must never perturb the hot path it
//! measures. This module provides the recording half of that contract:
//!
//! * **Disabled-path cost contract.** Every hook compiles down to one
//!   relaxed atomic load ([`ObsRecorder::on`]) and a predictable branch.
//!   No ring memory is even allocated until observability is first
//!   enabled.
//! * **Per-shard event rings.** When enabled, events are appended to
//!   fixed-capacity lock-free rings — one per tracked-memory shard (store
//!   events hash by address, so threads working disjoint data write
//!   disjoint rings) plus one for the trigger/status machine. Writers
//!   never block: on overflow the oldest event is overwritten and a drop
//!   counter incremented; on a (rare) slot collision the incoming event is
//!   dropped and counted instead of spinning.
//! * **Exact accounting.** Every event draws a globally monotonic sequence
//!   number. The invariant `issued == delivered + dropped` holds at every
//!   quiescent drain, so sequence-number gaps in the merged stream are
//!   exactly the counted drops — no silent loss, no duplicates (pinned by
//!   the overflow stress test below).
//!
//! Timestamps are nanoseconds relative to the recorder's creation
//! ([`ObsRecorder::now_ns`]), taken from the monotonic clock, so events
//! recorded by different threads merge into one time-ordered stream.
//!
//! The analysis half — aggregation, histograms, Prometheus / Chrome-trace
//! export — lives in the `dtt-obs` crate, which consumes the
//! [`ObsRecording`] drained here.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

use crate::fault::{FaultLayer, FaultPoint};
use crate::tthread::TthreadId;

/// Sentinel for events not attributed to any tthread (raw store events).
const NO_TTHREAD: u64 = u32::MAX as u64;

/// One stage of the DTT lifecycle, as recorded in the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A tracked store that left memory unchanged (a silent store).
    /// Payload: the store's start address.
    Store = 0,
    /// A tracked store that changed bytes (for bulk stores, one event per
    /// run of changed elements). Payload: the store's start address.
    ChangeDetected = 1,
    /// A changed store matched a watched region and fired a trigger for a
    /// tthread. Payload: the triggering store's start address.
    TriggerFired = 2,
    /// The trigger enqueued its tthread for a worker. Payload: queue
    /// occupancy after the push.
    TriggerEnqueued = 3,
    /// The trigger was absorbed by an already-pending instance of the
    /// tthread.
    Coalesced = 4,
    /// The trigger found the worker queue full and fell back to the
    /// configured overflow policy. Payload: the queue capacity.
    QueueOverflow = 5,
    /// A tthread body started executing (worker or inline).
    BodyStart = 6,
    /// A tthread body finished. Payload: body duration in nanoseconds.
    BodyEnd = 7,
    /// A detached execution started committing its write log. Payload: the
    /// number of logged stores.
    CommitBegin = 8,
    /// A replayed store was found silent at commit — another thread had
    /// already published the same bytes. Payload: the store's address.
    CommitConflict = 9,
    /// The commit finished and the tthread's effects are visible.
    /// Payload: commit duration in nanoseconds.
    CommitDone = 10,
    /// A join consumed the tthread's outputs (any outcome but a skip).
    /// Payload: 1 overlapped, 2 ran inline, 3 stolen, 4 waited.
    Join = 11,
    /// A join skipped the computation entirely — the paper's redundancy
    /// elimination observed at its consumption point.
    Skip = 12,
    /// A tthread body overran its configured wall-clock deadline; the
    /// execution's write log was discarded. Payload: the body's elapsed
    /// time in nanoseconds.
    BodyTimeout = 13,
    /// A detached execution exhausted the commit retry cap and was deferred
    /// to its next join. Payload: the configured retry cap.
    RetryExhausted = 14,
    /// A backpressure-mode trigger exhausted its assist budget and shed the
    /// enqueue (deferring the tthread to its next join). Payload: the queue
    /// capacity.
    OverflowShed = 15,
    /// A changing store was proven unwatched by the two-level address
    /// filter and never consulted the trigger table. Payload: the store's
    /// start address.
    FilterSkip = 16,
    /// A tthread's committed (or inline) store raised a *downstream*
    /// tthread — one wave unit of an incremental-graph cascade. Attributed
    /// to the downstream tthread. Payload: the wave depth at the raise
    /// (1 = raised by a tthread the main thread triggered).
    CascadeFired = 17,
    /// A cascade-driven recomputation committed fully silently and the
    /// wave stopped there (early cutoff — the transitive skip). Attributed
    /// to the committing tthread. Payload: the wave depth at the cutoff.
    CascadeCutoff = 18,
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; 19] = [
        EventKind::Store,
        EventKind::ChangeDetected,
        EventKind::TriggerFired,
        EventKind::TriggerEnqueued,
        EventKind::Coalesced,
        EventKind::QueueOverflow,
        EventKind::BodyStart,
        EventKind::BodyEnd,
        EventKind::CommitBegin,
        EventKind::CommitConflict,
        EventKind::CommitDone,
        EventKind::Join,
        EventKind::Skip,
        EventKind::BodyTimeout,
        EventKind::RetryExhausted,
        EventKind::OverflowShed,
        EventKind::FilterSkip,
        EventKind::CascadeFired,
        EventKind::CascadeCutoff,
    ];

    /// Decodes a discriminant byte.
    pub fn from_u8(raw: u8) -> Option<EventKind> {
        EventKind::ALL.get(raw as usize).copied()
    }

    /// Stable snake_case name (used by the exporters).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Store => "store",
            EventKind::ChangeDetected => "change_detected",
            EventKind::TriggerFired => "trigger_fired",
            EventKind::TriggerEnqueued => "trigger_enqueued",
            EventKind::Coalesced => "coalesced",
            EventKind::QueueOverflow => "queue_overflow",
            EventKind::BodyStart => "body_start",
            EventKind::BodyEnd => "body_end",
            EventKind::CommitBegin => "commit_begin",
            EventKind::CommitConflict => "commit_conflict",
            EventKind::CommitDone => "commit_done",
            EventKind::Join => "join",
            EventKind::Skip => "skip",
            EventKind::BodyTimeout => "body_timeout",
            EventKind::RetryExhausted => "retry_exhausted",
            EventKind::OverflowShed => "overflow_shed",
            EventKind::FilterSkip => "filter_skip",
            EventKind::CascadeFired => "cascade_fired",
            EventKind::CascadeCutoff => "cascade_cutoff",
        }
    }
}

/// One decoded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Globally monotonic sequence number (gaps = dropped events).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch (runtime creation).
    pub t_ns: u64,
    /// Lifecycle stage.
    pub kind: EventKind,
    /// The tthread the event concerns, if any (store events have none).
    pub tthread: Option<TthreadId>,
    /// Kind-specific payload; see [`EventKind`].
    pub payload: u64,
}

/// One ring slot. `state` is the slot's ownership word: `0` empty, odd
/// while a writer (or the drain) holds the slot, even nonzero when a
/// complete event is stored. Claims go even→odd by compare-exchange, so
/// slot access is exclusive without ever blocking a loser — it counts a
/// drop and moves on.
#[derive(Debug, Default)]
struct Slot {
    state: AtomicU64,
    seq: AtomicU64,
    /// kind in bits 0..8, tthread id (+`NO_TTHREAD` sentinel) in bits 8..40.
    meta: AtomicU64,
    t_ns: AtomicU64,
    payload: AtomicU64,
}

/// A fixed-capacity lock-free MPSC event ring that overwrites the oldest
/// event on overflow.
#[derive(Debug)]
pub(crate) struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Logical write positions handed out (total events routed here).
    head: AtomicU64,
    /// Events lost: overwritten before a drain, or dropped on collision.
    drops: AtomicU64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        EventRing {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            mask: (capacity - 1) as u64,
            head: AtomicU64::new(0),
            drops: AtomicU64::new(0),
        }
    }

    /// Records one event. Never blocks: a slot collision (another writer —
    /// or the drain — holds the slot) drops the incoming event; an
    /// overwrite drops the resident one. Both bump the drop counter.
    fn record(&self, seq: u64, t_ns: u64, kind: EventKind, tthread: u64, payload: u64) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let s = slot.state.load(Ordering::Relaxed);
        if s & 1 == 1
            || slot
                .state
                .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if s != 0 {
            // The slot held an undrained event; this write destroys it.
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        slot.seq.store(seq, Ordering::Relaxed);
        slot.meta
            .store((kind as u64) | (tthread << 8), Ordering::Relaxed);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.state.store(s + 2, Ordering::Release);
    }

    /// Consumes every complete event into `out`. Slots mid-write are left
    /// for the writer to finish (their events surface at the next drain).
    fn drain_into(&self, out: &mut Vec<ObsEvent>) {
        for slot in self.slots.iter() {
            let s = slot.state.load(Ordering::Acquire);
            if s == 0 || s & 1 == 1 {
                continue;
            }
            // Claim the slot exactly like a writer would, so the payload
            // reads below are exclusive; a concurrent writer that loses
            // this race counts its event as dropped.
            if slot
                .state
                .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let tid = meta >> 8;
            out.push(ObsEvent {
                seq: slot.seq.load(Ordering::Relaxed),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                kind: EventKind::from_u8((meta & 0xff) as u8).expect("valid event kind in slot"),
                tthread: (tid != NO_TTHREAD).then(|| TthreadId::new(tid as u32)),
                payload: slot.payload.load(Ordering::Relaxed),
            });
            slot.state.store(0, Ordering::Release);
        }
    }

    fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }
}

/// Per-ring occupancy/drop statistics reported with a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Events routed to this ring over its lifetime.
    pub routed: u64,
    /// Events this ring lost (overwritten or collision-dropped), lifetime.
    pub dropped: u64,
}

/// The merged result of draining every ring.
///
/// `events` holds this drain's events sorted by sequence number; `issued`,
/// `dropped` and `delivered` are *lifetime* totals, so at any quiescent
/// point `issued == delivered + dropped`.
#[derive(Debug, Clone, Default)]
pub struct ObsRecording {
    /// This drain's events, ascending by [`ObsEvent::seq`].
    pub events: Vec<ObsEvent>,
    /// Sequence numbers issued so far (total events ever recorded).
    pub issued: u64,
    /// Events lost so far (ring overwrites + slot collisions).
    pub dropped: u64,
    /// Events delivered by this and every previous drain.
    pub delivered: u64,
    /// Per-ring lifetime statistics (rings `0..shards` are the per-shard
    /// store rings; the last ring is the trigger/status machine's).
    pub rings: Vec<RingStats>,
}

impl ObsRecording {
    /// Whether the lifetime accounting balances: every issued sequence
    /// number is either delivered or counted as dropped. Meaningful at
    /// quiescent points (no recording threads in flight).
    pub fn accounting_balances(&self) -> bool {
        self.issued == self.delivered + self.dropped
    }
}

/// The per-runtime event recorder: an enable flag, lazily allocated rings,
/// the global sequence counter and the time base.
#[derive(Debug)]
pub(crate) struct ObsRecorder {
    enabled: AtomicBool,
    /// Rings are not allocated until observability is first enabled, so a
    /// runtime that never observes pays no memory.
    rings: OnceLock<Box<[EventRing]>>,
    ring_count: usize,
    ring_capacity: usize,
    seq: AtomicU64,
    delivered: AtomicU64,
    /// Serializes drains (writers are unaffected).
    drain_lock: Mutex<()>,
    epoch: Instant,
    /// Fault-injection layer, attached by the runtime at construction. An
    /// [`FaultPoint::ObsPublish`] fault drops the event *before* its
    /// sequence number is issued, so accounting stays balanced.
    fault: OnceLock<std::sync::Arc<FaultLayer>>,
}

impl ObsRecorder {
    /// Creates a recorder for `shards` store rings plus the status ring.
    pub(crate) fn new(shards: usize, ring_capacity: usize) -> Self {
        ObsRecorder {
            enabled: AtomicBool::new(false),
            rings: OnceLock::new(),
            ring_count: shards + 1,
            ring_capacity,
            seq: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
            epoch: Instant::now(),
            fault: OnceLock::new(),
        }
    }

    /// Attaches the runtime's fault-injection layer. Idempotent: only the
    /// first attachment sticks (tests construct bare recorders with no
    /// layer at all, which behaves as permanently disarmed).
    pub(crate) fn attach_fault(&self, layer: std::sync::Arc<FaultLayer>) {
        let _ = self.fault.set(layer);
    }

    /// The hot-path gate: one relaxed load. Every instrumentation hook in
    /// the runtime checks this before doing any other observability work.
    #[inline(always)]
    pub(crate) fn on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording. First enable allocates the rings.
    pub(crate) fn set_enabled(&self, on: bool) {
        if on {
            self.rings.get_or_init(|| {
                (0..self.ring_count)
                    .map(|_| EventRing::new(self.ring_capacity))
                    .collect()
            });
        }
        self.enabled.store(on, Ordering::Release);
    }

    /// Index of the trigger/status-machine ring.
    #[inline]
    pub(crate) fn status_ring(&self) -> usize {
        self.ring_count - 1
    }

    /// Nanoseconds since the recorder's epoch.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one event into `ring`. Callers must have checked
    /// [`ObsRecorder::on`]; recording into a never-enabled recorder is a
    /// no-op (the rings do not exist).
    pub(crate) fn record(
        &self,
        ring: usize,
        kind: EventKind,
        tthread: Option<TthreadId>,
        payload: u64,
    ) {
        let Some(rings) = self.rings.get() else {
            return;
        };
        // An injected publish fault suppresses the event before a sequence
        // number is drawn, so `issued == delivered + dropped` still holds.
        if let Some(fault) = self.fault.get() {
            if fault.fire(FaultPoint::ObsPublish) {
                return;
            }
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tid = tthread.map_or(NO_TTHREAD, |t| t.index() as u64);
        rings[ring].record(seq, self.now_ns(), kind, tid, payload);
    }

    /// Drains every ring into a merged, sequence-ordered recording.
    pub(crate) fn drain(&self) -> ObsRecording {
        let _guard = self.drain_lock.lock();
        let mut events = Vec::new();
        let mut rings_stats = Vec::with_capacity(self.ring_count);
        if let Some(rings) = self.rings.get() {
            for ring in rings.iter() {
                ring.drain_into(&mut events);
                rings_stats.push(RingStats {
                    routed: ring.head.load(Ordering::Relaxed),
                    dropped: ring.drops(),
                });
            }
        }
        events.sort_unstable_by_key(|e| e.seq);
        let delivered = self
            .delivered
            .fetch_add(events.len() as u64, Ordering::Relaxed)
            + events.len() as u64;
        ObsRecording {
            events,
            issued: self.seq.load(Ordering::Relaxed),
            dropped: rings_stats.iter().map(|r| r.dropped).sum(),
            delivered,
            rings: rings_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(shards: usize, cap: usize) -> ObsRecorder {
        let r = ObsRecorder::new(shards, cap);
        r.set_enabled(true);
        r
    }

    #[test]
    fn disabled_recorder_allocates_nothing_and_records_nothing() {
        let r = ObsRecorder::new(4, 64);
        assert!(!r.on());
        // Hooks guard on `on()`, but even an unguarded record is a no-op.
        r.record(0, EventKind::Store, None, 1);
        let rec = r.drain();
        assert!(rec.events.is_empty());
        assert_eq!(rec.rings.len(), 0);
        assert!(rec.accounting_balances());
    }

    #[test]
    fn events_round_trip_kind_tthread_payload() {
        let r = recorder(1, 64);
        r.record(0, EventKind::ChangeDetected, None, 0xdead);
        r.record(1, EventKind::BodyEnd, Some(TthreadId::new(7)), 1234);
        let rec = r.drain();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].seq, 0);
        assert_eq!(rec.events[0].kind, EventKind::ChangeDetected);
        assert_eq!(rec.events[0].tthread, None);
        assert_eq!(rec.events[0].payload, 0xdead);
        assert_eq!(rec.events[1].kind, EventKind::BodyEnd);
        assert_eq!(rec.events[1].tthread, Some(TthreadId::new(7)));
        assert!(rec.events[1].t_ns >= rec.events[0].t_ns);
        assert!(rec.accounting_balances());
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        let r = recorder(0, 8);
        let ring = r.status_ring();
        for i in 0..20u64 {
            r.record(ring, EventKind::Skip, None, i);
        }
        let rec = r.drain();
        // The 8 youngest survive; 12 were overwritten and counted.
        assert_eq!(rec.events.len(), 8);
        assert_eq!(rec.dropped, 12);
        assert_eq!(rec.issued, 20);
        assert!(rec.accounting_balances());
        let survivors: Vec<u64> = rec.events.iter().map(|e| e.payload).collect();
        assert_eq!(survivors, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn drain_is_consuming_and_cumulative() {
        let r = recorder(0, 8);
        r.record(0, EventKind::Join, Some(TthreadId::new(0)), 2);
        let first = r.drain();
        assert_eq!(first.events.len(), 1);
        let second = r.drain();
        assert!(second.events.is_empty());
        assert_eq!(second.delivered, 1);
        assert_eq!(second.issued, 1);
        assert!(second.accounting_balances());
    }

    #[test]
    fn merged_stream_is_sequence_ordered_across_rings() {
        let r = recorder(3, 16);
        for i in 0..12u64 {
            r.record((i % 4) as usize, EventKind::Store, None, i);
        }
        let rec = r.drain();
        let seqs: Vec<u64> = rec.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn kind_encoding_round_trips() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_u8(200), None);
    }

    /// The overflow-semantics stress test: many threads overrun a tiny
    /// ring; afterwards the drop counter plus the sequence-number gaps must
    /// exactly account for every lost event — no silent loss, and no
    /// duplicated delivery.
    #[test]
    fn multi_thread_overflow_accounting_is_exact() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 5_000;
        let r = recorder(THREADS, 16);
        let mut delivered = Vec::new();
        std::thread::scope(|s| {
            let r = &r;
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Each "shard thread" hammers its own ring, the way
                        // store events hash by address, with occasional
                        // cross-ring writes to force collisions.
                        let ring = if i % 97 == 0 { THREADS } else { t };
                        r.record(ring, EventKind::Store, None, i);
                    }
                });
            }
            // A concurrent drain runs while writers are active; its events
            // count toward `delivered` like any others.
            delivered.extend(r.drain().events);
        });
        let last = r.drain();
        delivered.extend(last.events.iter().copied());

        let mut seqs: Vec<u64> = delivered.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        let unique = {
            let mut s = seqs.clone();
            s.dedup();
            s.len()
        };
        assert_eq!(unique, seqs.len(), "duplicate sequence numbers delivered");

        let issued = (THREADS as u64) * PER_THREAD;
        assert_eq!(last.issued, issued);
        // Gaps in the delivered sequence numbers are exactly the drops.
        let gaps = issued - seqs.len() as u64;
        assert_eq!(
            gaps, last.dropped,
            "sequence gaps ({gaps}) must equal the drop counter ({})",
            last.dropped
        );
        assert_eq!(last.delivered, seqs.len() as u64);
        assert!(last.accounting_balances());
        // The ring really did overflow — otherwise this test proves nothing.
        assert!(last.dropped > 0, "stress did not overrun the ring");
    }
}
