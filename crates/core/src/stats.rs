//! Runtime statistics.
//!
//! Every behavioural event in the runtime increments a counter here; the
//! benchmark harness reads a [`StatsSnapshot`] to build the paper's
//! per-benchmark characteristics table (R-Tab.2) and the silent-store /
//! false-trigger ablations.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::heap::StoreEffect;

/// Mutable counters held inside the runtime's state lock.
///
/// Use [`Counters::snapshot`] to obtain an immutable copy for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Tracked stores executed (every `set`/`write` call).
    pub tracked_stores: u64,
    /// Tracked stores whose bytes equalled the old contents (silent stores).
    pub silent_stores: u64,
    /// Tracked stores that changed memory contents.
    pub changing_stores: u64,
    /// Stores that matched at least one trigger region (post silent-store
    /// suppression) and therefore fired.
    pub triggering_stores: u64,
    /// Individual (store, region) trigger matches.
    pub triggers_fired: u64,
    /// Trigger matches at the configured granularity whose *precise* byte
    /// ranges did not overlap the watched region (false triggers).
    pub false_triggers: u64,
    /// Triggers absorbed because the tthread was already pending.
    pub coalesced_triggers: u64,
    /// Tthreads enqueued for a worker.
    pub enqueues: u64,
    /// Queue-full events.
    pub queue_overflows: u64,
    /// Tthread executions, wherever they ran.
    pub executions: u64,
    /// Executions performed inline on the triggering/main thread.
    pub inline_executions: u64,
    /// Executions performed by worker threads.
    pub worker_executions: u64,
    /// Worker executions that ran detached (off the state lock, against a
    /// snapshot; see [`crate::config::Config::detached_execution`]).
    pub detached_executions: u64,
    /// Stores replayed from detached write logs at commit time.
    pub commit_stores: u64,
    /// Replayed stores found silent at commit — another thread had already
    /// published the same bytes — so no trigger fired.
    pub commit_conflicts: u64,
    /// `join` calls that found the tthread clean and skipped the computation.
    pub skips: u64,
    /// `join` calls observed — the paper's *join points*, regardless of
    /// outcome (skipped, overlapped, waited, ran inline, or stolen).
    pub joins: u64,
    /// `join` calls that had to wait for a running worker.
    pub waited_joins: u64,
    /// Triggers raised by stores performed inside tthreads (cascades).
    pub cascade_triggers: u64,
    /// Tracked loads executed (every `get`/`read` call).
    pub tracked_loads: u64,
    /// Bytes compared by silent-store detection.
    pub bytes_compared: u64,
    /// Extra body re-runs because a trigger landed during the previous run
    /// (the commit→retrigger loop going around again).
    pub commit_retries: u64,
    /// Times the retry loop hit [`crate::config::Config::commit_retry_cap`]
    /// and deferred the tthread to its next join instead.
    pub commit_retry_exhausted: u64,
    /// Tthread bodies that overran
    /// [`crate::config::Config::body_deadline`]; their write logs were
    /// discarded.
    pub body_timeouts: u64,
    /// Queue overflows where the triggering thread assisted by draining a
    /// pending tthread inline
    /// ([`crate::config::OverflowPolicy::Backpressure`]).
    pub backpressure_waits: u64,
    /// Backpressure overflows that still found the queue full after the
    /// assist budget and shed the trigger to the next join.
    pub overflow_sheds: u64,
    /// Worker wake notifications actually delivered by the dispatch path
    /// (one per enqueued unit with a sleeper present; silent and coalesced
    /// stores never wake anyone).
    pub worker_wakes: u64,
    /// Times a worker found no pending work and parked on the dispatch
    /// eventcount.
    pub worker_parks: u64,
    /// Pending-queue entries discarded at claim time because their token
    /// was stale (the tthread was stolen by a join/force after enqueue).
    pub queue_stale_skips: u64,
    /// Pending-queue entries moved between shards by work stealing (one per
    /// migrated entry; an idle worker drains them from the fullest foreign
    /// shard instead of parking).
    pub steals: u64,
    /// Work-stealing batches (one per successful steal attempt; `steals /
    /// steal_batches` is the average batch size).
    pub steal_batches: u64,
    /// Parks that ended by exhausting the park timeout rather than by a
    /// wake notification — the rescue path for dropped wakes. Idle workers
    /// and joiners accrue these at the park-timeout rate while quiescent.
    pub park_timeouts: u64,
    /// Watched-address filter probes (one per changing store that reached
    /// the filter).
    pub filter_checks: u64,
    /// Probes that found a page bit set and descended to the line level
    /// (`filter_checks − filter_page_hits` stores exited after the level-1
    /// load alone).
    pub filter_page_hits: u64,
    /// Probes that also matched a watched 64-byte line and fell through to
    /// the trigger-table lookup; `filter_page_hits − filter_line_hits`
    /// stores exited at line granularity without the table read lock.
    pub filter_line_hits: u64,
    /// Cascade wave units: downstream raises propagated from a tthread's
    /// committed (or inline) stores to *another* tthread's trigger region,
    /// plus the fully-silent commits that terminated a wave (counted in
    /// [`Counters::cascade_cutoffs`]). Conserved as
    /// `cascades == cascade_enqueues + cascade_coalesced + cascade_cutoffs`.
    pub cascades: u64,
    /// Cascade raises handed to the dispatch layer: enqueued for a worker,
    /// marked Triggered for a later join, or overflow-executed inline.
    pub cascade_enqueues: u64,
    /// Cascade raises absorbed by an already-pending downstream slot.
    pub cascade_coalesced: u64,
    /// Early cutoffs: cascade-driven recomputations whose commit was fully
    /// silent (zero non-silent watched lines), stopping the wave there —
    /// the paper's redundancy elimination applied transitively. Only
    /// counted when [`crate::config::Config::early_cutoff`] is on.
    pub cascade_cutoffs: u64,
    /// Duplicate downstream raises suppressed within one commit epoch (the
    /// invalidation wave is deduplicated per commit, not per store).
    pub wave_dedups: u64,
    /// Watch or output declarations rejected because they would close a
    /// cycle in the declared dependency graph
    /// ([`crate::error::Error::TriggerCycle`]).
    pub trigger_cycles_rejected: u64,
    /// Backoff sleeps taken between detached commit retries when
    /// [`crate::config::Config::commit_backoff`] is set: one per retry
    /// that waited (bounded-exponential step + SplitMix64 jitter) before
    /// re-snapshotting. Always zero with the default `None` backoff.
    pub commit_backoff_waits: u64,
}

/// Applies a callback macro to the complete counter field list, in
/// declaration order. This is the *single source of truth* shared by every
/// serialization path — [`Counters::fields`] (which also drives the
/// Prometheus exporter in `dtt-obs`), [`StatsSnapshot::to_json`] and
/// [`StatsSnapshot::from_json`] — so adding a counter to [`Counters`] only
/// requires extending this list once.
macro_rules! for_each_counter {
    ($cb:ident!($($extra:tt)*)) => {
        $cb!(
            $($extra)*
            tracked_stores,
            silent_stores,
            changing_stores,
            triggering_stores,
            triggers_fired,
            false_triggers,
            coalesced_triggers,
            enqueues,
            queue_overflows,
            executions,
            inline_executions,
            worker_executions,
            detached_executions,
            commit_stores,
            commit_conflicts,
            skips,
            joins,
            waited_joins,
            cascade_triggers,
            tracked_loads,
            bytes_compared,
            commit_retries,
            commit_retry_exhausted,
            body_timeouts,
            backpressure_waits,
            overflow_sheds,
            worker_wakes,
            worker_parks,
            queue_stale_skips,
            steals,
            steal_batches,
            park_timeouts,
            filter_checks,
            filter_page_hits,
            filter_line_hits,
            cascades,
            cascade_enqueues,
            cascade_coalesced,
            cascade_cutoffs,
            wave_dedups,
            trigger_cycles_rejected,
            commit_backoff_waits,
        )
    };
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the counters into an immutable snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot { c: self.clone() }
    }

    /// Every counter as a `(name, value)` pair, in declaration order. The
    /// names are the field identifiers (`tracked_stores`, ...), stable for
    /// external consumers; the list is generated from the same macro as the
    /// JSON path, so the serializations cannot drift apart.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        macro_rules! emit {
            ($self:ident, $($f:ident),+ $(,)?) => {
                vec![$((stringify!($f), $self.$f)),+]
            };
        }
        for_each_counter!(emit!(self,))
    }

    /// Sets the counter named `name` to `value`; returns `false` (leaving
    /// the counters untouched) for an unknown name.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        macro_rules! emit {
            ($self:ident, $name:ident, $value:ident, $($f:ident),+ $(,)?) => {
                match $name {
                    $(stringify!($f) => {
                        $self.$f = $value;
                        true
                    })+
                    _ => false,
                }
            };
        }
        for_each_counter!(emit!(self, name, value,))
    }
}

/// One cache line of access-side counters. Padding each slot to 64 bytes
/// keeps concurrent accessors on different shards from false-sharing the
/// counter words.
#[derive(Debug, Default)]
#[repr(align(64))]
struct AccessSlot {
    tracked_stores: AtomicU64,
    silent_stores: AtomicU64,
    changing_stores: AtomicU64,
    tracked_loads: AtomicU64,
    bytes_compared: AtomicU64,
    filter_checks: AtomicU64,
    filter_page_hits: AtomicU64,
    filter_line_hits: AtomicU64,
}

/// Sharded access-side counters, bumped outside the state lock.
///
/// The five counters the hot path touches on every tracked load/store
/// (`tracked_stores`, `silent_stores`, `changing_stores`, `tracked_loads`,
/// `bytes_compared`) live here as address-hashed atomic slots instead of
/// inside `Counters` under the global lock. [`AccessCounters::fold_into`]
/// sums them back into a `Counters` at snapshot time, so `StatsSnapshot`
/// stays exact. All updates are `Relaxed`: the counters are monotone sums
/// with no ordering relationship to the data they describe, and folding
/// happens at a quiescent point (no tthread bodies in flight that the
/// caller cares about).
#[derive(Debug)]
pub(crate) struct AccessCounters {
    slots: Box<[AccessSlot]>,
    mask: u64,
}

impl AccessCounters {
    /// Creates counters with one slot per memory shard (`shards` is rounded
    /// up to a power of two, minimum 1, to match the address hash).
    pub(crate) fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let slots = (0..n).map(|_| AccessSlot::default()).collect();
        AccessCounters {
            slots,
            mask: (n - 1) as u64,
        }
    }

    fn slot(&self, addr_raw: u64) -> &AccessSlot {
        // Same 64-byte stripe hash as the memory shards, so a thread working
        // a disjoint address partition also gets (mostly) private counters.
        &self.slots[((addr_raw >> 6) & self.mask) as usize]
    }

    /// Accounts one tracked store with the given [`StoreEffect`].
    pub(crate) fn on_store(&self, addr_raw: u64, effect: StoreEffect, detect: bool) {
        let s = self.slot(addr_raw);
        s.tracked_stores.fetch_add(1, Ordering::Relaxed);
        s.bytes_compared
            .fetch_add(effect.bytes_compared, Ordering::Relaxed);
        if detect && !effect.changed {
            s.silent_stores.fetch_add(1, Ordering::Relaxed);
        } else {
            s.changing_stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accounts `n` tracked loads at `addr_raw`.
    pub(crate) fn on_loads(&self, addr_raw: u64, n: u64) {
        self.slot(addr_raw)
            .tracked_loads
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Accounts one watched-address filter probe and how deep it went.
    pub(crate) fn on_filter(&self, addr_raw: u64, probe: crate::filter::FilterProbe) {
        use crate::filter::FilterProbe;
        let s = self.slot(addr_raw);
        s.filter_checks.fetch_add(1, Ordering::Relaxed);
        if !matches!(probe, FilterProbe::MissPage) {
            s.filter_page_hits.fetch_add(1, Ordering::Relaxed);
        }
        if matches!(probe, FilterProbe::Hit) {
            s.filter_line_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds the access-side counters a detached execution accumulated
    /// against its snapshot into slot 0. Only the access-side counters are
    /// merged: trigger/queue/execution accounting for detached bodies
    /// happens at commit, under the lock.
    pub(crate) fn merge_delta(&self, delta: &Counters) {
        let s = &self.slots[0];
        s.tracked_loads
            .fetch_add(delta.tracked_loads, Ordering::Relaxed);
        s.tracked_stores
            .fetch_add(delta.tracked_stores, Ordering::Relaxed);
        s.silent_stores
            .fetch_add(delta.silent_stores, Ordering::Relaxed);
        s.changing_stores
            .fetch_add(delta.changing_stores, Ordering::Relaxed);
        s.bytes_compared
            .fetch_add(delta.bytes_compared, Ordering::Relaxed);
    }

    /// Sums every slot into `c`'s access-side counters.
    pub(crate) fn fold_into(&self, c: &mut Counters) {
        for s in self.slots.iter() {
            c.tracked_stores += s.tracked_stores.load(Ordering::Relaxed);
            c.silent_stores += s.silent_stores.load(Ordering::Relaxed);
            c.changing_stores += s.changing_stores.load(Ordering::Relaxed);
            c.tracked_loads += s.tracked_loads.load(Ordering::Relaxed);
            c.bytes_compared += s.bytes_compared.load(Ordering::Relaxed);
            c.filter_checks += s.filter_checks.load(Ordering::Relaxed);
            c.filter_page_hits += s.filter_page_hits.load(Ordering::Relaxed);
            c.filter_line_hits += s.filter_line_hits.load(Ordering::Relaxed);
        }
    }

    /// Zeroes every slot.
    pub(crate) fn reset(&self) {
        for s in self.slots.iter() {
            s.tracked_stores.store(0, Ordering::Relaxed);
            s.silent_stores.store(0, Ordering::Relaxed);
            s.changing_stores.store(0, Ordering::Relaxed);
            s.tracked_loads.store(0, Ordering::Relaxed);
            s.bytes_compared.store(0, Ordering::Relaxed);
            s.filter_checks.store(0, Ordering::Relaxed);
            s.filter_page_hits.store(0, Ordering::Relaxed);
            s.filter_line_hits.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of the runtime counters, with derived ratios.
///
/// # Examples
///
/// ```
/// use dtt_core::stats::Counters;
/// let mut c = Counters::new();
/// c.tracked_stores = 10;
/// c.silent_stores = 4;
/// let snap = c.snapshot();
/// assert!((snap.silent_store_fraction() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    c: Counters,
}

impl StatsSnapshot {
    /// The raw counters.
    pub fn counters(&self) -> &Counters {
        &self.c
    }

    /// Fraction of tracked stores that were silent, in `[0, 1]`; `0` when no
    /// stores were executed.
    pub fn silent_store_fraction(&self) -> f64 {
        ratio(self.c.silent_stores, self.c.tracked_stores)
    }

    /// Fraction of trigger matches that were false triggers.
    pub fn false_trigger_fraction(&self) -> f64 {
        ratio(self.c.false_triggers, self.c.triggers_fired)
    }

    /// Fraction of `join` points at which the computation was skipped
    /// entirely — the paper's redundant-computation elimination rate.
    ///
    /// The denominator counts `join` calls, not executions: cascades and
    /// commit-time retriggers execute tthreads without a join point, and
    /// counting them used to understate the elimination rate.
    pub fn skip_fraction(&self) -> f64 {
        ratio(self.c.skips, self.c.joins)
    }

    /// Triggers per tracked kilo-store, a density measure used in R-Tab.2.
    pub fn triggers_per_kilo_store(&self) -> f64 {
        if self.c.tracked_stores == 0 {
            0.0
        } else {
            self.c.triggering_stores as f64 * 1000.0 / self.c.tracked_stores as f64
        }
    }

    /// Every counter as a `(name, value)` pair; see [`Counters::fields`].
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        self.c.fields()
    }

    /// Serializes the snapshot as a flat, single-line JSON object whose
    /// keys are the counter field names, in declaration order. This is the
    /// one JSON shape shared by `dtt obs metrics` and the exporters; it
    /// round-trips exactly through [`StatsSnapshot::from_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.c.fields().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }

    /// Parses a snapshot from the JSON shape produced by
    /// [`StatsSnapshot::to_json`]: one flat object of unsigned-integer
    /// counter fields (whitespace tolerated, any key order, missing keys
    /// default to zero).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token, unknown key, or
    /// non-integer value.
    pub fn from_json(text: &str) -> Result<StatsSnapshot, String> {
        let mut c = Counters::new();
        let mut rest = text.trim_start();
        rest = rest
            .strip_prefix('{')
            .ok_or_else(|| "expected '{' at start of stats object".to_string())?;
        loop {
            rest = rest.trim_start();
            if let Some(tail) = rest.strip_prefix('}') {
                if !tail.trim().is_empty() {
                    return Err("trailing data after stats object".to_string());
                }
                return Ok(StatsSnapshot { c });
            }
            rest = rest
                .strip_prefix('"')
                .ok_or_else(|| "expected '\"' starting a field name".to_string())?;
            let end = rest
                .find('"')
                .ok_or_else(|| "unterminated field name".to_string())?;
            let (name, tail) = rest.split_at(end);
            rest = tail[1..].trim_start();
            rest = rest
                .strip_prefix(':')
                .ok_or_else(|| format!("expected ':' after field {name:?}"))?;
            rest = rest.trim_start();
            let digits = rest.len()
                - rest
                    .trim_start_matches(|ch: char| ch.is_ascii_digit())
                    .len();
            if digits == 0 {
                return Err(format!("expected an unsigned integer for field {name:?}"));
            }
            let value: u64 = rest[..digits]
                .parse()
                .map_err(|e| format!("field {name:?}: {e}"))?;
            if !c.set_field(name, value) {
                return Err(format!("unknown counter field {name:?}"));
            }
            rest = rest[digits..].trim_start();
            if let Some(tail) = rest.strip_prefix(',') {
                rest = tail;
            } else if !rest.starts_with('}') {
                return Err(format!("expected ',' or '}}' after field {name:?}"));
            }
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.c;
        writeln!(f, "tracked stores        {:>12}", c.tracked_stores)?;
        writeln!(
            f,
            "  silent              {:>12}  ({:.1}%)",
            c.silent_stores,
            100.0 * self.silent_store_fraction()
        )?;
        writeln!(f, "  changing            {:>12}", c.changing_stores)?;
        writeln!(f, "triggering stores     {:>12}", c.triggering_stores)?;
        writeln!(
            f,
            "triggers fired        {:>12}  (false: {})",
            c.triggers_fired, c.false_triggers
        )?;
        writeln!(f, "coalesced triggers    {:>12}", c.coalesced_triggers)?;
        writeln!(
            f,
            "enqueues / overflows  {:>12} / {}",
            c.enqueues, c.queue_overflows
        )?;
        writeln!(
            f,
            "executions            {:>12}  (inline {}, worker {}, detached {})",
            c.executions, c.inline_executions, c.worker_executions, c.detached_executions
        )?;
        writeln!(
            f,
            "commit stores         {:>12}  (conflicts: {})",
            c.commit_stores, c.commit_conflicts
        )?;
        writeln!(f, "joins                 {:>12}", c.joins)?;
        writeln!(
            f,
            "skips                 {:>12}  ({:.1}% of joins)",
            c.skips,
            100.0 * self.skip_fraction()
        )?;
        writeln!(f, "waited joins          {:>12}", c.waited_joins)?;
        writeln!(f, "cascade triggers      {:>12}", c.cascade_triggers)?;
        writeln!(f, "tracked loads         {:>12}", c.tracked_loads)?;
        writeln!(f, "bytes compared        {:>12}", c.bytes_compared)?;
        writeln!(
            f,
            "commit retries        {:>12}  (exhausted: {}, backoff waits: {})",
            c.commit_retries, c.commit_retry_exhausted, c.commit_backoff_waits
        )?;
        writeln!(f, "body timeouts         {:>12}", c.body_timeouts)?;
        writeln!(
            f,
            "backpressure / sheds  {:>12} / {}",
            c.backpressure_waits, c.overflow_sheds
        )?;
        writeln!(
            f,
            "worker wakes / parks  {:>12} / {}",
            c.worker_wakes, c.worker_parks
        )?;
        writeln!(f, "stale queue skips     {:>12}", c.queue_stale_skips)?;
        writeln!(
            f,
            "steals / batches      {:>12} / {}",
            c.steals, c.steal_batches
        )?;
        writeln!(f, "park timeouts         {:>12}", c.park_timeouts)?;
        writeln!(
            f,
            "filter checks         {:>12}  (page hits {}, line hits {})",
            c.filter_checks, c.filter_page_hits, c.filter_line_hits
        )?;
        writeln!(
            f,
            "cascade waves         {:>12}  (enqueued {}, coalesced {}, cutoffs {})",
            c.cascades, c.cascade_enqueues, c.cascade_coalesced, c.cascade_cutoffs
        )?;
        write!(
            f,
            "wave dedups / cycles  {:>12} / {}",
            c.wave_dedups, c.trigger_cycles_rejected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let snap = Counters::new().snapshot();
        assert_eq!(snap.silent_store_fraction(), 0.0);
        assert_eq!(snap.false_trigger_fraction(), 0.0);
        assert_eq!(snap.skip_fraction(), 0.0);
        assert_eq!(snap.triggers_per_kilo_store(), 0.0);
    }

    #[test]
    fn derived_ratios() {
        let mut c = Counters::new();
        c.tracked_stores = 1000;
        c.silent_stores = 780;
        c.triggering_stores = 20;
        c.triggers_fired = 40;
        c.false_triggers = 10;
        c.skips = 75;
        c.joins = 100;
        // Executions beyond the join points (cascades, retriggers) must not
        // dilute the elimination rate.
        c.executions = 400;
        let s = c.snapshot();
        assert!((s.silent_store_fraction() - 0.78).abs() < 1e-12);
        assert!((s.false_trigger_fraction() - 0.25).abs() < 1e-12);
        assert!((s.skip_fraction() - 0.75).abs() < 1e-12);
        assert!((s.triggers_per_kilo_store() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn access_counters_fold_exactly() {
        let ac = AccessCounters::new(8);
        // Spread updates across distinct stripes (and thus slots).
        for stripe in 0..32u64 {
            let addr = stripe * 64;
            ac.on_store(
                addr,
                StoreEffect {
                    changed: stripe % 2 == 0,
                    bytes_compared: 4,
                },
                true,
            );
            ac.on_loads(addr, 3);
            ac.on_filter(
                addr,
                match stripe % 3 {
                    0 => crate::filter::FilterProbe::MissPage,
                    1 => crate::filter::FilterProbe::MissLine,
                    _ => crate::filter::FilterProbe::Hit,
                },
            );
        }
        let mut delta = Counters::new();
        delta.tracked_loads = 5;
        delta.tracked_stores = 2;
        delta.silent_stores = 1;
        delta.changing_stores = 1;
        delta.bytes_compared = 16;
        ac.merge_delta(&delta);

        let mut c = Counters::new();
        c.tracked_stores = 1000; // folding adds, never overwrites
        ac.fold_into(&mut c);
        assert_eq!(c.tracked_stores, 1000 + 32 + 2);
        assert_eq!(c.silent_stores, 16 + 1);
        assert_eq!(c.changing_stores, 16 + 1);
        assert_eq!(c.tracked_loads, 32 * 3 + 5);
        assert_eq!(c.bytes_compared, 32 * 4 + 16);
        // Stripes 0..32 cycle MissPage/MissLine/Hit: 11 + 11 + 10.
        assert_eq!(c.filter_checks, 32);
        assert_eq!(c.filter_page_hits, 11 + 10);
        assert_eq!(c.filter_line_hits, 10);

        ac.reset();
        let mut z = Counters::new();
        ac.fold_into(&mut z);
        assert_eq!(z, Counters::new());
    }

    #[test]
    fn access_counters_store_without_detection_counts_changing() {
        let ac = AccessCounters::new(1);
        ac.on_store(
            0,
            StoreEffect {
                changed: true,
                bytes_compared: 0,
            },
            false,
        );
        let mut c = Counters::new();
        ac.fold_into(&mut c);
        assert_eq!(c.changing_stores, 1);
        assert_eq!(c.silent_stores, 0);
        assert_eq!(c.bytes_compared, 0);
    }

    #[test]
    fn display_lists_all_sections() {
        let mut c = Counters::new();
        c.tracked_stores = 5;
        let text = c.snapshot().to_string();
        for needle in [
            "tracked stores",
            "silent",
            "triggering stores",
            "coalesced",
            "executions",
            "skips",
            "cascade",
            "cascade waves",
            "wave dedups",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn fields_cover_every_counter_in_declaration_order() {
        let mut c = Counters::new();
        // Give every field a distinct value so a swapped or missing entry
        // cannot cancel out.
        for (i, (name, _)) in c.clone().fields().into_iter().enumerate() {
            assert!(c.set_field(name, (i + 1) as u64), "unknown field {name}");
        }
        let fields = c.fields();
        assert_eq!(fields.len(), 42);
        assert_eq!(fields[0], ("tracked_stores", 1));
        assert_eq!(fields[20], ("bytes_compared", 21));
        assert_eq!(fields[25], ("overflow_sheds", 26));
        assert_eq!(fields[28], ("queue_stale_skips", 29));
        assert_eq!(fields[29], ("steals", 30));
        assert_eq!(fields[30], ("steal_batches", 31));
        assert_eq!(fields[31], ("park_timeouts", 32));
        assert_eq!(fields[32], ("filter_checks", 33));
        assert_eq!(fields[33], ("filter_page_hits", 34));
        assert_eq!(fields[34], ("filter_line_hits", 35));
        assert_eq!(fields[35], ("cascades", 36));
        assert_eq!(fields[36], ("cascade_enqueues", 37));
        assert_eq!(fields[37], ("cascade_coalesced", 38));
        assert_eq!(fields[38], ("cascade_cutoffs", 39));
        assert_eq!(fields[39], ("wave_dedups", 40));
        assert_eq!(fields[40], ("trigger_cycles_rejected", 41));
        assert_eq!(fields[41], ("commit_backoff_waits", 42));
        for (i, (_, v)) in fields.iter().enumerate() {
            assert_eq!(*v, (i + 1) as u64);
        }
        assert!(!c.set_field("not_a_counter", 7));
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut c = Counters::new();
        for (i, (name, _)) in c.clone().fields().into_iter().enumerate() {
            c.set_field(name, (i as u64 + 1) * 1_000_003);
        }
        let snap = c.snapshot();
        let json = snap.to_json();
        let back = StatsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Whitespace and key order don't matter; missing keys default to 0.
        let sparse = StatsSnapshot::from_json("{ \"joins\" : 7, \"skips\": 3 }").unwrap();
        assert_eq!(sparse.counters().joins, 7);
        assert_eq!(sparse.counters().skips, 3);
        assert_eq!(sparse.counters().tracked_stores, 0);
        let empty = StatsSnapshot::from_json("{}").unwrap();
        assert_eq!(empty, Counters::new().snapshot());
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in [
            "",
            "[]",
            "{\"joins\":}",
            "{\"joins\":-1}",
            "{\"joins\":1.5}",
            "{\"unknown_counter\":1}",
            "{\"joins\":1",
            "{\"joins\":1}x",
            "{joins:1}",
        ] {
            assert!(
                StatsSnapshot::from_json(bad).is_err(),
                "accepted malformed input {bad:?}"
            );
        }
    }

    #[test]
    fn snapshot_preserves_counters() {
        let mut c = Counters::new();
        c.enqueues = 9;
        c.queue_overflows = 2;
        let s = c.snapshot();
        assert_eq!(s.counters().enqueues, 9);
        assert_eq!(s.counters().queue_overflows, 2);
    }
}
