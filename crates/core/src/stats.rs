//! Runtime statistics.
//!
//! Every behavioural event in the runtime increments a counter here; the
//! benchmark harness reads a [`StatsSnapshot`] to build the paper's
//! per-benchmark characteristics table (R-Tab.2) and the silent-store /
//! false-trigger ablations.

use std::fmt;

/// Mutable counters held inside the runtime's state lock.
///
/// Use [`Counters::snapshot`] to obtain an immutable copy for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Tracked stores executed (every `set`/`write` call).
    pub tracked_stores: u64,
    /// Tracked stores whose bytes equalled the old contents (silent stores).
    pub silent_stores: u64,
    /// Tracked stores that changed memory contents.
    pub changing_stores: u64,
    /// Stores that matched at least one trigger region (post silent-store
    /// suppression) and therefore fired.
    pub triggering_stores: u64,
    /// Individual (store, region) trigger matches.
    pub triggers_fired: u64,
    /// Trigger matches at the configured granularity whose *precise* byte
    /// ranges did not overlap the watched region (false triggers).
    pub false_triggers: u64,
    /// Triggers absorbed because the tthread was already pending.
    pub coalesced_triggers: u64,
    /// Tthreads enqueued for a worker.
    pub enqueues: u64,
    /// Queue-full events.
    pub queue_overflows: u64,
    /// Tthread executions, wherever they ran.
    pub executions: u64,
    /// Executions performed inline on the triggering/main thread.
    pub inline_executions: u64,
    /// Executions performed by worker threads.
    pub worker_executions: u64,
    /// Worker executions that ran detached (off the state lock, against a
    /// snapshot; see [`crate::config::Config::detached_execution`]).
    pub detached_executions: u64,
    /// Stores replayed from detached write logs at commit time.
    pub commit_stores: u64,
    /// Replayed stores found silent at commit — another thread had already
    /// published the same bytes — so no trigger fired.
    pub commit_conflicts: u64,
    /// `join` calls that found the tthread clean and skipped the computation.
    pub skips: u64,
    /// `join` calls that had to wait for a running worker.
    pub waited_joins: u64,
    /// Triggers raised by stores performed inside tthreads (cascades).
    pub cascade_triggers: u64,
    /// Tracked loads executed (every `get`/`read` call).
    pub tracked_loads: u64,
    /// Bytes compared by silent-store detection.
    pub bytes_compared: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the counters into an immutable snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot { c: self.clone() }
    }

    /// Folds the memory-access counters a detached execution accumulated
    /// against its snapshot into the live counters. Only the access-side
    /// counters are merged: trigger/queue/execution accounting for detached
    /// bodies happens at commit, under the lock.
    pub(crate) fn merge_access_delta(&mut self, delta: &Counters) {
        self.tracked_loads += delta.tracked_loads;
        self.tracked_stores += delta.tracked_stores;
        self.silent_stores += delta.silent_stores;
        self.changing_stores += delta.changing_stores;
        self.bytes_compared += delta.bytes_compared;
    }
}

/// An immutable copy of the runtime counters, with derived ratios.
///
/// # Examples
///
/// ```
/// use dtt_core::stats::Counters;
/// let mut c = Counters::new();
/// c.tracked_stores = 10;
/// c.silent_stores = 4;
/// let snap = c.snapshot();
/// assert!((snap.silent_store_fraction() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    c: Counters,
}

impl StatsSnapshot {
    /// The raw counters.
    pub fn counters(&self) -> &Counters {
        &self.c
    }

    /// Fraction of tracked stores that were silent, in `[0, 1]`; `0` when no
    /// stores were executed.
    pub fn silent_store_fraction(&self) -> f64 {
        ratio(self.c.silent_stores, self.c.tracked_stores)
    }

    /// Fraction of trigger matches that were false triggers.
    pub fn false_trigger_fraction(&self) -> f64 {
        ratio(self.c.false_triggers, self.c.triggers_fired)
    }

    /// Fraction of `join` points at which the computation was skipped
    /// entirely — the paper's redundant-computation elimination rate.
    pub fn skip_fraction(&self) -> f64 {
        ratio(self.c.skips, self.c.skips + self.c.executions)
    }

    /// Triggers per tracked kilo-store, a density measure used in R-Tab.2.
    pub fn triggers_per_kilo_store(&self) -> f64 {
        if self.c.tracked_stores == 0 {
            0.0
        } else {
            self.c.triggering_stores as f64 * 1000.0 / self.c.tracked_stores as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.c;
        writeln!(f, "tracked stores        {:>12}", c.tracked_stores)?;
        writeln!(
            f,
            "  silent              {:>12}  ({:.1}%)",
            c.silent_stores,
            100.0 * self.silent_store_fraction()
        )?;
        writeln!(f, "  changing            {:>12}", c.changing_stores)?;
        writeln!(f, "triggering stores     {:>12}", c.triggering_stores)?;
        writeln!(
            f,
            "triggers fired        {:>12}  (false: {})",
            c.triggers_fired, c.false_triggers
        )?;
        writeln!(f, "coalesced triggers    {:>12}", c.coalesced_triggers)?;
        writeln!(
            f,
            "enqueues / overflows  {:>12} / {}",
            c.enqueues, c.queue_overflows
        )?;
        writeln!(
            f,
            "executions            {:>12}  (inline {}, worker {}, detached {})",
            c.executions, c.inline_executions, c.worker_executions, c.detached_executions
        )?;
        writeln!(
            f,
            "commit stores         {:>12}  (conflicts: {})",
            c.commit_stores, c.commit_conflicts
        )?;
        writeln!(
            f,
            "skips                 {:>12}  ({:.1}% of joins)",
            c.skips,
            100.0 * self.skip_fraction()
        )?;
        writeln!(f, "waited joins          {:>12}", c.waited_joins)?;
        writeln!(f, "cascade triggers      {:>12}", c.cascade_triggers)?;
        writeln!(f, "tracked loads         {:>12}", c.tracked_loads)?;
        write!(f, "bytes compared        {:>12}", c.bytes_compared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let snap = Counters::new().snapshot();
        assert_eq!(snap.silent_store_fraction(), 0.0);
        assert_eq!(snap.false_trigger_fraction(), 0.0);
        assert_eq!(snap.skip_fraction(), 0.0);
        assert_eq!(snap.triggers_per_kilo_store(), 0.0);
    }

    #[test]
    fn derived_ratios() {
        let mut c = Counters::new();
        c.tracked_stores = 1000;
        c.silent_stores = 780;
        c.triggering_stores = 20;
        c.triggers_fired = 40;
        c.false_triggers = 10;
        c.skips = 75;
        c.executions = 25;
        let s = c.snapshot();
        assert!((s.silent_store_fraction() - 0.78).abs() < 1e-12);
        assert!((s.false_trigger_fraction() - 0.25).abs() < 1e-12);
        assert!((s.skip_fraction() - 0.75).abs() < 1e-12);
        assert!((s.triggers_per_kilo_store() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_all_sections() {
        let mut c = Counters::new();
        c.tracked_stores = 5;
        let text = c.snapshot().to_string();
        for needle in [
            "tracked stores",
            "silent",
            "triggering stores",
            "coalesced",
            "executions",
            "skips",
            "cascade",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn snapshot_preserves_counters() {
        let mut c = Counters::new();
        c.enqueues = 9;
        c.queue_overflows = 2;
        let s = c.snapshot();
        assert_eq!(s.counters().enqueues, 9);
        assert_eq!(s.counters().queue_overflows, 2);
    }
}
