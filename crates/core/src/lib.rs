//! # Data-triggered threads
//!
//! A runtime implementing **data-triggered threads** (DTT) as proposed by
//! Tseng & Tullsen, *"Data-triggered threads: eliminating redundant
//! computation"*, HPCA 2011.
//!
//! Unlike conventional threads, which are started by control flow, a
//! *tthread* is started by a **change to a memory location**: the programmer
//! attaches a computation to one or more tracked memory regions, and the
//! runtime fires the computation only when a store actually *changes* bytes
//! in a watched region. Two consequences follow:
//!
//! * **Redundant computation is eliminated.** When the data does not change
//!   — including *silent stores* that rewrite the same value — the attached
//!   computation is skipped entirely at its consumption point.
//! * **Parallelism increases.** With worker threads configured, the
//!   recomputation runs as soon as the data changes, overlapping the main
//!   thread.
//!
//! ## Programming model
//!
//! 1. Create a [`Runtime`] over your untracked user state.
//! 2. Allocate the *trigger data* in tracked memory
//!    ([`Runtime::alloc`], [`Runtime::alloc_array`]).
//! 3. [`Runtime::register`] a tthread body and [`Runtime::watch`] the
//!    regions whose changes should fire it.
//! 4. Mutate tracked data inside [`Runtime::with`] regions; at every point
//!    where the main thread consumes the tthread's outputs, call
//!    [`Runtime::join`] — it skips, runs, or waits as needed.
//!
//! ```
//! use dtt_core::{Config, JoinOutcome, Runtime};
//!
//! // User state: the cached dot product.
//! let mut rt = Runtime::new(Config::default(), 0i64);
//! let a = rt.alloc_array::<i32>(4)?;
//! let b = rt.alloc_array::<i32>(4)?;
//!
//! let dot = rt.register("dot", move |ctx| {
//!     let mut acc = 0i64;
//!     for i in 0..4 {
//!         acc += ctx.read(a, i) as i64 * ctx.read(b, i) as i64;
//!     }
//!     *ctx.user_mut() = acc;
//! });
//! rt.watch(dot, a.range())?;
//! rt.watch(dot, b.range())?;
//!
//! rt.with(|ctx| {
//!     for i in 0..4 {
//!         ctx.write(a, i, i as i32 + 1); // 1 2 3 4
//!         ctx.write(b, i, 2);
//!     }
//! });
//! assert_eq!(rt.join(dot)?, JoinOutcome::RanInline);
//! assert_eq!(rt.with(|ctx| *ctx.user()), 20);
//!
//! // Re-storing identical values: all silent, the dot product is never
//! // recomputed.
//! rt.with(|ctx| {
//!     for i in 0..4 {
//!         ctx.write(b, i, 2);
//!     }
//! });
//! assert_eq!(rt.join(dot)?, JoinOutcome::Skipped);
//! # Ok::<(), dtt_core::error::Error>(())
//! ```
//!
//! ## Executors
//!
//! * **Deferred** (`Config::default()`, `workers == 0`): triggered tthreads
//!   run on the calling thread at their [`Runtime::join`] point. Fully
//!   deterministic; captures exactly the paper's redundancy elimination.
//! * **Parallel** (`workers > 0`): triggers enqueue the tthread on a bounded
//!   coalescing queue drained by OS worker threads, modelling the spare
//!   hardware contexts of the HPCA'11 design; the queue-overflow fallback
//!   executes on the triggering thread, as in the paper. Worker bodies run
//!   *detached* by default — input snapshot taken under the runtime lock,
//!   body executed lock-free, stores committed (with change re-detection)
//!   under the lock afterwards — so they genuinely overlap the main thread;
//!   see the [`Runtime`] memory-consistency notes and
//!   [`Config::detached_execution`].
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`addr`] | addresses, ranges, trigger [`Granularity`] |
//! | [`pod`] | byte encoding of tracked values |
//! | [`heap`] | the single-threaded arena (detached-execution snapshots) |
//! | `mem` | the sharded concurrent arena behind every tracked access |
//! | `filter` | the two-level page → line watched-address filter |
//! | [`handle`] | typed [`Tracked`]/[`TrackedArray`] handles |
//! | [`trigger`] | the store-address → tthread trigger table |
//! | [`tthread`] | tthread ids and the thread status table |
//! | `dispatch` | the lock-free status word, sharded pending queue, eventcount |
//! | [`queue`] | the bounded coalescing pending queue (locked baseline) |
//! | [`obs`] | lock-free lifecycle event rings (observability) |
//! | [`fault`] | seeded deterministic fault injection ([`FaultPlan`]) |
//! | [`graph`] | the incremental computation graph (edge map, wave dedup, cycle check) |
//! | [`ctx`] | the [`Ctx`] store path and status machine |
//! | [`deadline`] | monotonic body-deadline and commit-backoff arithmetic |
//! | [`accessor`] | concurrent tracked access off the state lock |
//! | [`runtime`] | the [`Runtime`] façade and executors |
//! | [`config`], [`stats`], [`error`] | knobs, counters, errors |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accessor;
pub mod addr;
pub mod config;
pub mod ctx;
pub mod deadline;
pub(crate) mod dispatch;
pub mod error;
pub mod fault;
pub(crate) mod filter;
pub mod graph;
pub mod handle;
pub mod heap;
pub(crate) mod mem;
pub mod obs;
pub mod pod;
pub mod queue;
pub mod report;
pub mod runtime;
pub mod stats;
pub mod trigger;
pub mod tthread;

/// The worker/joiner timed-park period. Exposed (hidden) for the chaos
/// and bench harnesses, which budget rescue-wake latencies against it.
#[doc(hidden)]
pub use dispatch::PARK_TIMEOUT;

pub use accessor::Accessor;
pub use addr::{Addr, AddrRange, Granularity};
pub use config::{Config, OverflowPolicy};
pub use ctx::Ctx;
pub use error::{Error, Result};
pub use fault::{FaultPlan, FaultPoint, FaultProbe};
pub use graph::GraphEdge;
pub use handle::{Tracked, TrackedArray, TrackedMatrix};
pub use obs::{EventKind, ObsEvent, ObsRecording, RingStats};
pub use report::{RuntimeReport, TthreadReportRow};
pub use runtime::{JoinOutcome, Runtime};
pub use stats::StatsSnapshot;
pub use trigger::LookupScratch;
pub use tthread::{TthreadId, TthreadStatus};
