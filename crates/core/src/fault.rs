//! Deterministic fault injection for the runtime's lifecycle edges.
//!
//! The chaos harness (`dtt-chaos`) needs to drive every failure path —
//! queue overflow, body panics, commit retries, worker delays — in a way
//! that is *replayable*: the same seed must produce the same fault
//! decisions. This module provides that as a [`FaultPlan`]: a seeded,
//! per-[`FaultPoint`] probability table with optional fire budgets,
//! installed via [`crate::config::Config::with_fault_plan`].
//!
//! The implementation follows the observability layer's disabled-path
//! discipline: when no plan is installed (the default) every injection
//! probe costs exactly one relaxed atomic load and no state is touched.
//! Probabilities are drawn from a lock-free SplitMix64 stream seeded from
//! the plan, so single-threaded runs are bit-for-bit reproducible and
//! multi-worker runs are reproducible in distribution (each draw is
//! deterministic; which thread consumes it depends on scheduling).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A lifecycle edge where a fault can be injected.
///
/// Discriminants are stable: they index the rate/budget tables in
/// [`FaultPlan`] and the fired-counter array reported by
/// [`crate::runtime::Runtime::fault_injections`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultPoint {
    /// A trigger's enqueue is forced to report queue overflow, exercising
    /// the configured [`crate::config::OverflowPolicy`].
    Enqueue = 0,
    /// A worker's dequeue is rejected: the popped tthread is pushed back
    /// and the worker retries, exercising requeue/coalesce paths.
    Dequeue = 1,
    /// The tthread body is replaced by a synthetic panic, exercising
    /// poisoning without unwinding through user code.
    BodyStart = 2,
    /// The gap between body end and commit replay is stretched by the
    /// plan's delay, widening the window for commit conflicts.
    CommitReplay = 3,
    /// The post-commit retrigger flag is forced on, exercising the
    /// bounded commit-retry loop.
    Retrigger = 4,
    /// An observability ring publish is dropped before a sequence number
    /// is issued, exercising drain accounting under loss.
    ObsPublish = 5,
    /// A worker is delayed between claiming a tthread and running its
    /// body, widening trigger/join races.
    WorkerSchedule = 6,
    /// A dispatch-path worker wakeup is dropped — the eventcount epoch
    /// bump and the notification are both suppressed, simulating a true
    /// lost wakeup. The timed park must still make progress.
    WakeDrop = 7,
    /// A worker's steal attempt is suppressed: the idle worker parks as if
    /// every foreign shard were empty. The timed park (and the next real
    /// wake) must keep foreign work flowing.
    StealBatch = 8,
    /// A completion wake on the join eventcount is dropped — a joiner
    /// parked on the tthread's status word is not notified and must be
    /// rescued by its timed park.
    JoinWake = 9,
    /// A cascade raise is swallowed: a committed non-silent store that
    /// would have raised a downstream tthread's slot is dropped before
    /// the raise. The downstream tthread must still converge via a later
    /// wave or an explicit join/mark-dirty — the wave identity excludes
    /// dropped raises.
    CascadeDrop = 10,
    /// A client connection is dropped mid-batch by the serve front-end:
    /// an admitted request's connection is severed before its response is
    /// written. The request must be counted in `dropped_conns` so the
    /// request-lifecycle conservation identity still balances (serve-layer
    /// point; never probed by the runtime core).
    ConnDrop = 11,
    /// A slow-client stall: the serve front-end's frame read is stretched
    /// by the plan's delay, simulating a client that trickles bytes. The
    /// connection's read deadline — not a wedge — must bound the handler
    /// (serve-layer point; never probed by the runtime core).
    ClientStall = 12,
    /// The serve front-end's admission queue reports overflow regardless
    /// of actual occupancy, forcing the explicit `Shed` response path
    /// (serve-layer point; never probed by the runtime core).
    AcceptOverflow = 13,
}

impl FaultPoint {
    /// Every injection point, in discriminant order.
    pub const ALL: [FaultPoint; 14] = [
        FaultPoint::Enqueue,
        FaultPoint::Dequeue,
        FaultPoint::BodyStart,
        FaultPoint::CommitReplay,
        FaultPoint::Retrigger,
        FaultPoint::ObsPublish,
        FaultPoint::WorkerSchedule,
        FaultPoint::WakeDrop,
        FaultPoint::StealBatch,
        FaultPoint::JoinWake,
        FaultPoint::CascadeDrop,
        FaultPoint::ConnDrop,
        FaultPoint::ClientStall,
        FaultPoint::AcceptOverflow,
    ];

    /// The points probed by the runtime core itself (the first eleven).
    /// The chaos harness derives its randomized schedules over this
    /// subset, keeping existing seeds' derivations stable; the serve
    /// front-end's points are armed by its own scenarios.
    pub const CORE: [FaultPoint; 11] = [
        FaultPoint::Enqueue,
        FaultPoint::Dequeue,
        FaultPoint::BodyStart,
        FaultPoint::CommitReplay,
        FaultPoint::Retrigger,
        FaultPoint::ObsPublish,
        FaultPoint::WorkerSchedule,
        FaultPoint::WakeDrop,
        FaultPoint::StealBatch,
        FaultPoint::JoinWake,
        FaultPoint::CascadeDrop,
    ];

    /// The points probed by the `dtt-serve` request lifecycle.
    pub const SERVE: [FaultPoint; 3] = [
        FaultPoint::ConnDrop,
        FaultPoint::ClientStall,
        FaultPoint::AcceptOverflow,
    ];

    /// Number of injection points.
    pub const COUNT: usize = Self::ALL.len();

    /// Decodes a discriminant back into a point.
    pub fn from_u8(raw: u8) -> Option<FaultPoint> {
        Self::ALL.get(raw as usize).copied()
    }

    /// Stable lowercase name, used by the CLI and failure reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::Enqueue => "enqueue",
            FaultPoint::Dequeue => "dequeue",
            FaultPoint::BodyStart => "body-start",
            FaultPoint::CommitReplay => "commit-replay",
            FaultPoint::Retrigger => "retrigger",
            FaultPoint::ObsPublish => "obs-publish",
            FaultPoint::WorkerSchedule => "worker-schedule",
            FaultPoint::WakeDrop => "wake-drop",
            FaultPoint::StealBatch => "steal-batch",
            FaultPoint::JoinWake => "join-wake",
            FaultPoint::CascadeDrop => "cascade-drop",
            FaultPoint::ConnDrop => "conn-drop",
            FaultPoint::ClientStall => "client-stall",
            FaultPoint::AcceptOverflow => "accept-overflow",
        }
    }

    /// Parses a name produced by [`FaultPoint::name`].
    pub fn from_name(name: &str) -> Option<FaultPoint> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Fire probability meaning "always fire" (subject to the budget).
pub const ALWAYS: u16 = u16::MAX;

/// Fire budget meaning "no limit".
pub const UNLIMITED: u32 = u32::MAX;

/// A seeded, deterministic fault schedule.
///
/// Each [`FaultPoint`] has a fire *rate* in units of 1/65536 per probe
/// ([`ALWAYS`] is special-cased to fire unconditionally) and a fire
/// *budget* capping how many times it may fire over the runtime's life
/// ([`UNLIMITED`] by default). Plain data: cloneable, comparable, and
/// cheap to describe in a replay command.
///
/// ```
/// use dtt_core::fault::{FaultPlan, FaultPoint, ALWAYS};
///
/// let plan = FaultPlan::new(42)
///     .with_rate(FaultPoint::Enqueue, 6553) // ~10% of enqueues overflow
///     .with_rate(FaultPoint::Retrigger, ALWAYS)
///     .with_budget(FaultPoint::Retrigger, 100)
///     .with_delay_us(50);
/// assert_eq!(plan.rate(FaultPoint::Retrigger), ALWAYS);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the SplitMix64 draw stream.
    pub seed: u64,
    /// Per-point fire rates in 1/65536 units, indexed by discriminant.
    pub rates: [u16; FaultPoint::COUNT],
    /// Per-point fire budgets, indexed by discriminant.
    pub budgets: [u32; FaultPoint::COUNT],
    /// Delay injected by [`FaultPoint::CommitReplay`] and
    /// [`FaultPoint::WorkerSchedule`] fires, in microseconds.
    pub delay_us: u32,
}

impl FaultPlan {
    /// A plan with the given seed and every point disabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0; FaultPoint::COUNT],
            budgets: [UNLIMITED; FaultPoint::COUNT],
            delay_us: 10,
        }
    }

    /// Sets a point's fire rate (1/65536 units; [`ALWAYS`] fires every probe).
    pub fn with_rate(mut self, point: FaultPoint, rate: u16) -> Self {
        self.rates[point as usize] = rate;
        self
    }

    /// Caps how many times a point may fire.
    pub fn with_budget(mut self, point: FaultPoint, budget: u32) -> Self {
        self.budgets[point as usize] = budget;
        self
    }

    /// Sets the injected delay for the delay-type points.
    pub fn with_delay_us(mut self, delay_us: u32) -> Self {
        self.delay_us = delay_us;
        self
    }

    /// A point's configured fire rate.
    pub fn rate(&self, point: FaultPoint) -> u16 {
        self.rates[point as usize]
    }

    /// A point's configured fire budget.
    pub fn budget(&self, point: FaultPoint) -> u32 {
        self.budgets[point as usize]
    }

    /// The points with a nonzero fire rate, in discriminant order.
    pub fn armed_points(&self) -> Vec<FaultPoint> {
        FaultPoint::ALL
            .into_iter()
            .filter(|&p| self.rate(p) > 0)
            .collect()
    }
}

/// The runtime-internal fault engine: the armed plan plus atomic draw and
/// fired-counter state. Shared (`Arc`) between the runtime core and the
/// observability recorder so the [`FaultPoint::ObsPublish`] probe can
/// live inside the ring publish path.
#[derive(Debug)]
pub(crate) struct FaultLayer {
    /// Probe gate: the only state touched when no plan is installed.
    armed: AtomicBool,
    rates: [u16; FaultPoint::COUNT],
    budgets: [u32; FaultPoint::COUNT],
    delay: Duration,
    /// SplitMix64 state; `fetch_add` of the golden gamma hands each
    /// caller a unique, deterministic draw without a lock.
    rng: AtomicU64,
    fired: [AtomicU64; FaultPoint::COUNT],
}

impl FaultLayer {
    /// A permanently-disarmed layer (no plan installed).
    pub(crate) fn disarmed() -> Self {
        FaultLayer {
            armed: AtomicBool::new(false),
            rates: [0; FaultPoint::COUNT],
            budgets: [UNLIMITED; FaultPoint::COUNT],
            delay: Duration::ZERO,
            rng: AtomicU64::new(0),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Arms a layer from a plan.
    pub(crate) fn from_plan(plan: &FaultPlan) -> Self {
        FaultLayer {
            armed: AtomicBool::new(plan.rates.iter().any(|&r| r > 0)),
            rates: plan.rates,
            budgets: plan.budgets,
            delay: Duration::from_micros(u64::from(plan.delay_us)),
            rng: AtomicU64::new(plan.seed),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Probes an injection point. Returns `true` when the fault fires.
    ///
    /// The disabled path is a single relaxed load, mirroring
    /// `ObsRecorder::on`.
    #[inline(always)]
    pub(crate) fn fire(&self, point: FaultPoint) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        self.fire_armed(point)
    }

    #[cold]
    fn fire_armed(&self, point: FaultPoint) -> bool {
        let i = point as usize;
        let rate = self.rates[i];
        if rate == 0 {
            return false;
        }
        if rate != ALWAYS && (self.next_draw() & 0xFFFF) as u16 >= rate {
            return false;
        }
        let budget = self.budgets[i];
        if budget == UNLIMITED {
            self.fired[i].fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Exact budget enforcement: concurrent probes race on the counter,
        // never past the cap.
        self.fired[i]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < u64::from(budget)).then_some(n + 1)
            })
            .is_ok()
    }

    /// Sleeps for the plan's injected delay (delay-type points call this
    /// after a successful [`FaultLayer::fire`], off every lock).
    pub(crate) fn delay(&self) {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
    }

    /// Per-point fired counts, indexed by discriminant.
    pub(crate) fn counts(&self) -> [u64; FaultPoint::COUNT] {
        std::array::from_fn(|i| self.fired[i].load(Ordering::Relaxed))
    }

    /// One draw from the layer's SplitMix64 stream, for callers that need
    /// deterministic jitter sharing the plan's seed (the commit-backoff
    /// path). Advances the same stream the fire probes consume.
    pub(crate) fn draw(&self) -> u64 {
        self.next_draw()
    }

    fn next_draw(&self) -> u64 {
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut z = self
            .rng
            .fetch_add(GAMMA, Ordering::Relaxed)
            .wrapping_add(GAMMA);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A standalone, seeded fault probe for layers *outside* the runtime core
/// that share the [`FaultPlan`]/[`FaultPoint`] machinery — the serve
/// front-end probes its request-lifecycle points
/// ([`FaultPoint::ConnDrop`], [`FaultPoint::ClientStall`],
/// [`FaultPoint::AcceptOverflow`]) through one of these. Same semantics as
/// the runtime-internal engine: the disarmed path is a single relaxed
/// atomic load, draws are SplitMix64-deterministic from the plan's seed,
/// and budgets are enforced exactly under concurrency.
#[derive(Debug)]
pub struct FaultProbe {
    layer: FaultLayer,
}

impl FaultProbe {
    /// A permanently-disarmed probe (no plan installed).
    pub fn disarmed() -> Self {
        FaultProbe {
            layer: FaultLayer::disarmed(),
        }
    }

    /// Arms a probe from a plan.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        FaultProbe {
            layer: FaultLayer::from_plan(plan),
        }
    }

    /// Probes an injection point. Returns `true` when the fault fires.
    #[inline]
    pub fn fire(&self, point: FaultPoint) -> bool {
        self.layer.fire(point)
    }

    /// Sleeps for the plan's injected delay (call after a successful
    /// [`FaultProbe::fire`] on a delay-type point, off every lock).
    pub fn delay(&self) {
        self.layer.delay()
    }

    /// The plan's injected delay, for callers that must not block in
    /// place — an event-loop worker defers the faulted connection until
    /// this much time has passed instead of sleeping on it.
    pub fn delay_duration(&self) -> Duration {
        self.layer.delay
    }

    /// Per-point fired counts, indexed by discriminant.
    pub fn counts(&self) -> [u64; FaultPoint::COUNT] {
        self.layer.counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_encoding_round_trips() {
        for (i, p) in FaultPoint::ALL.into_iter().enumerate() {
            assert_eq!(p as usize, i);
            assert_eq!(FaultPoint::from_u8(p as u8), Some(p));
            assert_eq!(FaultPoint::from_name(p.name()), Some(p));
            assert!(!p.name().is_empty());
        }
        assert_eq!(FaultPoint::from_u8(FaultPoint::COUNT as u8), None);
        assert_eq!(FaultPoint::from_name("frobnicate"), None);
    }

    #[test]
    fn core_and_serve_points_partition_all() {
        let mut joined: Vec<FaultPoint> = FaultPoint::CORE.to_vec();
        joined.extend(FaultPoint::SERVE);
        assert_eq!(joined, FaultPoint::ALL.to_vec());
    }

    #[test]
    fn probe_shares_layer_semantics() {
        let probe = FaultProbe::disarmed();
        assert!(!probe.fire(FaultPoint::ConnDrop));
        assert_eq!(probe.counts(), [0; FaultPoint::COUNT]);

        let plan = FaultPlan::new(9)
            .with_rate(FaultPoint::AcceptOverflow, ALWAYS)
            .with_budget(FaultPoint::AcceptOverflow, 2);
        let probe = FaultProbe::from_plan(&plan);
        let fired = (0..10)
            .filter(|_| probe.fire(FaultPoint::AcceptOverflow))
            .count();
        assert_eq!(fired, 2);
        assert!(!probe.fire(FaultPoint::ClientStall));
    }

    #[test]
    fn plan_builders_apply() {
        let plan = FaultPlan::new(7)
            .with_rate(FaultPoint::Enqueue, 123)
            .with_rate(FaultPoint::Retrigger, ALWAYS)
            .with_budget(FaultPoint::Retrigger, 4)
            .with_delay_us(99);
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rate(FaultPoint::Enqueue), 123);
        assert_eq!(plan.rate(FaultPoint::Retrigger), ALWAYS);
        assert_eq!(plan.budget(FaultPoint::Retrigger), 4);
        assert_eq!(plan.budget(FaultPoint::Enqueue), UNLIMITED);
        assert_eq!(plan.delay_us, 99);
        assert_eq!(
            plan.armed_points(),
            vec![FaultPoint::Enqueue, FaultPoint::Retrigger]
        );
        assert!(FaultPlan::new(7).armed_points().is_empty());
    }

    #[test]
    fn disarmed_layer_never_fires() {
        let layer = FaultLayer::disarmed();
        for p in FaultPoint::ALL {
            assert!(!layer.fire(p));
        }
        assert_eq!(layer.counts(), [0; FaultPoint::COUNT]);
    }

    #[test]
    fn zero_rate_plan_stays_disarmed() {
        let layer = FaultLayer::from_plan(&FaultPlan::new(1));
        assert!(!layer.armed.load(Ordering::Relaxed));
        assert!(!layer.fire(FaultPoint::Enqueue));
    }

    #[test]
    fn always_rate_fires_every_probe() {
        let plan = FaultPlan::new(3).with_rate(FaultPoint::BodyStart, ALWAYS);
        let layer = FaultLayer::from_plan(&plan);
        for _ in 0..10 {
            assert!(layer.fire(FaultPoint::BodyStart));
        }
        assert!(!layer.fire(FaultPoint::Enqueue));
        assert_eq!(layer.counts()[FaultPoint::BodyStart as usize], 10);
    }

    #[test]
    fn budget_caps_fires_exactly() {
        let plan = FaultPlan::new(3)
            .with_rate(FaultPoint::Dequeue, ALWAYS)
            .with_budget(FaultPoint::Dequeue, 3);
        let layer = FaultLayer::from_plan(&plan);
        let fired = (0..100).filter(|_| layer.fire(FaultPoint::Dequeue)).count();
        assert_eq!(fired, 3);
        assert_eq!(layer.counts()[FaultPoint::Dequeue as usize], 3);
    }

    #[test]
    fn draws_are_seed_deterministic() {
        let plan = FaultPlan::new(0xDEAD_BEEF).with_rate(FaultPoint::Enqueue, 32768);
        let a = FaultLayer::from_plan(&plan);
        let b = FaultLayer::from_plan(&plan);
        let seq_a: Vec<bool> = (0..64).map(|_| a.fire(FaultPoint::Enqueue)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.fire(FaultPoint::Enqueue)).collect();
        assert_eq!(seq_a, seq_b);
        // A ~50% rate should both fire and skip over 64 draws.
        assert!(seq_a.iter().any(|&f| f));
        assert!(seq_a.iter().any(|&f| !f));
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| {
            let layer =
                FaultLayer::from_plan(&FaultPlan::new(seed).with_rate(FaultPoint::Enqueue, 32768));
            (0..64)
                .map(|_| layer.fire(FaultPoint::Enqueue))
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }
}
