//! Concurrent tracked-memory access off the global state lock.
//!
//! [`Accessor`] is the scaling counterpart of [`crate::runtime::Runtime::with`]:
//! it performs tracked loads and stores against the sharded arena directly,
//! so accessors on different threads — and different address shards —
//! proceed in parallel, the way the paper's hardware runs the store-side
//! value compare on every core without serializing the pipeline. Only a
//! store that actually *fires a trigger* takes the state lock, to advance
//! the serial status machine.
//!
//! # Locking protocol (per store)
//!
//! 1. stripe lock(s) for the store's range → write + value compare → unlock;
//! 2. silent store → done, no further locks;
//! 3. trigger-table **read** lock → lookup into reusable scratch → unlock;
//! 4. no hits → done; otherwise state lock → raise the hits → unlock.
//!
//! No two of these are ever held across a step boundary, and the state lock
//! is always the *last* acquired, so accessors cannot deadlock with
//! lock-holding paths (which take the state lock first and the others
//! after).
//!
//! # Memory-ordering contract
//!
//! The store is published (step 1) *before* its trigger is raised (step 4).
//! A concurrent `join` therefore either sees the trigger (and re-executes
//! against memory that already contains the store) or misses a
//! still-in-flight trigger exactly as it would have missed a
//! fractionally-later store; once the raising store's `set` call returns,
//! the trigger is visible to every later join. The worst interleaving
//! causes a *spurious* re-execution (another accessor's store raised the
//! tthread between this store's compare and raise) — never a lost one:
//! every changing store to a watched range raises its hits before `set`
//! returns.

use crate::handle::{Tracked, TrackedArray};
use crate::obs::EventKind;
use crate::pod::Pod;
use crate::runtime::Inner;
use crate::trigger::LookupScratch;
use crate::Ctx;

/// A per-thread handle for lock-free-ish tracked memory access.
///
/// Create one per thread with [`crate::runtime::Runtime::accessor`]; the
/// accessor owns reusable trigger-lookup scratch, so its store path is
/// allocation-free after warmup.
///
/// # Examples
///
/// ```
/// use dtt_core::{Config, Runtime};
///
/// let mut rt = Runtime::new(Config::default(), ());
/// let xs = rt.alloc_array::<u64>(64).unwrap();
/// std::thread::scope(|s| {
///     let rt = &rt;
///     for t in 0..4usize {
///         s.spawn(move || {
///             let mut acc = rt.accessor();
///             for i in (t * 16)..(t * 16 + 16) {
///                 acc.write(xs, i, i as u64);
///             }
///         });
///     }
/// });
/// let mut acc = rt.accessor();
/// assert_eq!(acc.read(xs, 63), 63);
/// ```
pub struct Accessor<'rt, U> {
    inner: &'rt Inner<U>,
    scratch: LookupScratch,
}

impl<U> std::fmt::Debug for Accessor<'_, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Accessor").finish_non_exhaustive()
    }
}

impl<'rt, U: Send + 'static> Accessor<'rt, U> {
    pub(crate) fn new(inner: &'rt Inner<U>) -> Self {
        Accessor {
            inner,
            scratch: LookupScratch::new(),
        }
    }

    /// Loads a tracked scalar without taking the state lock.
    pub fn get<T: Pod>(&mut self, cell: Tracked<T>) -> T {
        self.inner.access.on_loads(cell.addr().raw(), 1);
        self.inner.mem.load(cell.addr())
    }

    /// Stores a tracked scalar, firing triggers if the value changed.
    ///
    /// The fast path (silent store, or no watcher) never touches the state
    /// lock; see the module docs for the full protocol.
    pub fn set<T: Pod>(&mut self, cell: Tracked<T>, value: T) {
        let detect = self.inner.cfg.suppress_silent_stores;
        let effect = self.inner.mem.store(cell.addr(), value, detect);
        self.inner
            .access
            .on_store(cell.addr().raw(), effect, detect);
        if detect && !effect.changed {
            if self.inner.obs.on() {
                self.inner.obs.record(
                    self.inner.mem.shard_of(cell.addr()),
                    EventKind::Store,
                    None,
                    cell.addr().raw(),
                );
            }
            return;
        }
        if self.inner.obs.on() {
            self.inner.obs.record(
                self.inner.mem.shard_of(cell.addr()),
                EventKind::ChangeDetected,
                None,
                cell.addr().raw(),
            );
        }
        // Watched-address filter: for the common unwatched store a single
        // page-bit load proves no watch can match; watched-page traffic
        // still exits at line granularity. Either miss skips the
        // trigger-table read lock.
        let probe = self.inner.watch_filter.probe(cell.range());
        self.inner.access.on_filter(cell.addr().raw(), probe);
        if probe.is_miss() {
            if self.inner.obs.on() {
                self.inner.obs.record(
                    self.inner.mem.shard_of(cell.addr()),
                    EventKind::FilterSkip,
                    None,
                    cell.addr().raw(),
                );
            }
            return;
        }
        // Read guard dropped at the end of the statement, before the state
        // lock: lock order is always stripe → triggers → state, each
        // released before the next.
        self.inner
            .triggers
            .read()
            .lookup_with(cell.range(), &mut self.scratch);
        if self.scratch.hits().is_empty() {
            return;
        }
        if self.inner.cfg.lockfree_dispatch {
            self.raise_hits_lockfree(cell.addr().raw());
            return;
        }
        let mut state = self.inner.state.lock();
        let mut ctx = Ctx::new(&mut state, self.inner, 0);
        ctx.raise_hits(self.scratch.hits(), cell.addr().raw());
    }

    /// The tentpole fast path: raise this store's trigger hits entirely
    /// through the lock-free status machine and sharded counters. Only an
    /// overflow ticket (pending queue full, or an injected enqueue fault)
    /// drops to the state lock, where the configured overflow policy runs.
    fn raise_hits_lockfree(&mut self, store_addr: u64) {
        let inner = self.inner;
        let key = store_addr as usize;
        inner.dispatch.counters.triggering_store(key);
        let obs_on = inner.obs.on();
        let mut overflows: Vec<(crate::tthread::TthreadId, u64)> = Vec::new();
        for hit in self.scratch.hits() {
            inner
                .dispatch
                .counters
                .trigger_fired(hit.tthread.index(), hit.precise);
            if obs_on {
                inner.obs.record(
                    inner.obs.status_ring(),
                    EventKind::TriggerFired,
                    Some(hit.tthread),
                    store_addr,
                );
            }
            match inner.raise_lockfree(hit.tthread) {
                crate::runtime::LockfreeRaise::Done { .. } => {}
                crate::runtime::LockfreeRaise::Overflow(token) => {
                    overflows.push((hit.tthread, token))
                }
            }
        }
        if !overflows.is_empty() {
            let mut state = inner.state.lock();
            let mut ctx = Ctx::new(&mut state, inner, 0);
            for (id, token) in overflows {
                ctx.overflow_lockfree(id, token);
            }
        }
    }

    /// Loads element `index` of a tracked array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read<T: Pod>(&mut self, array: TrackedArray<T>, index: usize) -> T {
        self.get(array.at(index))
    }

    /// Stores element `index` of a tracked array, firing triggers if the
    /// value changed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write<T: Pod>(&mut self, array: TrackedArray<T>, index: usize, value: T) {
        self.set(array.at(index), value);
    }
}
